"""Legacy setup shim.

`pip install -e .` uses pyproject.toml; this file remains so that fully
offline environments without the `wheel` package can still do an editable
install via `python setup.py develop`.
"""

from setuptools import setup

setup()
