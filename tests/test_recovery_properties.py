"""Property-based recovery equivalence: for *any* admitted/rejected
query sequence and *any* crash offset into the WAL, recovery rebuilds an
enforcer whose remaining decisions are bit-identical to an uncrashed
twin that processed exactly the durable prefix."""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.log import SimulatedClock, standard_registry
from repro.storage import initialize_durability, recover_enforcer, tear

RATE_POLICY = (
    "SELECT DISTINCT 'too fast' FROM users u, groups g, clock c "
    "WHERE u.uid = g.uid AND g.gid = 'x' AND u.ts > c.ts - 60 "
    "HAVING COUNT(DISTINCT u.ts) > 2"
)

QUERY_POOL = [
    "SELECT iid FROM items",
    "SELECT owner FROM items",
    "SELECT iid FROM items WHERE owner = 'u0'",
    "SELECT COUNT(*) FROM items",
    "SELECT gid FROM groups",
]

USERS = ["alice", "bob", "carol"]  # carol is not in the rate-limited group

OPTION_SETS = [
    {},
    {"log_compaction": True, "compaction_every": 2},
    {"log_compaction": True, "compaction_every": 1},
]


def make_enforcer(option_index: int) -> Enforcer:
    db = Database()
    db.load_table(
        "items",
        ["iid", "owner"],
        [(f"i{i}", f"u{i % 2}") for i in range(4)],
    )
    db.load_table("groups", ["uid", "gid"], [("alice", "x"), ("bob", "x")])
    policy = Policy.from_sql("rate", RATE_POLICY, "rate limit")
    return Enforcer(
        db,
        [policy],
        registry=standard_registry(),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions(**OPTION_SETS[option_index]),
    )


def run_stream(enforcer, stream):
    return [
        (d.allowed, d.timestamp)
        for d in (
            enforcer.submit(QUERY_POOL[q], uid=USERS[u]) for q, u in stream
        )
    ]


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    stream=st.lists(
        st.tuples(
            st.integers(0, len(QUERY_POOL) - 1),
            st.integers(0, len(USERS) - 1),
        ),
        min_size=1,
        max_size=12,
    ),
    held_out=st.lists(
        st.tuples(
            st.integers(0, len(QUERY_POOL) - 1),
            st.integers(0, len(USERS) - 1),
        ),
        min_size=1,
        max_size=6,
    ),
    crash_fraction=st.floats(0.0, 1.0),
    option_index=st.integers(0, len(OPTION_SETS) - 1),
)
def test_recovery_equivalence_at_any_crash_offset(
    stream, held_out, crash_fraction, option_index
):
    with tempfile.TemporaryDirectory() as raw:
        directory = Path(raw)
        enforcer = make_enforcer(option_index)
        wal = initialize_durability(enforcer, directory, sync=False)
        original = run_stream(enforcer, stream)
        wal.close()

        # Crash: an arbitrary suffix of the WAL never reached the platter.
        wal_path = directory / "wal.jsonl"
        tear(wal_path, int(wal_path.stat().st_size * crash_fraction))

        recovered, rwal, report = recover_enforcer(
            directory, clock=SimulatedClock(default_step_ms=10)
        )
        durable = report.last_seq
        assert 0 <= durable <= len(stream)

        # The twin processes exactly the durable prefix, uncrashed...
        twin = make_enforcer(option_index)
        assert run_stream(twin, stream[:durable]) == original[:durable]

        # ...and from here on the two must be indistinguishable.
        assert run_stream(recovered, held_out) == run_stream(twin, held_out)
        for name in ("users", "schema", "provenance"):
            assert (
                recovered.database.table(name).rows()
                == twin.database.table(name).rows()
            )
            assert (
                recovered.database.table(name).tids()
                == twin.database.table(name).tids()
            )
        rwal.close()
