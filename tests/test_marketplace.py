"""Marketplace workload: generator, contract, enforcement."""

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.engine import Engine
from repro.log import SimulatedClock
from repro.workloads import (
    MarketplaceConfig,
    build_marketplace_database,
    make_marketplace_workload,
    standard_contract,
)


@pytest.fixture(scope="module")
def config():
    return MarketplaceConfig(
        n_listings=60,
        n_subscribers=4,
        rate_limit=3,
        rate_window=100,
        free_tier_tuples=100,
        free_tier_window=10_000,
    )


@pytest.fixture(scope="module")
def template_db(config):
    return build_marketplace_database(config)


@pytest.fixture
def enforcer(config, template_db):
    return Enforcer(
        template_db.clone(),
        standard_contract(config),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


class TestGenerator:
    def test_deterministic(self, config):
        a = build_marketplace_database(config)
        b = build_marketplace_database(config)
        for name in a.table_names():
            assert a.table(name).rows() == b.table(name).rows()

    def test_cardinalities(self, config, template_db):
        assert len(template_db.table("listings")) == config.n_listings
        assert len(template_db.table("ratings")) == config.n_listings
        assert len(template_db.table("subscribers")) == config.n_subscribers

    def test_ratings_reference_listings(self, template_db):
        engine = Engine(template_db.clone())
        orphans = engine.execute(
            "SELECT COUNT(*) FROM "
            "(SELECT r.biz_id FROM ratings r "
            " EXCEPT SELECT l.biz_id FROM listings l) x"
        ).scalar()
        assert orphans == 0


class TestContract:
    def test_rate_limits_unify(self, enforcer, config):
        unified = [r for r in enforcer.runtime_policies() if r.member_names]
        assert len(unified) == 1
        assert len(unified[0].member_names) == config.n_subscribers

    def test_workload_is_compliant_initially(self, enforcer, config):
        workload = make_marketplace_workload(config)
        for name in ("M1", "M2", "M3"):
            decision = enforcer.submit(workload[name], uid=2)
            assert decision.allowed, name

    def test_rate_limit_fires(self, enforcer, config):
        workload = make_marketplace_workload(config)
        for _ in range(config.rate_limit):
            assert enforcer.submit(workload["M1"], uid=1).allowed
        decision = enforcer.submit(workload["M1"], uid=1)
        assert not decision.allowed
        assert "user 1" in decision.violations[0].message

    def test_blending_rejected_but_display_join_allowed(self, enforcer, config):
        workload = make_marketplace_workload(config)
        assert enforcer.submit(workload["M2"], uid=2).allowed
        decision = enforcer.submit(
            "SELECT l.category, AVG(r.stars) FROM listings l, ratings r "
            "WHERE l.biz_id = r.biz_id GROUP BY l.category",
            uid=2,
        )
        assert not decision.allowed
        assert any("ratings" in v.message for v in decision.violations)

    def test_free_tier_quota_fires_on_bulk_reads(self, enforcer, config):
        workload = make_marketplace_workload(config)
        # 60 listings per bulk read; quota 100 within the window
        assert enforcer.submit(workload["M4"], uid=2).allowed
        decision = enforcer.submit(workload["M4"], uid=2)
        assert not decision.allowed
        assert any("Quota" in v.message for v in decision.violations)

    def test_quota_resets_after_window(self, enforcer, config):
        workload = make_marketplace_workload(config)
        enforcer.submit(workload["M4"], uid=2)
        enforcer.clock.sleep(config.free_tier_window + 100)
        assert enforcer.submit(workload["M4"], uid=2).allowed

    def test_log_stays_bounded(self, enforcer, config):
        workload = make_marketplace_workload(config)
        for index in range(30):
            enforcer.submit(workload["M1"], uid=(index % 4) + 1, execute=False)
            enforcer.clock.sleep(50)
        # rate window 100ms → only ~3 users rows per member stay relevant;
        # M1's provenance is 1 row/query within the quota window
        assert enforcer.store.live_size("users") <= 12
