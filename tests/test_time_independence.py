"""Time-independence detection and rewrite (§4.1.1)."""

import pytest

from repro.analysis import is_time_independent, rewrite_time_independent
from repro.engine import Database, Engine
from repro.log import LogStore, standard_registry
from repro.sql import ast, parse_select
from repro.workloads import PolicyParams, make_policy


@pytest.fixture
def registry():
    return standard_registry()


class TestCriterion:
    def test_joined_ts_no_aggregates_is_ti(self, registry):
        # Example 4.1 — P1 prohibits joins: time-independent.
        select = parse_select(
            "SELECT DISTINCT 'no joins' FROM schema p1, schema p2 "
            "WHERE p1.ts = p2.ts AND p1.irid = 'navteq' AND p2.irid <> 'navteq'"
        )
        assert is_time_independent(select, registry)

    def test_unjoined_ts_is_not_ti(self, registry):
        select = parse_select(
            "SELECT DISTINCT 'x' FROM schema p1, schema p2 "
            "WHERE p1.irid = 'a' AND p2.irid = 'b'"
        )
        assert not is_time_independent(select, registry)

    def test_aggregate_without_grouped_ts_is_not_ti(self, registry):
        # Example 3.2 — P2b has an aggregate with no GROUP BY.
        select = parse_select(
            "SELECT DISTINCT 'x' FROM users u, schema s "
            "WHERE u.ts = s.ts HAVING COUNT(DISTINCT u.uid) > 10"
        )
        assert not is_time_independent(select, registry)

    def test_aggregate_with_grouped_ts_is_ti(self, registry):
        # Example 3.1 — P5b groups by (ts, otid): time-independent.
        select = parse_select(
            "SELECT DISTINCT 'P5b' FROM provenance p "
            "WHERE p.irid = 'patients' GROUP BY p.ts, p.otid "
            "HAVING COUNT(DISTINCT p.itid) < 10"
        )
        assert is_time_independent(select, registry)

    def test_single_log_relation_no_agg_is_ti(self, registry):
        select = parse_select(
            "SELECT DISTINCT 'x' FROM users u WHERE u.uid = 3"
        )
        assert is_time_independent(select, registry)

    def test_no_log_relations_is_trivially_ti(self, registry):
        db = Database()
        db.load_table("groups", ["uid", "gid"], [])
        select = parse_select("SELECT DISTINCT 'x' FROM groups g")
        assert is_time_independent(select, registry, db)

    def test_log_subquery_blocks_ti(self, registry):
        select = parse_select(
            "SELECT DISTINCT 'x' FROM (SELECT ts FROM users) u"
        )
        assert not is_time_independent(select, registry)

    def test_paper_policy_classification(self, registry):
        """Table 4: P2, P3, P4 are time-independent; P1, P5, P6 are not."""
        params = PolicyParams()
        expected = {
            "P1": False,
            "P2": True,
            "P3": True,
            "P4": True,
            "P5": False,
            "P6": False,
        }
        for name, want in expected.items():
            policy = make_policy(name, params)
            assert is_time_independent(policy.select, registry) is want, name


class TestRewrite:
    def test_adds_clock_and_ts_pins(self, registry):
        select = parse_select(
            "SELECT DISTINCT 'x' FROM schema p1, schema p2 WHERE p1.ts = p2.ts"
        )
        rewritten = rewrite_time_independent(select, registry)
        tables = [
            f.name for f in rewritten.from_items if isinstance(f, ast.TableRef)
        ]
        assert "clock" in tables
        conjuncts = ast.conjuncts(rewritten.where)
        pins = [
            c
            for c in conjuncts
            if isinstance(c, ast.BinaryOp)
            and c.op == "="
            and isinstance(c.right, ast.ColumnRef)
            and c.right.table == "c"
        ]
        assert len(pins) == 2  # one per log occurrence

    def test_reuses_existing_clock_alias(self, registry):
        select = parse_select(
            "SELECT DISTINCT 'x' FROM users u, clock k WHERE u.uid = 1"
        )
        rewritten = rewrite_time_independent(select, registry)
        clock_refs = [
            f
            for f in rewritten.from_items
            if isinstance(f, ast.TableRef) and f.name == "clock"
        ]
        assert len(clock_refs) == 1

    def test_fresh_alias_avoids_collision(self, registry):
        select = parse_select(
            "SELECT DISTINCT 'x' FROM users c WHERE c.uid = 1"
        )
        rewritten = rewrite_time_independent(select, registry)
        names = {f.binding_name() for f in rewritten.from_items}
        assert len(names) == 2  # no clash between 'c' and the clock alias

    def test_no_log_relations_unchanged(self, registry):
        db = Database()
        db.load_table("groups", ["uid", "gid"], [])
        select = parse_select("SELECT DISTINCT 'x' FROM groups g")
        assert rewrite_time_independent(select, registry, db) is select


class TestRewriteSemantics:
    """π_ind evaluated on the increment equals π's incremental violation."""

    def _eval(self, engine, select):
        return engine.execute(select).rows

    def test_rewritten_policy_sees_only_current_ts(self, registry):
        db = Database()
        store = LogStore(db, registry)
        engine = Engine(db)
        select = parse_select(
            "SELECT DISTINCT 'joined' FROM schema p1, schema p2 "
            "WHERE p1.ts = p2.ts AND p1.irid = 'a' AND p2.irid = 'b'"
        )
        rewritten = rewrite_time_independent(select, registry)

        # A violating pair at ts=1 (historical), nothing at ts=2.
        store.stage("schema", [("o", "a", "x", False), ("o", "b", "y", False)], 1)
        store.commit(None)
        store.set_time(2)
        store.stage("schema", [("o", "a", "x", False)], 2)

        assert self._eval(engine, select)  # original sees history
        assert not self._eval(engine, rewritten)  # π_ind sees only ts=2

    def test_rewritten_policy_detects_current_violation(self, registry):
        db = Database()
        store = LogStore(db, registry)
        engine = Engine(db)
        select = parse_select(
            "SELECT DISTINCT 'joined' FROM schema p1, schema p2 "
            "WHERE p1.ts = p2.ts AND p1.irid = 'a' AND p2.irid = 'b'"
        )
        rewritten = rewrite_time_independent(select, registry)
        store.set_time(5)
        store.stage(
            "schema", [("o", "a", "x", False), ("o", "b", "y", False)], 5
        )
        assert self._eval(engine, rewritten)
