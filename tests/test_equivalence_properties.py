"""Randomized end-to-end equivalence: every optimization preserves the
accept/reject decision of the naive semantics (Eq. 1) on random query
streams.

This is the repo's strongest correctness check: log compaction,
time-independence, interleaving, unification, preemptive compaction and
improved partial policies must all be invisible to users.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.log import SimulatedClock

# -- a tiny domain the strategies draw from ---------------------------------

TABLES = ("alpha", "beta")
QUERIES = [
    "SELECT * FROM alpha",
    "SELECT a FROM alpha WHERE a = 1",
    "SELECT b FROM alpha WHERE a > 1",
    "SELECT * FROM beta",
    "SELECT alpha.a FROM alpha, beta WHERE alpha.a = beta.a",
    "SELECT a, COUNT(*) FROM alpha GROUP BY a",
    "SELECT COUNT(*) FROM beta WHERE a < 3",
]

POLICY_POOL = [
    # join prohibition (time-independent)
    "SELECT DISTINCT 'no joins with beta' FROM schema s1, schema s2 "
    "WHERE s1.ts = s2.ts AND s1.irid = 'alpha' AND s2.irid = 'beta'",
    # windowed rate limit (monotone, time-dependent)
    "SELECT DISTINCT 'rate limited' FROM users u, clock c "
    "WHERE u.uid = 1 AND u.ts > c.ts - 40 HAVING COUNT(DISTINCT u.ts) > 2",
    # output cap via provenance (time-independent, grouped)
    "SELECT DISTINCT 'too much alpha' FROM provenance p "
    "WHERE p.irid = 'alpha' GROUP BY p.ts "
    "HAVING COUNT(DISTINCT p.otid) > 3",
    # minimum support (non-monotone, grouped)
    "SELECT DISTINCT 'support too small' FROM users u, provenance p "
    "WHERE u.ts = p.ts AND u.uid = 2 AND p.irid = 'alpha' "
    "GROUP BY p.ts, p.otid HAVING COUNT(DISTINCT p.itid) <= 1",
    # windowed distinct-tuple cap (monotone, time-dependent)
    "SELECT DISTINCT 'tuple budget exceeded' FROM users u, provenance p, clock c "
    "WHERE u.ts = p.ts AND u.uid = 1 AND p.irid = 'alpha' "
    "AND p.ts > c.ts - 60 HAVING COUNT(DISTINCT p.itid) > 4",
    # per-group rate limit, unifiable template instance 1
    "SELECT DISTINCT 'g1 limit' FROM users u, memberships m "
    "WHERE u.uid = m.uid AND m.grp = 'g1' HAVING COUNT(DISTINCT u.ts) > 4",
    # per-group rate limit, unifiable template instance 2
    "SELECT DISTINCT 'g2 limit' FROM users u, memberships m "
    "WHERE u.uid = m.uid AND m.grp = 'g2' HAVING COUNT(DISTINCT u.ts) > 4",
]

CONFIGS = {
    "datalawyer": EnforcerOptions.datalawyer(),
    "serial": EnforcerOptions.noopt(eval_strategy="serial"),
    "no-interleave-union": EnforcerOptions.datalawyer(
        interleaved=False, eval_strategy="union"
    ),
    "no-compaction": EnforcerOptions.datalawyer(log_compaction=False),
    "no-ti": EnforcerOptions.datalawyer(time_independent=False),
    "no-unification": EnforcerOptions.datalawyer(unification=False),
    "no-preemptive": EnforcerOptions.datalawyer(preemptive_compaction=False),
    "improved-partial": EnforcerOptions.datalawyer(improved_partial=True),
    "everything-off-but-compaction": EnforcerOptions.noopt(log_compaction=True),
    # Execution engines: the baseline runs the default (columnar); every
    # explicit discipline — row-at-a-time, vectorized batches, columnar
    # vectors — must be invisible in the decision stream, with and
    # without the other optimizations.
    "row-engine": EnforcerOptions.datalawyer(engine="row"),
    "row-engine-noopt": EnforcerOptions.noopt(engine="row"),
    "vectorized-engine": EnforcerOptions.datalawyer(engine="vectorized"),
    "vectorized-engine-noopt": EnforcerOptions.noopt(engine="vectorized"),
    "columnar-engine": EnforcerOptions.datalawyer(engine="columnar"),
    "columnar-engine-noopt": EnforcerOptions.noopt(engine="columnar"),
}


def build_db() -> Database:
    db = Database()
    db.load_table("alpha", ["a", "b"], [(1, "x"), (2, "y"), (3, "z"), (4, "w")])
    db.load_table("beta", ["a", "c"], [(1, 10), (3, 30)])
    db.load_table(
        "memberships", ["uid", "grp"], [(1, "g1"), (2, "g2"), (3, "g1")]
    )
    return db


def run_config(options, policy_indexes, stream):
    policies = [
        Policy.from_sql(f"pol{i}", POLICY_POOL[i]) for i in policy_indexes
    ]
    enforcer = Enforcer(
        build_db(),
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=options,
    )
    decisions = []
    for query_index, uid in stream:
        decision = enforcer.submit(QUERIES[query_index], uid=uid, execute=False)
        decisions.append(decision.allowed)
    return decisions


stream_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(QUERIES) - 1),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=4,
    max_size=14,
)
policy_set_strategy = st.sets(
    st.integers(min_value=0, max_value=len(POLICY_POOL) - 1),
    min_size=1,
    max_size=4,
)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(policy_indexes=policy_set_strategy, stream=stream_strategy)
def test_optimizations_preserve_decisions(config_name, policy_indexes, stream):
    baseline = run_config(EnforcerOptions.noopt(), sorted(policy_indexes), stream)
    optimized = run_config(CONFIGS[config_name], sorted(policy_indexes), stream)
    assert optimized == baseline


@settings(max_examples=10, deadline=None)
@given(stream=stream_strategy)
def test_log_contents_equivalent_for_policy_checking(stream):
    """After any stream, the compacted and full logs agree on every policy
    verdict at the current time (compaction soundness, Def. 4.1)."""
    policy_indexes = [1, 4]  # the windowed, compactable policies
    policies = [
        Policy.from_sql(f"pol{i}", POLICY_POOL[i]) for i in policy_indexes
    ]

    def make(options):
        return Enforcer(
            build_db(),
            policies,
            clock=SimulatedClock(default_step_ms=10),
            options=options,
        )

    compacted = make(EnforcerOptions.datalawyer())
    full = make(EnforcerOptions.noopt())
    for query_index, uid in stream:
        compacted.submit(QUERIES[query_index], uid=uid, execute=False)
        full.submit(QUERIES[query_index], uid=uid, execute=False)

    # Evaluate every policy directly over both logs at the same clock.
    now = compacted.clock.now()
    full.store.set_time(now)
    compacted.store.set_time(now)
    for policy in policies:
        verdict_full = full.engine.is_empty(policy.select)
        verdict_compact = compacted.engine.is_empty(policy.select)
        assert verdict_full == verdict_compact


@settings(max_examples=10, deadline=None)
@given(stream=stream_strategy)
def test_compacted_log_is_subset_of_full_log(stream):
    """Compaction only ever removes tuples (rows, ignoring tids)."""
    policies = [Policy.from_sql("pol1", POLICY_POOL[1])]

    def make(options):
        return Enforcer(
            build_db(),
            policies,
            clock=SimulatedClock(default_step_ms=10),
            options=options,
        )

    compacted = make(EnforcerOptions.datalawyer())
    full = make(EnforcerOptions.noopt())
    for query_index, uid in stream:
        compacted.submit(QUERIES[query_index], uid=uid, execute=False)
        full.submit(QUERIES[query_index], uid=uid, execute=False)

    for relation in ("users",):
        compact_rows = list(compacted.database.table(relation).rows())
        full_rows = list(full.database.table(relation).rows())
        for row in compact_rows:
            assert row in full_rows
        assert len(compact_rows) <= len(full_rows)
