"""Printer tests: rendered SQL re-parses to an identical AST."""

import pytest

from repro.sql import ast, parse, parse_expression, print_expr, print_query

ROUND_TRIP_QUERIES = [
    "SELECT a FROM t",
    "SELECT * FROM t",
    "SELECT t.* FROM t",
    "SELECT DISTINCT a, b FROM t WHERE a = 1",
    "SELECT DISTINCT ON (a), t.* FROM t",
    "SELECT a AS x, b + 1 AS y FROM t u WHERE u.a > 2 AND u.b = 'q'",
    "SELECT a, COUNT(DISTINCT b) FROM t GROUP BY a HAVING COUNT(DISTINCT b) > 3",
    "SELECT a FROM t ORDER BY a DESC, b LIMIT 7",
    "SELECT 1 FROM a, b, c WHERE a.x = b.x AND b.y = c.y",
    "SELECT x.a FROM (SELECT a FROM t WHERE a > 0) x",
    "SELECT a FROM t UNION SELECT a FROM u",
    "SELECT a FROM t UNION ALL SELECT a FROM u",
    "SELECT a FROM t EXCEPT SELECT a FROM u",
    "SELECT a FROM t INTERSECT SELECT a FROM u",
    "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT a FROM t WHERE a IN (1, 2) AND b NOT IN ('x')",
    "SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL",
    "SELECT a FROM t WHERE b LIKE 'x%'",
    "SELECT -a, a - -1 FROM t",
    "SELECT a || 'suffix' FROM t",
    "SELECT COUNT(*) FROM t",
    "SELECT abs(a), coalesce(b, 'none') FROM t",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
def test_query_round_trip(sql):
    tree = parse(sql)
    rendered = print_query(tree)
    assert parse(rendered) == tree


ROUND_TRIP_EXPRESSIONS = [
    "1 + 2 * 3",
    "(1 + 2) * 3",
    "a = 1 AND b = 2 AND c = 3",
    "NOT (a = 1)",
    "a < b OR c >= d",
    "a <> 'it''s'",
    "CASE WHEN a > 0 THEN a ELSE -a END",
    "a IN (1, 2, 3)",
    "length(s) > 3",
    "a % 2 = 0",
]


@pytest.mark.parametrize("text", ROUND_TRIP_EXPRESSIONS)
def test_expression_round_trip(text):
    expr = parse_expression(text)
    rendered = print_expr(expr)
    assert parse_expression(rendered) == expr


class TestRendering:
    def test_string_escaping(self):
        assert print_expr(ast.Literal("it's")) == "'it''s'"

    def test_null_true_false(self):
        assert print_expr(ast.Literal(None)) == "NULL"
        assert print_expr(ast.Literal(True)) == "TRUE"
        assert print_expr(ast.Literal(False)) == "FALSE"

    def test_parentheses_only_when_needed(self):
        expr = parse_expression("(a + b) * c")
        assert print_expr(expr) == "(a + b) * c"
        expr = parse_expression("a + b * c")
        assert print_expr(expr) == "a + b * c"

    def test_distinct_on_rendering(self):
        q = parse("SELECT DISTINCT ON (a, b), t.* FROM t")
        assert "DISTINCT ON (a, b)" in print_query(q)

    def test_order_by_desc_rendering(self):
        q = parse("SELECT a FROM t ORDER BY a DESC")
        assert print_query(q).endswith("ORDER BY a DESC")

    def test_union_renders_parenthesized(self):
        q = parse("SELECT 1 UNION ALL SELECT 2")
        text = print_query(q)
        assert "UNION ALL" in text
        assert text.startswith("(")
