"""QueryMetrics / MetricsLog unit tests."""

import pytest

from repro.core import MetricsLog, QueryMetrics
from repro.core.metrics import (
    PHASE_DELETE,
    PHASE_INSERT,
    PHASE_MARK,
    PHASE_POLICY,
    PHASE_QUERY,
)


def entry(**seconds) -> QueryMetrics:
    metrics = QueryMetrics()
    for phase, value in seconds.items():
        metrics.add_seconds(phase.replace("log_", "log:"), value)
    return metrics


class TestQueryMetrics:
    def test_add_seconds_accumulates(self):
        metrics = QueryMetrics()
        metrics.add_seconds(PHASE_QUERY, 0.5)
        metrics.add_seconds(PHASE_QUERY, 0.25)
        assert metrics.query_seconds == 0.75

    def test_add_count_accumulates(self):
        metrics = QueryMetrics()
        metrics.add_count("statements")
        metrics.add_count("statements", 2)
        assert metrics.counts["statements"] == 3

    def test_timed_context_manager(self):
        metrics = QueryMetrics()
        with metrics.timed("phase_x"):
            pass
        assert metrics.seconds["phase_x"] >= 0

    def test_timed_records_on_exception(self):
        metrics = QueryMetrics()
        with pytest.raises(RuntimeError):
            with metrics.timed("phase_x"):
                raise RuntimeError
        assert "phase_x" in metrics.seconds

    def test_tracking_sums_log_phases(self):
        metrics = entry(log_users=0.1, log_provenance=0.2, query=1.0)
        assert metrics.tracking_seconds == pytest.approx(0.3)

    def test_compaction_sums_three_phases(self):
        metrics = QueryMetrics()
        metrics.add_seconds(PHASE_MARK, 0.1)
        metrics.add_seconds(PHASE_DELETE, 0.02)
        metrics.add_seconds(PHASE_INSERT, 0.03)
        assert metrics.compaction_seconds == pytest.approx(0.15)

    def test_overhead_excludes_query(self):
        metrics = entry(query=1.0, log_users=0.5)
        metrics.add_seconds(PHASE_POLICY, 0.25)
        assert metrics.total_seconds == pytest.approx(1.75)
        assert metrics.overhead_seconds == pytest.approx(0.75)

    def test_breakdown_buckets(self):
        metrics = entry(query=1.0, log_users=0.5)
        metrics.add_seconds(PHASE_POLICY, 0.25)
        metrics.add_seconds(PHASE_MARK, 0.1)
        assert metrics.breakdown() == {
            "query": 1.0,
            "tracking": 0.5,
            "policy_eval": 0.25,
            "compaction": 0.1,
        }


class TestMetricsLog:
    def make_log(self, totals):
        log = MetricsLog()
        for total in totals:
            log.record(entry(query=total))
        return log

    def test_len_and_clear(self):
        log = self.make_log([1, 2, 3])
        assert len(log) == 3
        log.clear()
        assert len(log) == 0

    def test_mean_total(self):
        log = self.make_log([1.0, 2.0, 3.0])
        assert log.mean_total_seconds() == pytest.approx(2.0)

    def test_mean_total_window(self):
        log = self.make_log([1.0, 2.0, 3.0, 4.0])
        assert log.mean_total_seconds(2) == pytest.approx(3.5)
        assert log.mean_total_seconds(1, 3) == pytest.approx(2.5)

    def test_mean_on_empty_window(self):
        log = self.make_log([1.0])
        assert log.mean_total_seconds(5) == 0.0

    def test_batch_means(self):
        log = self.make_log([1.0, 3.0, 5.0, 7.0, 9.0])
        assert log.batch_means(2) == [2.0, 6.0, 9.0]

    def test_mean_overhead(self):
        log = MetricsLog()
        metrics = entry(query=1.0, log_users=0.5)
        log.record(metrics)
        assert log.mean_overhead_seconds() == pytest.approx(0.5)

    def test_mean_breakdown(self):
        log = MetricsLog()
        log.record(entry(query=1.0, log_users=0.2))
        log.record(entry(query=3.0, log_users=0.4))
        breakdown = log.mean_breakdown()
        assert breakdown["query"] == pytest.approx(2.0)
        assert breakdown["tracking"] == pytest.approx(0.3)

    def test_mean_breakdown_empty(self):
        assert MetricsLog().mean_breakdown() == {
            "query": 0.0,
            "tracking": 0.0,
            "policy_eval": 0.0,
            "compaction": 0.0,
        }

    def test_mean_phase_seconds(self):
        log = MetricsLog()
        log.record(entry(query=1.0))
        log.record(entry(query=2.0))
        assert log.mean_phase_seconds(PHASE_QUERY) == pytest.approx(1.5)
        assert log.mean_phase_seconds("missing") == 0.0

    def test_total_count(self):
        log = MetricsLog()
        first = QueryMetrics()
        first.add_count("statements", 2)
        second = QueryMetrics()
        second.add_count("statements", 3)
        log.record(first)
        log.record(second)
        assert log.total_count("statements") == 5
        assert log.total_count("missing") == 0
