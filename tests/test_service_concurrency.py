"""Concurrency tests: no lost updates, decision equivalence, backpressure.

The ISSUE's two hard properties for the sharded service:

1. under a many-threaded workload, per-shard usage-log state is exactly
   what the admitted decisions imply (no lost or duplicated increments);
2. every per-uid decision sequence matches what a single-enforcer rerun
   of the same sequence produces (sharding changes throughput, never
   verdicts — policy windows here are far wider than the run).
"""

import threading
import time

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.errors import ServiceClosedError, ServiceOverloadedError
from repro.log import SimulatedClock
from repro.service import ServiceConfig, ShardedEnforcerService
from repro.workloads import (
    MarketplaceConfig,
    build_marketplace_database,
    make_marketplace_workload,
    round_robin,
    run_service_stream,
    sharded_contract,
    split_by_uid,
)

N_SHARDS = 4
N_CLIENTS = 8
QUERIES_PER_UID = 52


def make_config():
    # Windows vastly wider than the run: every query of the stream stays
    # in-window on both the sharded and the baseline clock, so decisions
    # depend on per-uid counts only — the equivalence the test asserts.
    return MarketplaceConfig(
        rate_limit=40, rate_window=10_000_000,
        free_tier_tuples=4_000, free_tier_window=10_000_000,
    )


def make_enforcer(config):
    return Enforcer(
        build_marketplace_database(config),
        sharded_contract(config),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


def make_stream(config):
    workload = make_marketplace_workload(config)
    uids = list(range(1, config.n_subscribers + 1))
    queries = list(workload.all().values())
    return round_robin(queries, uids, QUERIES_PER_UID * len(uids))


@pytest.mark.slow
class TestBackpressureRetryPolicy:
    """Regression: the runner used to clamp every backpressure sleep to
    50 ms regardless of the hint, so under sustained overload clients
    hammered the full shard instead of backing off."""

    @staticmethod
    def overloaded_service(config):
        return ShardedEnforcerService(
            make_enforcer(config),
            ServiceConfig(
                shards=1, queue_depth=1, workers=1,
                dispatch_seconds=0.01, routing="modulo",
            ),
        )

    def test_honoring_the_hint_retries_less_than_hammering(self):
        config = make_config()
        workload = make_marketplace_workload(config)
        uids = list(range(1, 9))
        stream = round_robin(list(workload.all().values()), uids, 48)
        results = {}
        for label, ceiling in (("honored", 1.0), ("hammer", 0.001)):
            service = self.overloaded_service(config)
            # A generous retry budget: the hammer case deliberately
            # starves clients, and process-backed shards (higher
            # per-check latency) can push an unlucky client past the
            # default 1000 retries. The assertion is about overload
            # counts, not the retry bound.
            results[label] = run_service_stream(
                service, stream, client_threads=8,
                retry_after_ceiling=ceiling, max_retries=20_000,
            )
            service.drain()
        for result in results.values():
            assert result.total == len(stream)  # every query finished
        assert results["hammer"].overloads > 0  # overload actually hit
        assert results["honored"].overloads < results["hammer"].overloads


@pytest.mark.slow
class TestShardedStress:
    @pytest.fixture(scope="class")
    def outcome(self):
        """Run the stress workload once; both tests assert over it."""
        config = make_config()
        service = ShardedEnforcerService(
            make_enforcer(config),
            ServiceConfig(shards=N_SHARDS, queue_depth=64, routing="modulo"),
        )
        stream = make_stream(config)
        result = run_service_stream(
            service, stream, client_threads=N_CLIENTS
        )
        per_shard_logs = service.per_shard_log_sizes()
        shard_of = service.shard_for
        service.drain()
        return config, stream, result, per_shard_logs, shard_of

    def test_no_lost_or_duplicated_log_increments(self, outcome):
        config, stream, result, per_shard_logs, shard_of = outcome
        assert result.total == len(stream) == 416  # ≥ 8 threads × 50

        # users gets exactly one row per *allowed* query (violating
        # queries discard their staged increments), and each row must
        # land on the submitting uid's shard — nowhere else.
        expected = [0] * N_SHARDS
        for uid, decisions in result.decisions.items():
            expected[shard_of(uid)] += sum(d.allowed for d in decisions)
        assert [log["users"] for log in per_shard_logs] == expected
        assert sum(expected) == result.allowed

    def test_decisions_match_single_enforcer_rerun(self, outcome):
        config, stream, result, _, _ = outcome
        per_uid = split_by_uid(stream)
        assert result.rejected > 0  # the contract actually fires
        for uid, queries in per_uid.items():
            baseline = make_enforcer(config)
            sharded = result.decisions[uid]
            assert len(sharded) == len(queries)
            for sql, got in zip(queries, sharded):
                want = baseline.submit(sql, uid=uid)
                assert got.allowed == want.allowed, (uid, sql)
                assert sorted(v.policy_name for v in got.violations) == sorted(
                    v.policy_name for v in want.violations
                )
                if want.allowed:
                    assert sorted(got.result.rows) == sorted(want.result.rows)


@pytest.mark.slow
class TestBackpressure:
    def make_slow_service(self):
        config = make_config()
        return ShardedEnforcerService(
            make_enforcer(config),
            ServiceConfig(
                shards=1, workers=1, queue_depth=1, dispatch_seconds=0.15
            ),
        )

    def test_full_queue_rejects_with_retry_hint(self):
        service = self.make_slow_service()
        outcomes = []
        tally = threading.Lock()

        def client():
            try:
                decision = service.submit(
                    "SELECT name FROM listings WHERE biz_id = 1", uid=1
                )
                status = "ok" if decision.allowed else "denied"
            except ServiceOverloadedError as error:
                assert error.retry_after > 0
                assert error.shard == 0
                status = "overloaded"
            with tally:
                outcomes.append(status)

        threads = [threading.Thread(target=client) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert len(outcomes) == 6  # nobody hung or crashed
        assert outcomes.count("overloaded") >= 1  # backpressure engaged
        assert outcomes.count("ok") >= 2  # in-flight + queued completed
        stats = service.stats()
        assert stats["totals"]["rejected"] == outcomes.count("overloaded")
        assert stats["totals"]["admitted"] == outcomes.count("ok")
        service.drain()

    def test_drain_completes_backlog_and_rejects_latecomers(self):
        service = self.make_slow_service()
        first = None

        def submit_first():
            nonlocal first
            first = service.submit("SELECT biz_id FROM listings", uid=1)

        thread = threading.Thread(target=submit_first)
        thread.start()
        time.sleep(0.05)  # let it reach the worker
        service.drain()
        thread.join(timeout=30)
        assert first is not None and first.allowed  # backlog completed
        with pytest.raises(ServiceClosedError):
            service.submit("SELECT biz_id FROM listings", uid=1)
