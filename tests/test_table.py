"""Table and Database tests: tids, mutation, indexes, catalog."""

import pytest

from repro.engine import Database, Table
from repro.engine.schema import Column, TableSchema, make_schema
from repro.errors import CatalogError, EngineError


class TestSchema:
    def test_make_schema(self):
        schema = make_schema("t", ["a", "b"])
        assert schema.column_names == ["a", "b"]
        assert schema.arity == 2

    def test_position_lookup(self):
        schema = make_schema("t", ["a", "b"])
        assert schema.position("b") == 1
        assert schema.has_column("a")
        assert not schema.has_column("z")

    def test_unknown_column_raises(self):
        schema = make_schema("t", ["a"])
        with pytest.raises(CatalogError):
            schema.position("nope")

    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("a"), Column("a")])


class TestTableBasics:
    def test_insert_assigns_increasing_tids(self):
        table = Table.from_rows("t", ["a"], [])
        assert table.insert((1,)) == 0
        assert table.insert((2,)) == 1
        assert table.insert((3,)) == 2

    def test_arity_checked(self):
        table = Table.from_rows("t", ["a", "b"], [])
        with pytest.raises(EngineError):
            table.insert((1,))

    def test_scan_pairs(self):
        table = Table.from_rows("t", ["a"], [(10,), (20,)])
        assert list(table.scan()) == [(0, (10,)), (1, (20,))]

    def test_row_for_tid(self):
        table = Table.from_rows("t", ["a"], [(10,), (20,)])
        assert table.row_for_tid(1) == (20,)
        with pytest.raises(EngineError):
            table.row_for_tid(99)

    def test_rows_are_tuples(self):
        table = Table.from_rows("t", ["a", "b"], [[1, 2]])
        assert table.rows() == [(1, 2)]


class TestMutation:
    def test_delete_tids(self):
        table = Table.from_rows("t", ["a"], [(1,), (2,), (3,)])
        removed = table.delete_tids({0, 2})
        assert removed == 2
        assert table.rows() == [(2,)]
        assert table.tids() == [1]

    def test_delete_empty_set_is_noop(self):
        table = Table.from_rows("t", ["a"], [(1,)])
        assert table.delete_tids(set()) == 0
        assert len(table) == 1

    def test_retain_tids(self):
        table = Table.from_rows("t", ["a"], [(1,), (2,), (3,)])
        removed = table.retain_tids({1})
        assert removed == 2
        assert table.rows() == [(2,)]

    def test_tids_never_reused_after_clear(self):
        table = Table.from_rows("t", ["a"], [(1,), (2,)])
        table.clear()
        assert table.insert((3,)) == 2

    def test_clone_is_independent(self):
        table = Table.from_rows("t", ["a"], [(1,)])
        copy = table.clone()
        copy.insert((2,))
        assert len(table) == 1 and len(copy) == 2

    def test_clone_continues_tid_sequence(self):
        table = Table.from_rows("t", ["a"], [(1,)])
        copy = table.clone()
        assert copy.insert((2,)) == 1


class TestVersioning:
    def test_every_mutation_bumps_version(self):
        table = Table.from_rows("t", ["a"], [(1,), (2,)])
        start = table.version
        table.insert((3,))
        assert table.version == start + 1
        table.delete_tids({0})
        assert table.version == start + 2
        table.clear()
        assert table.version == start + 3

    def test_insert_many_bumps_version_once(self):
        table = Table.from_rows("t", ["a"], [])
        start = table.version
        tids = table.insert_many([(1,), (2,), (3,)])
        assert tids == [0, 1, 2]
        assert table.version == start + 1
        # The bump is per call, not per row: a bigger batch is still +1.
        before = table.version
        table.insert_many([(i,) for i in range(100)])
        assert table.version - before == 1

    def test_insert_many_empty_is_noop(self):
        table = Table.from_rows("t", ["a"], [(1,)])
        start = table.version
        assert table.insert_many([]) == []
        assert table.version == start

    def test_insert_many_checks_arity_before_appending(self):
        table = Table.from_rows("t", ["a", "b"], [])
        with pytest.raises(EngineError):
            table.insert_many([(1, 2), (3,)])
        assert len(table) == 0  # all-or-nothing

    def test_reads_do_not_bump_version(self):
        table = Table.from_rows("t", ["a"], [(1,)])
        start = table.version
        table.rows()
        table.index_probe(0, 1)
        table.tid_positions()
        table.row_for_tid(0)
        assert table.version == start

    def test_tid_positions_rebuilt_after_mutation(self):
        table = Table.from_rows("t", ["a"], [(1,), (2,), (3,)])
        assert table.tid_positions() == {0: 0, 1: 1, 2: 2}
        table.delete_tids({1})
        assert table.tid_positions() == {0: 0, 2: 1}

    def test_clone_carries_version_and_indexes(self):
        table = Table.from_rows("t", ["a"], [(1,), (2,)])
        table.index_probe(0, 1)  # build an index
        copy = table.clone()
        assert copy.version == table.version
        assert copy._indexes  # carried over, not rebuilt
        # Mutating the copy invalidates only its own derived state.
        copy.insert((3,))
        assert copy.version == table.version + 1
        assert table.index_probe(0, 1) == [(0, (1,))]
        assert len(copy.index_probe(0, 1)) == 1


class TestIndexes:
    def test_index_probe_finds_matches(self):
        table = Table.from_rows("t", ["a", "b"], [(1, "x"), (2, "y"), (1, "z")])
        hits = table.index_probe(0, 1)
        assert [row for _, row in hits] == [(1, "x"), (1, "z")]

    def test_index_probe_miss(self):
        table = Table.from_rows("t", ["a"], [(1,)])
        assert table.index_probe(0, 42) == []

    def test_null_never_indexed(self):
        table = Table.from_rows("t", ["a"], [(None,), (1,)])
        assert table.index_probe(0, None) == []

    def test_index_invalidated_on_insert(self):
        table = Table.from_rows("t", ["a"], [(1,)])
        table.index_probe(0, 1)
        table.insert((1,))
        assert len(table.index_probe(0, 1)) == 2

    def test_index_invalidated_on_delete(self):
        table = Table.from_rows("t", ["a"], [(1,), (1,)])
        table.index_probe(0, 1)
        table.delete_tids({0})
        assert len(table.index_probe(0, 1)) == 1

    def test_unhashable_probe_value(self):
        table = Table.from_rows("t", ["a"], [(1,)])
        assert table.index_probe(0, [1]) == []  # type: ignore[arg-type]


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table("t", ["a"])
        assert db.has_table("t")
        assert db.table("T").name == "t"  # case-insensitive

    def test_duplicate_rejected(self):
        db = Database()
        db.create_table("t", ["a"])
        with pytest.raises(CatalogError):
            db.create_table("T", ["a"])

    def test_unknown_table(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.table("missing")

    def test_load_table(self):
        db = Database()
        table = db.load_table("t", ["a"], [(1,), (2,)])
        assert len(table) == 2

    def test_drop_table(self):
        db = Database()
        db.create_table("t", ["a"])
        db.drop_table("t")
        assert not db.has_table("t")
        with pytest.raises(CatalogError):
            db.drop_table("t")

    def test_attach(self):
        db = Database()
        db.attach(Table.from_rows("x", ["a"], [(1,)]))
        assert db.has_table("x")
        with pytest.raises(CatalogError):
            db.attach(Table.from_rows("x", ["a"], []))

    def test_table_names_sorted(self):
        db = Database()
        db.create_table("zeta", ["a"])
        db.create_table("alpha", ["a"])
        assert db.table_names() == ["alpha", "zeta"]

    def test_clone_independent(self):
        db = Database()
        db.load_table("t", ["a"], [(1,)])
        copy = db.clone()
        copy.table("t").insert((2,))
        assert len(db.table("t")) == 1
        assert len(copy.table("t")) == 2
