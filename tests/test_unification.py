"""Policy unification (§4.2.2, Example 4.6)."""

import pytest

from repro.analysis import unify_policies
from repro.engine import Database, Engine
from repro.log import LogStore, standard_registry
from repro.sql import parse_select, print_query


def px(gid, threshold=10, msg=None):
    msg = msg or f"too many {gid} users"
    return parse_select(
        f"SELECT DISTINCT '{msg}' FROM users u, groups g "
        f"WHERE u.uid = g.uid AND g.gid = '{gid}' "
        f"HAVING COUNT(DISTINCT u.uid) > {threshold}"
    )


class TestGrouping:
    def test_same_shape_policies_unify(self):
        result = unify_policies(
            [("a", px("students")), ("b", px("postdocs")), ("c", px("staff"))]
        )
        assert len(result.groups) == 1
        assert not result.singletons
        group = result.groups[0]
        assert group.member_names == ["a", "b", "c"]
        assert len(group.rows) == 3

    def test_different_shapes_stay_separate(self):
        other = parse_select("SELECT DISTINCT 'x' FROM schema s WHERE s.irid = 'q'")
        result = unify_policies([("a", px("students")), ("b", other)])
        assert not result.groups
        assert {name for name, _ in result.singletons} == {"a", "b"}

    def test_single_member_group_is_singleton(self):
        result = unify_policies([("a", px("students"))])
        assert not result.groups
        assert [name for name, _ in result.singletons] == ["a"]

    def test_non_monotone_policies_never_unify(self):
        non_monotone = parse_select(
            "SELECT DISTINCT 'few' FROM provenance p HAVING COUNT(*) < 5"
        )
        result = unify_policies(
            [("a", non_monotone), ("b", non_monotone)]
        )
        assert not result.groups
        assert len(result.singletons) == 2

    def test_differing_thresholds_also_unify(self):
        result = unify_policies(
            [("a", px("students", 10)), ("b", px("staff", 99))]
        )
        assert len(result.groups) == 1

    def test_rewrite_references_constants_table(self):
        result = unify_policies([("a", px("students")), ("b", px("staff"))])
        group = result.groups[0]
        text = print_query(group.select)
        assert group.table_name in text
        assert "GROUP BY" in text
        assert "__c." in text or "__c " in text


class TestSemantics:
    def _setup(self, uids_by_group):
        registry = standard_registry()
        db = Database()
        group_rows = [
            (uid, gid) for gid, uids in uids_by_group.items() for uid in uids
        ]
        db.load_table("groups", ["uid", "gid"], group_rows)
        store = LogStore(db, registry)
        engine = Engine(db)
        return db, store, engine

    def _load_users(self, store, uids):
        for ts, uid in enumerate(uids, start=1):
            store.stage("users", [(uid,)], ts)
        store.commit(None)

    def test_unified_equals_individuals(self):
        policies = [
            ("students", px("students", 2)),
            ("staff", px("staff", 2)),
        ]
        result = unify_policies(policies)
        (group,) = result.groups

        db, store, engine = self._setup(
            {"students": [1, 2, 3], "staff": [7]}
        )
        db.load_table(group.table_name, group.column_names, group.rows)
        self._load_users(store, [1, 2, 3, 7])

        unified_rows = engine.execute(group.select).rows
        fired = {row[0] for row in unified_rows}

        for name, select in policies:
            individual = engine.execute(select).rows
            if individual:
                assert individual[0][0] in fired
            else:
                assert all(msg != f"too many {name} users" for msg in fired)
        # exactly the students policy fires (3 > 2 distinct users)
        assert fired == {"too many students users"}

    def test_unified_empty_when_no_violations(self):
        policies = [("a", px("students", 10)), ("b", px("staff", 10))]
        (group,) = unify_policies(policies).groups
        db, store, engine = self._setup({"students": [1], "staff": [2]})
        db.load_table(group.table_name, group.column_names, group.rows)
        self._load_users(store, [1, 2])
        assert engine.execute(group.select).rows == []

    def test_unified_messages_identify_members(self):
        policies = [
            ("a", px("students", 0, msg="students violated")),
            ("b", px("staff", 0, msg="staff violated")),
        ]
        (group,) = unify_policies(policies).groups
        db, store, engine = self._setup({"students": [1], "staff": [2]})
        db.load_table(group.table_name, group.column_names, group.rows)
        self._load_users(store, [1, 2])
        fired = {row[0] for row in engine.execute(group.select).rows}
        assert fired == {"students violated", "staff violated"}

    def test_scaling_many_members_single_statement(self):
        policies = [
            (f"p{i}", px(f"group{i}", 1, msg=f"g{i} violated"))
            for i in range(50)
        ]
        result = unify_policies(policies)
        assert len(result.groups) == 1
        assert len(result.groups[0].rows) == 50
