"""Runner, workload, and experiment-harness details not covered elsewhere."""

import pytest

from repro.core import EnforcerOptions
from repro.workloads import (
    MimicConfig,
    PolicyParams,
    build_experiment,
    make_workload,
    repeat_query,
    round_robin,
    run_stream,
)


class TestPolicyParams:
    def test_for_config_scales_p5(self):
        config = MimicConfig(n_patients=100)
        params = PolicyParams.for_config(config)
        assert params.p5_max_tuples == 50

    def test_for_config_overrides_win(self):
        config = MimicConfig(n_patients=100)
        params = PolicyParams.for_config(config, p5_max_tuples=7, p1_window=9)
        assert params.p5_max_tuples == 7
        assert params.p1_window == 9

    def test_p3_floor(self):
        params = PolicyParams.for_config(MimicConfig(n_patients=30))
        assert params.p3_max_output >= 100


class TestWorkloadScaling:
    def test_subject_constants_within_range(self):
        for n in (40, 500, 3000):
            workload = make_workload(MimicConfig(n_patients=n))
            for sql in workload.all().values():
                # every numeric subject constant must be within 1..n
                import re

                for match in re.findall(r"subject_id [<>=]+ (\d+)", sql):
                    assert 1 <= int(match) <= n

    def test_thresholds_track_density(self):
        sparse = make_workload(
            MimicConfig(n_patients=100, hr_events_base=2, hr_events_spread=3)
        )
        dense = make_workload(
            MimicConfig(n_patients=100, hr_events_base=20, hr_events_spread=30)
        )
        assert sparse.w3 != dense.w3


class TestStreams:
    def test_repeat_query(self):
        stream = repeat_query("q", 5, 3)
        assert stream == [("q", 5)] * 3

    def test_round_robin_cycles_independently(self):
        stream = round_robin(["a", "b", "c"], [1, 2], 7)
        assert stream[:4] == [("a", 1), ("b", 2), ("c", 1), ("a", 2)]
        assert len(stream) == 7

    def test_run_stream_counts_rejections(self, tiny_mimic_config):
        experiment = build_experiment(
            policy_names=["P2"], config=tiny_mimic_config
        )
        stream = [
            (experiment.workload["W1"], 1),
            (
                "SELECT o.poe_id FROM poe_order o, d_patients p "
                "WHERE o.subject_id = p.subject_id",
                1,
            ),
        ]
        result = run_stream(experiment.enforcer, stream, execute=False)
        assert result.allowed == 1
        assert result.rejected == 1
        assert result.total == 2

    def test_experiment_metrics_property(self, tiny_mimic_config):
        experiment = build_experiment(
            policy_names=["P1"], config=tiny_mimic_config
        )
        run_stream(
            experiment.enforcer,
            repeat_query(experiment.workload["W1"], 1, 2),
            execute=False,
        )
        assert len(experiment.metrics) == 2

    def test_build_experiment_with_custom_options_and_clock(
        self, tiny_mimic_config
    ):
        experiment = build_experiment(
            policy_names=["P6"],
            config=tiny_mimic_config,
            options=EnforcerOptions.datalawyer(compaction_every=4),
            clock_step_ms=25,
        )
        assert experiment.enforcer.options.compaction_every == 4
        experiment.enforcer.submit(
            experiment.workload["W1"], uid=1, execute=False
        )
        assert experiment.enforcer.clock.now() == 25
