"""Persistence: table serialization and enforcer snapshots."""

import json

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database, Table
from repro.log import SimulatedClock
from repro.storage import (
    StorageError,
    load_database,
    read_table,
    restore_enforcer,
    save_database,
    save_enforcer_state,
    write_table,
)


class TestTableFormat:
    def test_roundtrip_values(self, tmp_path):
        table = Table.from_rows(
            "t",
            ["a", "b", "c"],
            [(1, "x", True), (2.5, None, False), (None, "it's", None)],
        )
        path = tmp_path / "t.jsonl"
        write_table(table, path)
        loaded = read_table(path)
        assert loaded.name == "t"
        assert loaded.schema.column_names == ["a", "b", "c"]
        assert loaded.rows() == table.rows()

    def test_roundtrip_preserves_tids(self, tmp_path):
        table = Table.from_rows("t", ["a"], [(1,), (2,), (3,)])
        table.delete_tids({1})
        path = tmp_path / "t.jsonl"
        write_table(table, path, keep_tids=True)
        loaded = read_table(path)
        assert loaded.tids() == [0, 2]
        # tid counter resumes: new inserts don't collide
        assert loaded.insert((9,)) == 3

    def test_without_tids_reassigns(self, tmp_path):
        table = Table.from_rows("t", ["a"], [(1,), (2,)])
        table.delete_tids({0})
        path = tmp_path / "t.jsonl"
        write_table(table, path)
        loaded = read_table(path)
        assert loaded.tids() == [0]

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(StorageError):
            read_table(path)

    def test_arity_mismatch(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"table": "t", "columns": ["a", "b"]}) + "\n[1]\n",
            encoding="utf-8",
        )
        with pytest.raises(StorageError):
            read_table(path)

    def test_missing_column_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"table": "t"}) + "\n", encoding="utf-8")
        with pytest.raises(StorageError):
            read_table(path)


class TestDatabaseSnapshot:
    def test_roundtrip(self, tmp_path):
        db = Database()
        db.load_table("t", ["a", "b"], [(1, "x"), (2, "y")])
        db.load_table("u", ["k"], [(7,)])
        save_database(db, tmp_path / "snap")
        loaded = load_database(tmp_path / "snap")
        assert loaded.table_names() == ["t", "u"]
        assert loaded.table("t").rows() == db.table("t").rows()

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_database(tmp_path)

    def test_version_check(self, tmp_path):
        save_database(Database(), tmp_path / "snap")
        manifest_path = tmp_path / "snap" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_database(tmp_path / "snap")


def make_enforcer():
    db = Database()
    db.load_table("items", ["k", "v"], [(i, i * 10) for i in range(8)])
    db.load_table("groups", ["uid", "gid"], [(1, "x"), (2, "x")])
    rate = Policy.from_sql(
        "rate",
        "SELECT DISTINCT 'too fast' FROM users u, groups g, clock c "
        "WHERE u.uid = g.uid AND g.gid = 'x' AND u.ts > c.ts - 100 "
        "HAVING COUNT(DISTINCT u.ts) > 3",
    )
    return Enforcer(
        db,
        [rate],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


class TestEnforcerSnapshot:
    def test_restored_enforcer_continues_identically(self, tmp_path):
        original = make_enforcer()
        twin = make_enforcer()

        warmup = [( "SELECT * FROM items WHERE k = 1", 1)] * 2
        for sql, uid in warmup:
            original.submit(sql, uid=uid, execute=False)
            twin.submit(sql, uid=uid, execute=False)

        save_enforcer_state(original, tmp_path / "state")
        restored = restore_enforcer(tmp_path / "state")

        # Both continue with the same stream; decisions must match the twin
        # that never restarted (including the windowed rate-limit firing).
        stream = [("SELECT * FROM items WHERE k = 2", 1)] * 4 + [
            ("SELECT * FROM items WHERE k = 3", 2)
        ]
        for sql, uid in stream:
            lhs = restored.submit(sql, uid=uid, execute=False)
            rhs = twin.submit(sql, uid=uid, execute=False)
            assert lhs.allowed == rhs.allowed

    def test_clock_resumes(self, tmp_path):
        enforcer = make_enforcer()
        enforcer.submit("SELECT * FROM items WHERE k = 1", uid=1, execute=False)
        now = enforcer.clock.now()
        save_enforcer_state(enforcer, tmp_path / "state")
        restored = restore_enforcer(tmp_path / "state")
        assert restored.clock.now() == now

    def test_log_tids_preserved(self, tmp_path):
        enforcer = make_enforcer()
        for _ in range(3):
            enforcer.submit(
                "SELECT * FROM items WHERE k = 1", uid=1, execute=False
            )
        before = dict(enforcer.database.table("users").scan())
        save_enforcer_state(enforcer, tmp_path / "state")
        restored = restore_enforcer(tmp_path / "state")
        after = dict(restored.database.table("users").scan())
        assert before == after

    def test_policies_restored(self, tmp_path):
        enforcer = make_enforcer()
        save_enforcer_state(enforcer, tmp_path / "state")
        restored = restore_enforcer(tmp_path / "state")
        assert [p.name for p in restored.policies] == ["rate"]
        assert restored.options == enforcer.options

    def test_consts_tables_not_stored_but_rebuilt(self, tmp_path):
        db = Database()
        db.load_table("groups", ["uid", "gid"], [(1, "a"), (2, "b")])

        def member(gid):
            return Policy.from_sql(
                f"p-{gid}",
                f"SELECT DISTINCT 'limit {gid}' FROM users u, groups g "
                f"WHERE u.uid = g.uid AND g.gid = '{gid}' "
                "HAVING COUNT(DISTINCT u.ts) > 2",
            )

        enforcer = Enforcer(
            db,
            [member("a"), member("b")],
            clock=SimulatedClock(default_step_ms=10),
        )
        assert any(
            name.startswith("__consts_")
            for name in enforcer.database.table_names()
        )
        save_enforcer_state(enforcer, tmp_path / "state")
        restored = restore_enforcer(tmp_path / "state")
        unified = [r for r in restored.runtime_policies() if r.member_names]
        assert len(unified) == 1

    def test_snapshot_rejects_staged_state(self, tmp_path):
        enforcer = make_enforcer()
        enforcer.store.stage("users", [(1,)], 5)
        with pytest.raises(StorageError):
            save_enforcer_state(enforcer, tmp_path / "state")

    def test_custom_log_relation_requires_registry(self, tmp_path):
        from repro.log import LogFunction, LogRegistry, STANDARD_LOG_FUNCTIONS

        custom = LogFunction(
            name="devices", columns=("d",), generate=lambda c: [("pc",)]
        )
        registry = LogRegistry([*STANDARD_LOG_FUNCTIONS, custom])
        db = Database()
        db.load_table("items", ["k"], [(1,)])
        enforcer = Enforcer(db, [], registry=registry)
        save_enforcer_state(enforcer, tmp_path / "state")
        with pytest.raises(StorageError):
            restore_enforcer(tmp_path / "state")  # default registry lacks it
        restored = restore_enforcer(tmp_path / "state", registry=registry)
        assert restored.database.has_table("devices")


class TestSnapshotEquivalenceProperty:
    """Random streams split at a random point: snapshot+restore mid-stream
    must not change any subsequent decision."""

    def test_random_split_equivalence(self, tmp_path):
        import random

        from repro.workloads import (
            MarketplaceConfig,
            build_marketplace_database,
            make_marketplace_workload,
            standard_contract,
        )

        config = MarketplaceConfig(
            n_listings=40,
            n_subscribers=3,
            rate_limit=2,
            rate_window=100,
            free_tier_tuples=60,
            free_tier_window=1000,
        )
        workload = make_marketplace_workload(config)
        queries = list(workload.all().values())
        rng = random.Random(5)

        for trial in range(4):
            stream = [
                (rng.choice(queries), rng.choice([1, 2, 3]))
                for _ in range(14)
            ]
            split = rng.randrange(3, 11)

            def fresh():
                return Enforcer(
                    build_marketplace_database(config),
                    standard_contract(config),
                    clock=SimulatedClock(default_step_ms=10),
                    options=EnforcerOptions.datalawyer(),
                )

            continuous = fresh()
            snapshotted = fresh()
            for sql, uid in stream[:split]:
                continuous.submit(sql, uid=uid, execute=False)
                snapshotted.submit(sql, uid=uid, execute=False)

            state_dir = tmp_path / f"trial{trial}"
            save_enforcer_state(snapshotted, state_dir)
            restored = restore_enforcer(state_dir)

            for sql, uid in stream[split:]:
                lhs = continuous.submit(sql, uid=uid, execute=False)
                rhs = restored.submit(sql, uid=uid, execute=False)
                assert lhs.allowed == rhs.allowed, (trial, sql, uid)
