"""Batched admission: WAL group commit, the shard's drain-a-batch loop,
and end-to-end equivalence (same decisions, same WAL, fewer fsyncs).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.errors import ServiceError
from repro.log import SimulatedClock, standard_registry
from repro.service import ServiceConfig, ShardedEnforcerService
from repro.service.shard import Shard
from repro.storage import read_wal
from repro.storage.wal import WalError, WriteAheadLog

QUERY = "SELECT iid FROM items"


def make_enforcer() -> Enforcer:
    db = Database()
    db.load_table("items", ["iid"], [(1,), (2,), (3,)])
    policy = Policy.from_sql(
        "deny-9", "SELECT DISTINCT 'uid 9 blocked' FROM users u WHERE u.uid = 9"
    )
    return Enforcer(
        db,
        [policy],
        registry=standard_registry(),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


# ---------------------------------------------------------------------------
# WAL group commit
# ---------------------------------------------------------------------------


class TestWalBatch:
    def records(self, path):
        return [
            r for r in read_wal(path).records if r.get("type") != "header"
        ]

    def test_batch_is_one_fsync_and_byte_identical(self, tmp_path):
        plain = WriteAheadLog(tmp_path / "plain.wal")
        grouped = WriteAheadLog(tmp_path / "grouped.wal")
        base_plain, base_grouped = plain.fsyncs, grouped.fsyncs

        for i in range(5):
            plain.append({"type": "commit", "i": i})
        with grouped.batch():
            for i in range(5):
                grouped.append({"type": "commit", "i": i})

        assert plain.fsyncs - base_plain == 5
        assert grouped.fsyncs - base_grouped == 1
        assert plain.appends == grouped.appends == 5
        plain.close()
        grouped.close()
        assert (tmp_path / "plain.wal").read_bytes() == (
            tmp_path / "grouped.wal"
        ).read_bytes()

    def test_sequence_numbers_are_continuous(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append({"type": "commit"})
        with wal.batch():
            assert wal.append({"type": "commit"}) == 2
            assert wal.append({"type": "reject"}) == 3
        wal.close()
        assert [r["seq"] for r in self.records(tmp_path / "wal")] == [1, 2, 3]

    def test_nested_windows_are_noops(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        base = wal.fsyncs
        with wal.batch():
            wal.append({"type": "commit"})
            with wal.batch():
                wal.append({"type": "commit"})
            assert wal.fsyncs == base  # inner exit must not flush
        assert wal.fsyncs == base + 1
        wal.close()
        assert len(self.records(tmp_path / "wal")) == 2

    def test_exception_still_flushes_buffered_frames(self, tmp_path):
        # The buffered records' sequence numbers are already handed out;
        # dropping them would leave a gap recovery refuses to replay.
        wal = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(RuntimeError):
            with wal.batch():
                wal.append({"type": "commit"})
                raise RuntimeError("mid-batch crash")
        wal.close()
        scan = read_wal(tmp_path / "wal")
        assert not scan.torn
        assert [r["seq"] for r in self.records(tmp_path / "wal")] == [1]

    def test_reset_refused_inside_a_window(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        with wal.batch():
            with pytest.raises(WalError, match="batch window"):
                wal.reset()
        wal.close()

    def test_empty_window_writes_nothing(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        base = wal.fsyncs
        with wal.batch():
            pass
        assert wal.fsyncs == base
        wal.close()


# ---------------------------------------------------------------------------
# Shard-level batching
# ---------------------------------------------------------------------------


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError("condition not reached in time")


class TestShardBatching:
    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Shard(0, make_enforcer(), queue_depth=4, batch_size=0)
        with pytest.raises(ServiceError):
            ServiceConfig(batch_size=0)

    def test_worker_drains_a_backlog_in_one_batch(self):
        shard = Shard(
            0, make_enforcer(), queue_depth=16, workers=1, batch_size=4
        )
        try:
            futures = []

            def job(enforcer):
                return enforcer.submit(QUERY, uid=1)

            # Park the worker on the shard lock with one job in hand,
            # queue four more behind it, then let go: the next wakeup
            # must drain them as one batch (capped at batch_size).
            with shard.lock:
                futures.append(shard.offer(job))
                wait_until(lambda: shard.busy_workers() == 1)
                for _ in range(4):
                    futures.append(shard.offer(job))
            decisions = [f.result(timeout=10) for f in futures]
            assert all(d.allowed for d in decisions)
            snap = shard.counters.prom_snapshot()["batch_hist"]
            assert snap.count == 2
            assert snap.sum == 5.0
        finally:
            shard.drain(timeout=10)

    def test_one_bad_query_fails_alone_in_a_batch(self):
        shard = Shard(
            0, make_enforcer(), queue_depth=16, workers=1, batch_size=8
        )
        try:
            good = lambda enforcer: enforcer.submit(QUERY, uid=1)  # noqa: E731
            bad = lambda enforcer: enforcer.submit("SELECT nope FROM", uid=1)  # noqa: E731
            with shard.lock:
                futures = [shard.offer(good)]
                wait_until(lambda: shard.busy_workers() == 1)
                futures.append(shard.offer(bad))
                futures.append(shard.offer(good))
            assert futures[0].result(timeout=10).allowed
            with pytest.raises(Exception):
                futures[1].result(timeout=10)
            assert futures[2].result(timeout=10).allowed
        finally:
            shard.drain(timeout=10)

    def test_drain_with_many_workers_does_not_hang(self):
        # Drain floods the queue with one stop sentinel per worker; a
        # batching worker that swallows a sibling's sentinel would leave
        # that sibling blocked forever.
        shard = Shard(
            0, make_enforcer(), queue_depth=32, workers=4, batch_size=8
        )
        futures = [
            shard.offer(lambda enforcer: enforcer.submit(QUERY, uid=1))
            for _ in range(8)
        ]
        shard.drain(timeout=10)
        assert all(f.result(timeout=1).allowed for f in futures)


# ---------------------------------------------------------------------------
# End-to-end: batched and unbatched services are indistinguishable
# ---------------------------------------------------------------------------


class TestServiceEquivalence:
    UIDS = [1, 2, 9, 1, 2, 9, 1, 2, 9, 1, 2, 9]

    def run_unbatched(self, data_dir):
        config = ServiceConfig(shards=1, data_dir=str(data_dir), batch_size=1)
        service = ShardedEnforcerService(make_enforcer(), config)
        decisions = {}
        for uid in self.UIDS:
            decisions[uid] = service.submit(QUERY, uid=uid).allowed
        return service, decisions

    def run_batched(self, data_dir):
        config = ServiceConfig(shards=1, data_dir=str(data_dir), batch_size=8)
        service = ShardedEnforcerService(make_enforcer(), config)
        decisions = {}
        lock = threading.Lock()

        def submit(uid):
            allowed = service.submit(QUERY, uid=uid).allowed
            with lock:
                decisions[uid] = allowed

        shard = service.shards[0]
        # Stall the worker so the concurrent submissions pile up in the
        # admission queue and get drained as group-committed batches.
        with shard.lock:
            threads = [
                threading.Thread(target=submit, args=(uid,))
                for uid in self.UIDS
            ]
            for thread in threads:
                thread.start()
            wait_until(
                lambda: shard.queue_depth() + shard.busy_workers()
                >= len(self.UIDS)
            )
        for thread in threads:
            thread.join(timeout=10)
        return service, decisions

    def test_same_decisions_same_wal_fewer_fsyncs(self, tmp_path):
        plain_service, plain = self.run_unbatched(tmp_path / "plain")
        batch_service, batched = self.run_batched(tmp_path / "batched")
        try:
            assert batched == plain == {1: True, 2: True, 9: False}
            plain_wal = plain_service.shards[0].durability.wal
            batch_wal = batch_service.shards[0].durability.wal
            assert plain_wal.appends == batch_wal.appends
            assert batch_wal.fsyncs < plain_wal.fsyncs
            snap = batch_service.shards[0].counters.prom_snapshot()[
                "batch_hist"
            ]
            assert snap.sum == float(len(self.UIDS))
            assert snap.count < len(self.UIDS)
            assert (
                plain_service.log_sizes() == batch_service.log_sizes()
            )
        finally:
            plain_service.drain(timeout=10)
            batch_service.drain(timeout=10)

    def test_recovery_after_batched_run(self, tmp_path):
        service, _ = self.run_batched(tmp_path)
        before = service.log_sizes()
        service.drain(timeout=10)

        config = ServiceConfig(shards=1, data_dir=str(tmp_path), batch_size=8)
        restarted = ShardedEnforcerService(make_enforcer(), config)
        try:
            assert restarted.log_sizes() == before
            status = restarted.durability_status()
            report = status["recovered_shards"][0]
            assert report["last_seq"] == len(self.UIDS)
            assert restarted.submit(QUERY, uid=1).allowed
        finally:
            restarted.drain(timeout=10)
