"""Unit tests for repro.service: routing, placement, shards, coordinator."""

import threading
import time

import pytest

from repro.core import BUILTIN_TEMPLATES, Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.errors import (
    PolicyError,
    PolicyPlacementError,
    ServiceClosedError,
    ServiceError,
)
from repro.log import SimulatedClock
from repro.service import (
    GLOBAL_SCOPES,
    SCOPE_GLOBAL_ASYNC,
    SCOPE_GLOBAL_STRICT,
    SCOPE_LOCAL,
    ServiceConfig,
    ShardedEnforcerService,
    ShardRouter,
    classify_policy,
    mix64,
    percentile,
)
from repro.workloads import (
    MarketplaceConfig,
    build_marketplace_database,
    sharded_contract,
    standard_contract,
)


def make_enforcer(policies=()):
    db = Database()
    db.load_table("items", ["id", "price"], [(1, 10), (2, 20), (3, 30)])
    db.load_table("extras", ["id"], [(1,), (2,)])
    return Enforcer(
        db,
        list(policies),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


class TestRouting:
    def test_mix64_is_deterministic_and_avalanches(self):
        assert mix64(7) == mix64(7)
        assert mix64(7) != mix64(8)
        assert 0 <= mix64(2**70) < 2**64  # masked to 64 bits

    def test_single_shard_always_zero(self):
        router = ShardRouter(1)
        assert [router.shard_for(uid) for uid in range(50)] == [0] * 50

    def test_modulo_strategy_is_predictable(self):
        router = ShardRouter(4, "modulo")
        assert router.shard_for(6) == 2
        assert router.partition(range(8)) == {
            0: [0, 4], 1: [1, 5], 2: [2, 6], 3: [3, 7]
        }

    def test_hash_strategy_is_stable_and_spreads(self):
        router = ShardRouter(4)
        placements = [router.shard_for(uid) for uid in range(100)]
        assert placements == [router.shard_for(uid) for uid in range(100)]
        assert len(set(placements)) == 4  # all shards used

    def test_invalid_router_args(self):
        with pytest.raises(ServiceError):
            ShardRouter(0)
        with pytest.raises(ServiceError):
            ShardRouter(2, "random")


class TestServiceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"queue_depth": 0},
            {"workers": 0},
            {"dispatch_seconds": -0.1},
            {"routing": "rendezvous"},
            {"latency_window": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ServiceError):
            ServiceConfig(**kwargs)


class TestPlacement:
    @pytest.fixture
    def registry(self):
        return make_enforcer().registry

    def classify(self, registry, template, **slots):
        policy = BUILTIN_TEMPLATES.instantiate(template, **slots)
        return classify_policy(policy, registry)

    def test_no_log_atoms_is_local(self, registry):
        policy = Policy.from_sql(
            "static", "SELECT DISTINCT 'pricey' FROM items i WHERE i.price > 25"
        )
        placement = classify_policy(policy, registry)
        assert placement.scope == SCOPE_LOCAL

    def test_rate_limit_is_uid_pinned(self, registry):
        placement = self.classify(
            registry, "rate-limit", uid=7, max_requests=3, window=1000
        )
        assert placement.scope == SCOPE_LOCAL
        assert placement.pinned_uid == 7

    def test_user_volume_quota_is_local(self, registry):
        placement = self.classify(
            registry, "user-volume-quota",
            relation="items", uid=2, max_tuples=10, window=1000,
        )
        assert placement.is_local

    def test_current_query_shapes_are_local(self, registry):
        for template, slots in [
            ("no-joins", {"relation": "items"}),
            ("no-aggregation", {"relation": "items"}),
        ]:
            assert self.classify(registry, template, **slots).is_local

    def test_k_anonymity_groups_by_query(self, registry):
        placement = self.classify(registry, "k-anonymity", relation="items", k=3)
        assert placement.is_local

    def test_cross_user_aggregates_are_global(self, registry):
        quota = self.classify(
            registry, "volume-quota",
            relation="items", max_tuples=100, window=1000,
        )
        group = self.classify(
            registry, "group-access-window",
            relation="items", group="analysts", max_users=2, window=1000,
        )
        assert quota.is_global
        assert group.is_global
        assert quota.scope in GLOBAL_SCOPES
        assert group.scope in GLOBAL_SCOPES

    def test_expanding_window_is_global(self, registry):
        policy = Policy.from_sql(
            "aging",
            "SELECT DISTINCT 'stale' FROM users u, clock c "
            "WHERE u.uid = 3 AND u.ts < c.ts - 1000",
        )
        placement = classify_policy(policy, registry)
        assert placement.is_global
        # No database handed over: nothing is incrementalizable, so the
        # refined verdict is strict.
        assert placement.scope == SCOPE_GLOBAL_STRICT

    def test_subquery_log_atoms_stay_conservative(self, registry):
        policy = Policy.from_sql(
            "nested",
            "SELECT DISTINCT 'hidden' FROM "
            "(SELECT uid FROM users) q WHERE q.uid = 1",
        )
        assert classify_policy(policy, registry).is_global


class TestEnforcerClone:
    def test_clone_has_independent_log(self):
        enforcer = make_enforcer(
            [BUILTIN_TEMPLATES.instantiate(
                "rate-limit", uid=1, max_requests=100, window=10_000
            )]
        )
        enforcer.submit("SELECT * FROM items", uid=1)
        clone = enforcer.clone()
        assert clone.log_sizes()["users"] == 0  # fresh per-shard log
        clone.submit("SELECT * FROM items", uid=1)
        assert enforcer.log_sizes()["users"] == 1  # original untouched
        assert [p.name for p in clone.policies] == [
            p.name for p in enforcer.policies
        ]

    def test_clone_shares_base_data_snapshot(self):
        enforcer = make_enforcer()
        clone = enforcer.clone()
        decision = clone.submit("SELECT id FROM items", uid=1)
        assert len(decision.result.rows) == 3


class TestCoordinator:
    def make_service(self, shards=2, **kwargs):
        enforcer = make_enforcer(
            [BUILTIN_TEMPLATES.instantiate(
                "rate-limit", uid=1, max_requests=100, window=10_000
            )]
        )
        kwargs.setdefault("routing", "modulo")
        return ShardedEnforcerService(
            enforcer, ServiceConfig(shards=shards, **kwargs)
        )

    def test_rejects_global_policies_at_startup(self):
        config = MarketplaceConfig()
        enforcer = Enforcer(
            build_marketplace_database(config),
            standard_contract(config),  # contains the global free-tier quota
            clock=SimulatedClock(default_step_ms=10),
        )
        with pytest.raises(PolicyPlacementError):
            ShardedEnforcerService(enforcer, ServiceConfig(shards=4))
        # the same contract is fine on a single shard
        service = ShardedEnforcerService(enforcer, ServiceConfig(shards=1))
        service.drain()

    def test_sharded_contract_is_accepted(self):
        config = MarketplaceConfig()
        enforcer = Enforcer(
            build_marketplace_database(config),
            sharded_contract(config),
            clock=SimulatedClock(default_step_ms=10),
        )
        service = ShardedEnforcerService(enforcer, ServiceConfig(shards=4))
        assert all(p.is_local for p in service.placements())
        service.drain()

    def test_add_policy_broadcasts_and_bumps_epoch(self):
        service = self.make_service()
        assert service.epoch == 0
        epoch = service.add_policy(
            BUILTIN_TEMPLATES.instantiate(
                "no-joins", policy_name="fence", relation="items"
            )
        )
        assert epoch == 1
        for shard in service.shards:
            assert shard.epoch == 1
            assert "fence" in shard.policy_names()
        # the new policy is live on a shard other than shard 0
        decision = service.submit(
            "SELECT a.id FROM items a, extras b WHERE a.id = b.id", uid=1
        )
        assert not decision.allowed
        service.drain()

    def test_remove_policy_broadcasts(self):
        service = self.make_service()
        service.remove_policy("rate-limit-1-100-10000")
        for shard in service.shards:
            assert shard.policy_names() == []
        assert service.epoch == 1
        service.drain()

    def test_duplicate_and_missing_policy_errors(self):
        service = self.make_service()
        with pytest.raises(PolicyError):
            service.add_policy(
                BUILTIN_TEMPLATES.instantiate(
                    "rate-limit",
                    policy_name="rate-limit-1-100-10000",
                    uid=1, max_requests=5, window=100,
                )
            )
        with pytest.raises(PolicyError):
            service.remove_policy("ghost")
        service.drain()

    def test_global_policy_install_is_refused_when_sharded(self):
        service = self.make_service()
        with pytest.raises(PolicyPlacementError):
            service.add_policy(
                BUILTIN_TEMPLATES.instantiate(
                    "volume-quota",
                    relation="items", max_tuples=10, window=1000,
                )
            )
        assert service.epoch == 0  # nothing installed anywhere
        service.drain()

    def test_policies_listing_carries_placement(self):
        service = self.make_service()
        [entry] = service.policies()
        assert entry["placement"] == SCOPE_LOCAL
        assert entry["name"] == "rate-limit-1-100-10000"
        service.drain()

    def test_routing_and_per_shard_logs(self):
        # One pinned rate limit per uid, or compaction (rightly) discards
        # the log rows no policy could ever witness.
        enforcer = make_enforcer(
            [
                BUILTIN_TEMPLATES.instantiate(
                    "rate-limit", uid=uid, max_requests=100, window=10_000
                )
                for uid in (2, 3, 4, 5)
            ]
        )
        service = ShardedEnforcerService(
            enforcer, ServiceConfig(shards=2, routing="modulo")
        )
        for uid in (2, 3, 4, 5):
            service.submit("SELECT * FROM items", uid=uid)
        per_shard = service.per_shard_log_sizes()
        assert per_shard[0]["users"] == 2  # uids 2, 4
        assert per_shard[1]["users"] == 2  # uids 3, 5
        assert service.log_sizes()["users"] == 4
        service.drain()

    def test_stats_shape_and_totals(self):
        service = self.make_service()
        service.submit("SELECT * FROM items", uid=2)
        with pytest.raises(Exception):
            service.submit("SELEKT broken", uid=2)
        stats = service.stats()
        assert stats["shards"] == 2
        assert len(stats["per_shard"]) == 2
        entry = stats["per_shard"][0]
        for key in (
            "admitted", "rejected", "completed", "allowed", "denied",
            "errors", "p50_ms", "p95_ms", "queue_wait_p95_ms",
            "phase_mean_ms", "queue_depth", "queue_capacity", "epoch",
        ):
            assert key in entry
        assert stats["totals"]["admitted"] == 2
        assert stats["totals"]["allowed"] == 1
        assert stats["totals"]["errors"] == 1
        service.drain()

    def test_submit_errors_propagate(self):
        service = self.make_service()
        with pytest.raises(Exception):
            service.submit("SELEKT nope", uid=1)
        service.drain()

    def test_drain_refuses_new_work(self):
        service = self.make_service()
        service.drain()
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.submit("SELECT * FROM items", uid=1)
        service.drain()  # idempotent


class TestMetrics:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.95) == 0.0
        assert percentile([5.0], 0.5) == 5.0
        samples = list(range(1, 101))
        assert percentile(samples, 0.50) == 51
        assert percentile(samples, 0.95) == 96


class TestRetryAfterHint:
    def test_idle_workers_do_not_inflate_hint(self):
        # Regression: retry_after_hint counted *every* worker as
        # in-flight, so an idle 3-worker shard advertised 3 × the mean
        # check latency. Idle workers are capacity, not backlog: with no
        # queued jobs and no busy workers the hint must be the floor.
        from repro.service.shard import Shard

        shard = Shard(
            0, make_enforcer(), queue_depth=4, workers=3,
            dispatch_seconds=0.02,
        )
        try:
            shard.offer(
                lambda e: e.submit("SELECT id FROM items", uid=1)
            ).result(timeout=5.0)
            deadline = time.time() + 2.0
            while shard.busy_workers() and time.time() < deadline:
                time.sleep(0.001)
            assert shard.busy_workers() == 0
            mean = shard.counters.mean_latency()
            assert mean >= 0.02  # the modeled dispatch delay dominates
            assert shard.retry_after_hint() == pytest.approx(0.001)
        finally:
            shard.drain()

    def test_busy_worker_counts_toward_hint(self):
        from repro.service.shard import Shard

        started = threading.Event()
        release = threading.Event()

        def job(enforcer):
            started.set()
            release.wait(5.0)
            return enforcer.submit("SELECT id FROM items", uid=1)

        shard = Shard(0, make_enforcer(), queue_depth=4, workers=2)
        try:
            future = shard.offer(job)
            assert started.wait(5.0)
            assert shard.busy_workers() == 1
            # Backlog is exactly the one busy worker (the second worker
            # is idle and must not count): default mean × 1.
            assert shard.retry_after_hint() == pytest.approx(0.05)
            release.set()
            assert future.result(timeout=5.0).allowed
        finally:
            release.set()
            shard.drain()
