"""Randomized policy generation × randomized streams × all optimizations.

The fixed-pool equivalence tests pin down the six experiment policies;
this module *generates* policies across the whole supported shape space —
random log relations, optional ts-joins, optional clock windows, random
predicates, optional grouping and thresholds — and checks that the fully
optimized DataLawyer decides random query streams exactly like the naive
NoOpt semantics. This is the test most likely to catch a subtle witness/
partial/time-independence bug on an unusual policy shape.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.errors import PolicySyntaxError
from repro.log import SimulatedClock

QUERIES = [
    "SELECT * FROM alpha",
    "SELECT a FROM alpha WHERE a = 1",
    "SELECT b FROM alpha WHERE a > 2",
    "SELECT * FROM beta",
    "SELECT alpha.a FROM alpha, beta WHERE alpha.a = beta.a",
    "SELECT a, COUNT(*) FROM alpha GROUP BY a",
]


def build_db() -> Database:
    db = Database()
    db.load_table("alpha", ["a", "b"], [(1, "x"), (2, "y"), (3, "z"), (4, "w")])
    db.load_table("beta", ["a", "c"], [(1, 10), (3, 30)])
    return db


@st.composite
def policy_sql(draw) -> str:
    """One random (valid) policy over users/schema/provenance/clock."""
    relations = draw(
        st.lists(
            st.sampled_from(["users", "schema", "provenance"]),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    aliases = {relation: relation[0] for relation in relations}
    from_items = [f"{relation} {alias}" for relation, alias in aliases.items()]
    conjuncts: list[str] = []

    # ts-join the log relations (or, sometimes, don't).
    alias_list = list(aliases.values())
    if len(alias_list) == 2 and draw(st.booleans()):
        conjuncts.append(f"{alias_list[0]}.ts = {alias_list[1]}.ts")

    # optional clock window on the first relation
    use_clock = draw(st.booleans())
    if use_clock:
        window = draw(st.sampled_from([30, 50, 120]))
        from_items.append("clock c")
        conjuncts.append(f"{alias_list[0]}.ts > c.ts - {window}")

    # relation-specific predicates
    if "users" in aliases and draw(st.booleans()):
        conjuncts.append(f"{aliases['users']}.uid = {draw(st.integers(0, 2))}")
    if "schema" in aliases and draw(st.booleans()):
        table = draw(st.sampled_from(["alpha", "beta"]))
        conjuncts.append(f"{aliases['schema']}.irid = '{table}'")
    if "provenance" in aliases and draw(st.booleans()):
        table = draw(st.sampled_from(["alpha", "beta"]))
        conjuncts.append(f"{aliases['provenance']}.irid = '{table}'")

    # optional grouping + threshold
    clauses = ""
    kind = draw(st.integers(0, 3))
    first = alias_list[0]
    if kind == 1:
        threshold = draw(st.integers(0, 3))
        clauses = f" HAVING COUNT(DISTINCT {first}.ts) > {threshold}"
    elif kind == 2 and "provenance" in aliases:
        p = aliases["provenance"]
        threshold = draw(st.integers(0, 2))
        clauses = (
            f" GROUP BY {p}.ts, {p}.otid "
            f"HAVING COUNT(DISTINCT {p}.itid) <= {threshold}"
        )
    elif kind == 3:
        threshold = draw(st.integers(1, 4))
        clauses = (
            f" GROUP BY {first}.ts "
            f"HAVING COUNT(DISTINCT {first}.ts) >= {threshold}"
        )

    where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""
    return (
        "SELECT DISTINCT 'generated policy fired' FROM "
        + ", ".join(from_items)
        + where
        + clauses
    )


streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(QUERIES) - 1),
        st.integers(min_value=0, max_value=2),
    ),
    min_size=3,
    max_size=10,
)


def run(options, policies, stream):
    enforcer = Enforcer(
        build_db(),
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=options,
    )
    return [
        enforcer.submit(QUERIES[qi], uid=uid, execute=False).allowed
        for qi, uid in stream
    ]


@settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sqls=st.lists(policy_sql(), min_size=1, max_size=3),
    stream=streams,
)
def test_random_policies_decide_identically(sqls, stream):
    policies = []
    for index, sql in enumerate(sqls):
        try:
            policies.append(Policy.from_sql(f"gen{index}", sql))
        except PolicySyntaxError:
            return  # generator produced an unsupported shape; skip
    baseline = run(EnforcerOptions.noopt(), policies, stream)
    optimized = run(EnforcerOptions.datalawyer(), policies, stream)
    assert optimized == baseline


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sqls=st.lists(policy_sql(), min_size=1, max_size=2),
    stream=streams,
)
def test_random_policies_with_improved_partial(sqls, stream):
    policies = []
    for index, sql in enumerate(sqls):
        try:
            policies.append(Policy.from_sql(f"gen{index}", sql))
        except PolicySyntaxError:
            return
    baseline = run(EnforcerOptions.noopt(), policies, stream)
    optimized = run(
        EnforcerOptions.datalawyer(improved_partial=True), policies, stream
    )
    assert optimized == baseline


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    sqls=st.lists(policy_sql(), min_size=1, max_size=2),
    stream=streams,
    interval=st.integers(min_value=2, max_value=6),
)
def test_random_policies_with_deferred_compaction(sqls, stream, interval):
    policies = []
    for index, sql in enumerate(sqls):
        try:
            policies.append(Policy.from_sql(f"gen{index}", sql))
        except PolicySyntaxError:
            return
    baseline = run(EnforcerOptions.noopt(), policies, stream)
    optimized = run(
        EnforcerOptions.datalawyer(compaction_every=interval), policies, stream
    )
    assert optimized == baseline
