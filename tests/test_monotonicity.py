"""Monotonicity classification and interleavability (§4.2.1)."""

import pytest

from repro.analysis import can_interleave, is_monotone
from repro.sql import parse
from repro.workloads import PolicyParams, make_policy


def q(sql):
    return parse(sql)


class TestMonotone:
    def test_spj_is_monotone(self):
        assert is_monotone(q("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1"))

    def test_filters_do_not_break_monotonicity(self):
        assert is_monotone(
            q("SELECT DISTINCT 'e' FROM users u WHERE u.uid <> 1 AND u.ts > 5")
        )

    def test_union_of_monotone_is_monotone(self):
        assert is_monotone(
            q("SELECT 'a' FROM users u UNION SELECT 'b' FROM schema s")
        )

    def test_count_greater_is_monotone(self):
        assert is_monotone(
            q("SELECT DISTINCT 'e' FROM users u HAVING COUNT(DISTINCT u.uid) > 10")
        )

    def test_count_ge_is_monotone(self):
        assert is_monotone(q("SELECT DISTINCT 'e' FROM users u HAVING COUNT(*) >= 3"))

    def test_flipped_comparison_normalized(self):
        assert is_monotone(q("SELECT DISTINCT 'e' FROM users u HAVING 10 < COUNT(*)"))

    def test_max_greater_is_monotone(self):
        assert is_monotone(q("SELECT DISTINCT 'e' FROM users u HAVING MAX(u.ts) > 5"))

    def test_having_filter_on_group_key_is_monotone(self):
        assert is_monotone(
            q(
                "SELECT DISTINCT 'e' FROM users u GROUP BY u.uid "
                "HAVING u.uid > 3 AND COUNT(*) > 2"
            )
        )


class TestNonMonotone:
    def test_count_less_is_not_monotone(self):
        assert not is_monotone(
            q("SELECT DISTINCT 'e' FROM provenance p HAVING COUNT(*) < 10")
        )

    def test_count_le_is_not_monotone(self):
        assert not is_monotone(
            q("SELECT DISTINCT 'e' FROM provenance p HAVING COUNT(*) <= 3")
        )

    def test_count_equality_is_not_monotone(self):
        assert not is_monotone(
            q("SELECT DISTINCT 'e' FROM provenance p HAVING COUNT(*) = 3")
        )

    def test_sum_greater_not_assumed_monotone(self):
        # sum can shrink with negative values; conservatively non-monotone
        assert not is_monotone(
            q("SELECT DISTINCT 'e' FROM provenance p HAVING SUM(p.otid) > 3")
        )

    def test_min_greater_is_not_monotone(self):
        assert not is_monotone(
            q("SELECT DISTINCT 'e' FROM provenance p HAVING MIN(p.otid) > 3")
        )

    def test_except_is_not_monotone(self):
        assert not is_monotone(
            q("SELECT uid FROM users EXCEPT SELECT otid FROM provenance")
        )

    def test_aggregate_on_both_sides_not_monotone(self):
        assert not is_monotone(
            q("SELECT DISTINCT 'e' FROM users u HAVING COUNT(*) > COUNT(DISTINCT u.uid)")
        )

    def test_non_monotone_subquery_poisons(self):
        assert not is_monotone(
            q(
                "SELECT DISTINCT 'e' FROM "
                "(SELECT p.ts FROM provenance p HAVING COUNT(*) < 2) x"
            )
        )


class TestCanInterleave:
    def test_monotone_always_interleaves(self):
        assert can_interleave(q("SELECT DISTINCT 'e' FROM users u"))

    def test_non_monotone_with_group_by_interleaves(self):
        assert can_interleave(
            q(
                "SELECT DISTINCT 'e' FROM provenance p "
                "GROUP BY p.ts, p.otid HAVING COUNT(DISTINCT p.itid) <= 3"
            )
        )

    def test_non_monotone_scalar_does_not_interleave(self):
        assert not can_interleave(
            q("SELECT DISTINCT 'e' FROM provenance p HAVING COUNT(*) < 10")
        )

    def test_except_does_not_interleave(self):
        assert not can_interleave(
            q("SELECT uid FROM users EXCEPT SELECT otid FROM provenance")
        )


class TestPaperPolicies:
    def test_classification_of_p1_to_p6(self):
        """P4 (count <= k) is the only non-monotone experiment policy, and
        it still interleaves thanks to its GROUP BY."""
        params = PolicyParams()
        monotone = {
            "P1": True,
            "P2": True,
            "P3": True,
            "P4": False,
            "P5": True,
            "P6": True,
        }
        for name, want in monotone.items():
            policy = make_policy(name, params)
            assert is_monotone(policy.select) is want, name
            assert can_interleave(policy.select), name
