"""Process-backed shards: equivalence, crash recovery, clean drains.

The tentpole properties for ``workers_mode="process"``:

1. decisions are bit-identical to thread mode (the worker rebuilds the
   same enforcer from the bootstrap snapshot and the same clock spec);
2. killing a worker mid-stream is survivable: the shard respawns, a
   durable shard recovers its exact committed state by WAL replay, and
   the policy counts afterwards prove no decision was lost *or*
   duplicated;
3. drain checkpoints: a stopped service restarts with nothing to
   replay.
"""

import os
import signal
import time

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.errors import (
    ServiceClosedError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.log import SimulatedClock
from repro.service import ProcessShard, ServiceConfig, ShardedEnforcerService
from repro.workloads import (
    MarketplaceConfig,
    build_marketplace_database,
    make_marketplace_workload,
    round_robin,
    sharded_contract,
)

COUNTED = "SELECT name FROM listings WHERE biz_id = 1"


def make_config(rate_limit=40):
    return MarketplaceConfig(
        rate_limit=rate_limit, rate_window=10_000_000,
        free_tier_tuples=100_000, free_tier_window=10_000_000,
    )


def make_enforcer(config):
    return Enforcer(
        build_marketplace_database(config),
        sharded_contract(config),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


def make_service(config, **overrides):
    defaults = dict(shards=2, workers_mode="process", routing="modulo")
    defaults.update(overrides)
    return ShardedEnforcerService(
        make_enforcer(config), ServiceConfig(**defaults)
    )


def submit_retrying(service, sql, uid, deadline=30.0):
    """Submit with 429/crash retries: crash-window checks are allowed to
    fail (outcome indeterminate), but the service must recover."""
    end = time.monotonic() + deadline
    while True:
        try:
            return service.submit(sql, uid=uid)
        except (ServiceOverloadedError, WorkerCrashError):
            if time.monotonic() > end:
                raise
            time.sleep(0.05)


def wait_for_respawn(shard: ProcessShard, old_pid, deadline=30.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        state = shard.process_state()
        if state["alive"] and state["pid"] != old_pid:
            return state
        time.sleep(0.05)
    raise AssertionError(f"worker did not respawn (old pid {old_pid})")


@pytest.mark.slow
class TestProcessEquivalence:
    def test_decisions_match_thread_mode(self):
        config = make_config()
        workload = make_marketplace_workload(config)
        uids = [1, 2, 3, 4]
        stream = round_robin(list(workload.all().values()), uids, 48)

        outcomes = {}
        for mode in ("thread", "process"):
            service = ShardedEnforcerService(
                make_enforcer(config),
                ServiceConfig(shards=2, workers_mode=mode, routing="modulo"),
            )
            decisions = [
                service.submit(sql, uid=uid) for sql, uid in stream
            ]
            outcomes[mode] = decisions
            service.drain()

        for got, want in zip(outcomes["process"], outcomes["thread"]):
            assert got.allowed == want.allowed
            assert got.timestamp == want.timestamp
            assert sorted(v.policy_name for v in got.violations) == sorted(
                v.policy_name for v in want.violations
            )
            if want.allowed and want.result is not None:
                assert got.result.columns == want.result.columns
                assert sorted(got.result.rows) == sorted(want.result.rows)

    def test_stats_and_metrics_surface(self):
        service = make_service(make_config())
        service.submit(COUNTED, uid=1)
        stats = service.stats()
        assert stats["workers_mode"] == "process"
        assert stats["totals"]["admitted"] >= 1
        for entry in stats["per_shard"]:
            assert entry["process"]["alive"] is True
            assert entry["process"]["restarts"] == 0
        text = service.render_metrics()
        assert "repro_process_alive" in text
        assert "repro_process_restarts_total" in text
        assert "repro_process_inflight" in text
        service.drain()


@pytest.mark.slow
class TestProcessCrashRecovery:
    def test_kill_quiescent_worker_respawns_via_wal_replay(self, tmp_path):
        """SIGKILL at a quiescent point: the respawned worker replays its
        WAL and the rate-limit count proves no decision was lost or
        duplicated — exactly 5 queries are ever allowed for the uid."""
        config = make_config(rate_limit=5)
        service = make_service(
            config, shards=1, data_dir=str(tmp_path), wal_sync=True
        )
        try:
            for _ in range(3):
                assert service.submit(COUNTED, uid=1).allowed

            shard = service.shards[0]
            old_pid = shard.process_state()["pid"]
            os.kill(old_pid, signal.SIGKILL)
            state = wait_for_respawn(shard, old_pid)
            assert shard.restarts == 1

            # Lost increments would allow more than 2 further queries;
            # duplicated increments would allow fewer.
            allowed = 0
            while allowed < 4:
                decision = submit_retrying(service, COUNTED, uid=1)
                if not decision.allowed:
                    break
                allowed += 1
            assert allowed == 2
            denied = submit_retrying(service, COUNTED, uid=1)
            assert not denied.allowed
            assert any(
                "rate" in v.policy_name for v in denied.violations
            )

            # The respawn shows up on the metrics surface.
            assert state["restarts"] == 1
            text = service.render_metrics()
            assert 'repro_process_restarts_total{shard="0"} 1' in text
        finally:
            service.drain()

    def test_kill_with_requests_in_flight(self, tmp_path):
        """A crash mid-check fails that caller with WorkerCrashError
        (outcome indeterminate) — never a silent wrong answer — and the
        shard keeps serving afterwards."""
        config = make_config()
        service = make_service(
            config,
            shards=1,
            data_dir=str(tmp_path),
            dispatch_seconds=0.2,  # hold checks long enough to kill
        )
        try:
            shard = service.shards[0]
            futures = [
                shard.offer_query(COUNTED, uid=1) for _ in range(3)
            ]
            time.sleep(0.05)  # let the first check enter its dispatch
            old_pid = shard.process_state()["pid"]
            os.kill(old_pid, signal.SIGKILL)

            crashed = 0
            for future in futures:
                try:
                    future.result(timeout=30)
                except WorkerCrashError:
                    crashed += 1
            assert crashed == len(futures)

            wait_for_respawn(shard, old_pid)
            decision = submit_retrying(service, COUNTED, uid=1)
            assert decision.allowed
            assert service.stats()["per_shard"][0]["process"]["restarts"] == 1
        finally:
            service.drain()

    def test_nondurable_kill_rebootstraps_from_snapshot(self):
        """Without --data-dir the respawned worker reboots from the
        startup snapshot (its log slice is lost — the documented
        trade); policies installed since startup are re-synced."""
        service = make_service(make_config(), shards=1)
        try:
            from repro.core import BUILTIN_TEMPLATES

            service.add_policy(
                BUILTIN_TEMPLATES.instantiate(
                    "no-joins", policy_name="fence", relation="items"
                )
            )
            shard = service.shards[0]
            old_pid = shard.process_state()["pid"]
            os.kill(old_pid, signal.SIGKILL)
            wait_for_respawn(shard, old_pid)

            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if "fence" in shard.policy_names():
                    break
                time.sleep(0.05)
            assert "fence" in shard.policy_names()
            assert shard.epoch == service.epoch
            decision = submit_retrying(service, COUNTED, uid=1)
            assert decision.allowed
        finally:
            service.drain()


@pytest.mark.slow
class TestProcessDrain:
    def test_drain_checkpoints_and_restart_replays_nothing(self, tmp_path):
        config = make_config(rate_limit=5)
        service = make_service(
            config, shards=1, data_dir=str(tmp_path), wal_sync=True
        )
        for _ in range(3):
            assert service.submit(COUNTED, uid=1).allowed
        service.drain()
        with pytest.raises(ServiceClosedError):
            service.submit(COUNTED, uid=1)

        revived = make_service(
            config, shards=1, data_dir=str(tmp_path), wal_sync=True
        )
        try:
            # Clean drain → checkpointed snapshot, empty WAL.
            assert len(revived.recovery_reports) == 1
            assert revived.recovery_reports[0].replayed == 0
            # The recovered count picks up exactly where the drain left.
            assert revived.submit(COUNTED, uid=1).allowed
            assert revived.submit(COUNTED, uid=1).allowed
            assert not revived.submit(COUNTED, uid=1).allowed
        finally:
            revived.drain()

@pytest.mark.slow
class TestBroadcastRollback:
    """The policy-broadcast rollback paths: a shard that refuses (or
    dies during) a broadcast must not leave the applied prefix
    enforcing a policy the service does not report."""

    def test_dead_shard_mid_broadcast_rolls_back_applied_prefix(self):
        from repro.core import BUILTIN_TEMPLATES
        from repro.errors import ReproError

        service = make_service(make_config())
        try:
            shard_zero, shard_one = service.shards
            epoch_before = service.epoch
            old_pid = shard_one.process_state()["pid"]
            os.kill(old_pid, signal.SIGKILL)

            fence = BUILTIN_TEMPLATES.instantiate(
                "no-joins", policy_name="fence", relation="items"
            )
            with pytest.raises(ReproError):
                service.add_policy(fence)

            # Shard 0 applied and was rolled back; the epoch never moved.
            assert not service.has_policy("fence")
            assert service.epoch == epoch_before
            assert "fence" not in shard_zero.policy_names()

            # The respawned worker re-syncs (policies + epoch) and the
            # same broadcast then lands everywhere.
            wait_for_respawn(shard_one, old_pid)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    service.add_policy(fence)
                    break
                except ReproError:
                    time.sleep(0.1)
            assert service.has_policy("fence")
            assert "fence" in shard_zero.policy_names()
            assert "fence" in shard_one.policy_names()
            assert shard_zero.epoch == shard_one.epoch == service.epoch
        finally:
            service.drain()

    def test_rollback_tolerates_a_dead_applied_shard(self):
        """The rollback RPC itself may land on a corpse (shard 0 dies
        between applying the add and the rollback): the coordinator must
        swallow that and still re-raise the original broadcast error —
        the respawned worker re-bootstraps without the policy anyway."""
        from repro.core import BUILTIN_TEMPLATES
        from repro.errors import ReproError, WorkerCrashError

        service = make_service(make_config())
        try:
            shard_zero, shard_one = service.shards
            old_pid = shard_zero.process_state()["pid"]

            def crash_after_killing_prefix(action, name, **kwargs):
                os.kill(old_pid, signal.SIGKILL)
                raise WorkerCrashError(
                    "shard 1 worker died mid-request; outcome indeterminate"
                )

            shard_one.apply_policy_change = crash_after_killing_prefix
            fence = BUILTIN_TEMPLATES.instantiate(
                "no-joins", policy_name="fence", relation="items"
            )
            with pytest.raises(ReproError):
                service.add_policy(fence)
            assert not service.has_policy("fence")

            # Shard 0 re-bootstraps from the reference set — no fence.
            wait_for_respawn(shard_zero, old_pid)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if shard_zero.epoch == service.epoch and (
                    "fence" not in shard_zero.policy_names()
                ):
                    break
                time.sleep(0.1)
            assert "fence" not in shard_zero.policy_names()
            assert shard_zero.epoch == service.epoch
        finally:
            service.drain()
