"""Violation explanations (§6 future work, implemented)."""

import pytest

from repro import Database, Policy, SimulatedClock
from repro.core import (
    Enforcer,
    EnforcerOptions,
    explain_decision,
    make_datalawyer,
)


@pytest.fixture
def setup():
    db = Database()
    db.load_table("navteq", ["id", "lat"], [(1, 47.0), (2, 40.0)])
    db.load_table("other", ["id"], [(1,)])
    db.load_table("groups", ["uid", "gid"], [(1, "students"), (2, "students")])
    no_joins = Policy.from_sql(
        "no-joins",
        "SELECT DISTINCT 'No external joins allowed' FROM schema p1, schema p2 "
        "WHERE p1.ts = p2.ts AND p1.irid = 'navteq' AND p2.irid <> 'navteq'",
    )
    rate = Policy.from_sql(
        "rate",
        "SELECT DISTINCT 'too many student queries' FROM users u, groups g, clock c "
        "WHERE u.uid = g.uid AND g.gid = 'students' AND u.ts > c.ts - 1000 "
        "HAVING COUNT(DISTINCT u.ts) > 2",
    )
    enforcer = Enforcer(
        db,
        [no_joins, rate],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    return db, enforcer


JOIN_SQL = "SELECT n.id FROM navteq n, other o WHERE n.id = o.id"


class TestExplainDecision:
    def test_allowed_decision_has_no_explanation(self, setup):
        _, enforcer = setup
        decision = enforcer.submit("SELECT * FROM navteq", uid=1)
        assert explain_decision(enforcer, decision) == []

    def test_rejected_join_explained(self, setup):
        _, enforcer = setup
        decision = enforcer.submit(JOIN_SQL, uid=1)
        assert not decision.allowed
        (explanation,) = explain_decision(enforcer, decision)
        assert explanation.policy_name == "no-joins"
        assert explanation.message == "No external joins allowed"
        relations = explanation.evidence_by_relation()
        assert "schema" in relations
        irids = {item.values["irid"] for item in relations["schema"]}
        assert irids == {"navteq", "other"}

    def test_current_query_tuples_marked(self, setup):
        _, enforcer = setup
        decision = enforcer.submit(JOIN_SQL, uid=1)
        (explanation,) = explain_decision(enforcer, decision)
        schema_items = explanation.evidence_by_relation()["schema"]
        assert all(item.from_current_query for item in schema_items)

    def test_historic_tuples_not_marked(self, setup):
        _, enforcer = setup
        # two student queries build up history; the third violates rate
        enforcer.submit("SELECT * FROM navteq", uid=1)
        enforcer.submit("SELECT * FROM navteq", uid=2)
        decision = enforcer.submit("SELECT * FROM navteq", uid=1)
        assert not decision.allowed
        (explanation,) = explain_decision(enforcer, decision)
        users_items = explanation.evidence_by_relation()["users"]
        current = [i for i in users_items if i.from_current_query]
        historic = [i for i in users_items if not i.from_current_query]
        assert len(current) == 1
        assert len(historic) == 2

    def test_explanation_renders(self, setup):
        _, enforcer = setup
        decision = enforcer.submit(JOIN_SQL, uid=1)
        (explanation,) = explain_decision(enforcer, decision)
        text = explanation.render()
        assert "no-joins" in text
        assert "schema" in text
        assert "<- this query" in text

    def test_explain_is_side_effect_free(self, setup):
        _, enforcer = setup
        decision = enforcer.submit(JOIN_SQL, uid=1)
        explain_decision(enforcer, decision)
        assert enforcer.store.total_live_size() == 0
        # the system keeps enforcing correctly afterwards
        assert enforcer.submit("SELECT * FROM navteq", uid=1).allowed
        assert not enforcer.submit(JOIN_SQL, uid=1).allowed

    def test_clock_excluded_from_evidence(self, setup):
        _, enforcer = setup
        enforcer.submit("SELECT * FROM navteq", uid=1)
        enforcer.submit("SELECT * FROM navteq", uid=2)
        decision = enforcer.submit("SELECT * FROM navteq", uid=1)
        (explanation,) = explain_decision(enforcer, decision)
        assert "clock" not in explanation.evidence_by_relation()

    def test_decision_without_sql_rejected(self, setup):
        from repro.core import Decision, Violation

        _, enforcer = setup
        bogus = Decision(
            allowed=False,
            timestamp=1,
            violations=[Violation("x", "y")],
        )
        with pytest.raises(ValueError):
            explain_decision(enforcer, bogus)

    def test_multiple_policies_explained(self, setup):
        db, enforcer = setup
        enforcer.submit("SELECT * FROM navteq", uid=1)
        enforcer.submit("SELECT * FROM navteq", uid=2)
        # this query violates BOTH the rate limit and the join restriction
        decision = enforcer.submit(JOIN_SQL, uid=1)
        assert len(decision.violations) == 2
        explanations = explain_decision(enforcer, decision)
        assert {e.policy_name for e in explanations} == {"no-joins", "rate"}
