"""Partial policies and the interleaving chain (§4.2.1, Example 4.5)."""

import pytest

from repro.analysis import partial_chain, partial_policy
from repro.engine import Database
from repro.log import standard_registry
from repro.sql import ast, parse_select, print_query


@pytest.fixture
def registry():
    return standard_registry()


@pytest.fixture
def db():
    db = Database()
    db.load_table("groups", ["uid", "gid"], [(1, "students")])
    return db


P2B_SQL = (
    "SELECT DISTINCT 'P2b violated' "
    "FROM users u, schema s, groups g, clock c "
    "WHERE u.ts = s.ts AND s.irid = 'patients' AND u.uid = g.uid "
    "AND g.gid = 'students' AND u.ts > c.ts - 1209600 "
    "HAVING COUNT(DISTINCT u.uid) > 10"
)


class TestPartialPolicy:
    def test_empty_s_drops_all_logs(self, registry, db):
        """Example 4.5's P2d: only Groups and Clock remain."""
        select = parse_select(P2B_SQL)
        partial = partial_policy(select, set(), registry, db)
        names = [f.binding_name() for f in partial.from_items]
        assert names == ["g", "c"]
        text = print_query(partial)
        assert "u.ts" not in text and "s.irid" not in text
        assert "g.gid = 'students'" in text
        assert partial.having is None  # references removed u

    def test_users_only_keeps_having(self, registry, db):
        """Example 4.5's P2c: COUNT(DISTINCT u.uid) > 10 survives because
        the counted column survives (distinct-count monotonicity)."""
        select = parse_select(P2B_SQL)
        partial = partial_policy(select, {"users"}, registry, db)
        names = [f.binding_name() for f in partial.from_items]
        assert names == ["u", "g", "c"]
        assert partial.having is not None
        text = print_query(partial)
        assert "u.ts > c.ts" in text  # window predicate survives
        assert "s.irid" not in text

    def test_full_s_returns_original(self, registry, db):
        select = parse_select(P2B_SQL)
        partial = partial_policy(
            select, {"users", "schema", "provenance"}, registry, db
        )
        assert partial is select

    def test_count_star_having_dropped(self, registry, db):
        """COUNT(*) is not fan-out-proof: the partial must drop HAVING."""
        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u, schema s "
            "WHERE u.ts = s.ts HAVING COUNT(*) > 10"
        )
        partial = partial_policy(select, {"users"}, registry, db)
        assert partial.having is None

    def test_count_distinct_on_removed_column_dropped(self, registry, db):
        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u, schema s "
            "WHERE u.ts = s.ts HAVING COUNT(DISTINCT s.irid) > 2"
        )
        partial = partial_policy(select, {"users"}, registry, db)
        assert partial.having is None

    def test_group_by_keys_of_removed_relation_dropped(self, registry, db):
        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u, provenance p "
            "WHERE u.ts = p.ts GROUP BY p.otid, u.uid "
            "HAVING COUNT(DISTINCT u.ts) > 1"
        )
        partial = partial_policy(select, {"users"}, registry, db)
        assert partial.group_by == (ast.ColumnRef("u", "uid"),)

    def test_all_items_removed_returns_none(self, registry, db):
        select = parse_select("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1")
        assert partial_policy(select, set(), registry, db) is None

    def test_subquery_referencing_missing_log_dropped(self, registry, db):
        select = parse_select(
            "SELECT DISTINCT 'e' FROM (SELECT ts FROM schema) x, groups g"
        )
        partial = partial_policy(select, set(), registry, db)
        names = [f.binding_name() for f in partial.from_items]
        assert names == ["g"]

    def test_keep_having_false_forces_drop(self, registry, db):
        select = parse_select(P2B_SQL)
        partial = partial_policy(
            select, {"users"}, registry, db, keep_having=False
        )
        assert partial.having is None


class TestPartialChain:
    def test_chain_for_p2b(self, registry, db):
        select = parse_select(P2B_SQL)
        chain = partial_chain(select, registry, db)
        stages = [set(stage) for stage, _ in chain]
        # ∅ (P2d), {users} (P2c), {users, schema} (full). Provenance adds
        # nothing so no fourth entry.
        assert stages == [set(), {"users"}, {"users", "schema"}]
        assert chain[-1][1] == select

    def test_chain_collapses_unchanged_stages(self, registry, db):
        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u, groups g WHERE u.uid = g.uid"
        )
        chain = partial_chain(select, registry, db)
        stages = [set(stage) for stage, _ in chain]
        assert stages == [set(), {"users"}]

    def test_final_entry_is_full_policy_for_non_monotone(self, registry, db):
        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u, provenance p "
            "WHERE u.ts = p.ts GROUP BY p.ts, p.otid "
            "HAVING COUNT(DISTINCT p.itid) <= 3"
        )
        chain = partial_chain(select, registry, db, keep_having=False)
        # final stage restores HAVING (it is the true policy)
        assert chain[-1][1] == select
        # intermediate stage with users only: HAVING dropped
        middle = dict(chain)[frozenset({"users"})]
        assert middle.having is None

    def test_implication_property_on_data(self, registry, db):
        """π non-empty ⇒ every partial non-empty (Lemma 4.4), checked on a
        concrete violating instance."""
        from repro.engine import Engine
        from repro.log import LogStore

        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u, schema s, groups g, clock c "
            "WHERE u.ts = s.ts AND u.uid = g.uid AND g.gid = 'students' "
            "AND s.irid = 'patients' AND u.ts > c.ts - 100 "
            "HAVING COUNT(DISTINCT u.uid) > 0"
        )
        store = LogStore(db, registry)
        engine = Engine(db)
        store.set_time(10)
        store.stage("users", [(1,)], 10)
        store.stage("schema", [("o", "patients", "pid", False)], 10)

        assert not engine.is_empty(select)  # π fires
        for stage, partial in partial_chain(select, registry, db):
            if partial is None:
                continue
            assert not engine.is_empty(partial), f"partial at {set(stage)}"
