"""Policy parsing/validation and decision objects."""

import pytest

from repro.core import Decision, Policy, Violation
from repro.errors import PolicySyntaxError


class TestFromSql:
    def test_valid_policy(self):
        policy = Policy.from_sql(
            "p", "SELECT DISTINCT 'bad thing' FROM users u WHERE u.uid = 1"
        )
        assert policy.name == "p"
        assert policy.message == "bad thing"

    def test_message_whitespace_collapsed(self):
        policy = Policy.from_sql(
            "p", "SELECT DISTINCT 'bad\n     thing' FROM users u"
        )
        assert policy.message == "bad thing"

    def test_non_literal_message_gets_default(self):
        policy = Policy.from_sql("p", "SELECT DISTINCT u.uid FROM users u")
        assert "violated" in policy.message

    def test_sql_property_round_trips(self):
        from repro.sql import parse

        policy = Policy.from_sql(
            "p", "SELECT DISTINCT 'm' FROM users u WHERE u.uid = 1"
        )
        assert parse(policy.sql) == policy.select

    def test_union_rejected(self):
        with pytest.raises(PolicySyntaxError):
            Policy.from_sql("p", "SELECT 'a' FROM users UNION SELECT 'b' FROM users")

    def test_missing_from_rejected(self):
        with pytest.raises(PolicySyntaxError):
            Policy.from_sql("p", "SELECT 'a'")

    def test_multiple_select_items_rejected(self):
        with pytest.raises(PolicySyntaxError):
            Policy.from_sql("p", "SELECT 'a', u.uid FROM users u")

    def test_star_rejected(self):
        with pytest.raises(PolicySyntaxError):
            Policy.from_sql("p", "SELECT * FROM users")

    def test_order_by_rejected(self):
        with pytest.raises(PolicySyntaxError):
            Policy.from_sql("p", "SELECT 'a' FROM users u ORDER BY u.uid")

    def test_limit_rejected(self):
        with pytest.raises(PolicySyntaxError):
            Policy.from_sql("p", "SELECT 'a' FROM users u LIMIT 1")

    def test_or_in_where_rejected(self):
        with pytest.raises(PolicySyntaxError):
            Policy.from_sql(
                "p", "SELECT 'a' FROM users u WHERE u.uid = 1 OR u.uid = 2"
            )

    def test_or_in_having_rejected(self):
        with pytest.raises(PolicySyntaxError):
            Policy.from_sql(
                "p",
                "SELECT 'a' FROM users u "
                "HAVING COUNT(*) > 1 OR COUNT(*) > 2",
            )

    def test_and_is_fine(self):
        Policy.from_sql(
            "p", "SELECT 'a' FROM users u WHERE u.uid = 1 AND u.ts > 0"
        )

    def test_str_contains_sql(self):
        policy = Policy.from_sql("p", "SELECT 'a' FROM users u")
        assert "SELECT" in str(policy)


class TestDecisionAndViolation:
    def test_decision_truthiness(self):
        assert Decision(allowed=True, timestamp=1)
        assert not Decision(allowed=False, timestamp=1)

    def test_violation_str(self):
        violation = Violation("P1", "no joins")
        assert str(violation) == "[P1] no joins"
