"""End-to-end enforcement tests: NoOpt, DataLawyer, and every ablation.

Uses the small synthetic MIMIC database (60 patients) from conftest.
"""

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy, make_datalawyer, make_noopt
from repro.log import LogicalClock, SimulatedClock
from repro.workloads import (
    MimicConfig,
    PolicyParams,
    make_all_policies,
    make_policy,
    make_workload,
)


@pytest.fixture
def config(tiny_mimic_config):
    return tiny_mimic_config


@pytest.fixture
def params(config):
    return PolicyParams.for_config(config)


@pytest.fixture
def workload(config):
    return make_workload(config)


def dl(db, policies, **overrides):
    return Enforcer(
        db,
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(**overrides),
    )


def noopt(db, policies, **overrides):
    return Enforcer(
        db,
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.noopt(**overrides),
    )


class TestBasicEnforcement:
    def test_compliant_query_allowed_and_executed(self, mimic_db, params, workload):
        enforcer = dl(mimic_db, [make_policy("P2", params)])
        decision = enforcer.submit(workload["W1"], uid=1)
        assert decision.allowed
        assert decision.result is not None and len(decision.result.rows) == 1

    def test_rejected_query_not_executed(self, mimic_db, params):
        enforcer = dl(mimic_db, [make_policy("P2", params)])
        decision = enforcer.submit(
            "SELECT o.poe_id FROM poe_order o, d_patients p "
            "WHERE o.subject_id = p.subject_id",
            uid=1,
        )
        assert not decision.allowed
        assert decision.result is None
        assert decision.violations[0].policy_name.startswith("P2") or (
            "P2" in decision.violations[0].message
        )

    def test_rejection_reverts_log(self, mimic_db, params):
        enforcer = dl(mimic_db, [make_policy("P2", params)])
        enforcer.submit(
            "SELECT o.poe_id FROM poe_order o, d_patients p "
            "WHERE o.subject_id = p.subject_id",
            uid=1,
        )
        assert enforcer.store.total_live_size() == 0

    def test_poe_med_join_is_allowed(self, mimic_db, params):
        enforcer = dl(mimic_db, [make_policy("P2", params)])
        decision = enforcer.submit(
            "SELECT o.poe_id FROM poe_order o, poe_med m "
            "WHERE o.poe_id = m.poe_id",
            uid=1,
        )
        assert decision.allowed

    def test_other_user_unrestricted(self, mimic_db, params):
        enforcer = dl(mimic_db, [make_policy("P2", params)])
        decision = enforcer.submit(
            "SELECT o.poe_id FROM poe_order o, d_patients p "
            "WHERE o.subject_id = p.subject_id",
            uid=0,
        )
        assert decision.allowed

    def test_execute_flag_suppresses_query(self, mimic_db, params, workload):
        enforcer = dl(mimic_db, [make_policy("P2", params)])
        decision = enforcer.submit(workload["W1"], uid=1, execute=False)
        assert decision.allowed and decision.result is None

    def test_metrics_recorded(self, mimic_db, params, workload):
        enforcer = dl(mimic_db, [make_policy("P2", params)])
        enforcer.submit(workload["W1"], uid=1)
        assert len(enforcer.metrics_log) == 1
        metrics = enforcer.metrics_log.entries[0]
        assert metrics.allowed
        assert metrics.total_seconds > 0


class TestP3OutputCap:
    def test_small_output_allowed(self, mimic_db, config):
        params = PolicyParams(p3_max_output=5)
        enforcer = dl(mimic_db, [make_policy("P3", params)])
        decision = enforcer.submit(
            "SELECT * FROM d_patients WHERE subject_id < 4", uid=1
        )
        assert decision.allowed

    def test_large_output_rejected(self, mimic_db, config):
        params = PolicyParams(p3_max_output=5)
        enforcer = dl(mimic_db, [make_policy("P3", params)])
        decision = enforcer.submit("SELECT * FROM d_patients", uid=1)
        assert not decision.allowed

    def test_cap_does_not_apply_to_other_tables(self, mimic_db):
        params = PolicyParams(p3_max_output=5)
        enforcer = dl(mimic_db, [make_policy("P3", params)])
        decision = enforcer.submit(
            "SELECT * FROM poe_order WHERE subject_id < 20", uid=1
        )
        assert decision.allowed


class TestP4MinimumSupport:
    def test_fine_grained_output_rejected(self, mimic_db):
        # every output tuple of a plain SELECT has exactly 1 contributor
        enforcer = dl(mimic_db, [make_policy("P4", PolicyParams())])
        decision = enforcer.submit(
            "SELECT * FROM chartevents WHERE subject_id = 5", uid=1
        )
        assert not decision.allowed

    def test_aggregated_output_allowed(self, mimic_db, workload):
        enforcer = dl(mimic_db, [make_policy("P4", PolicyParams())])
        decision = enforcer.submit(workload["W2"], uid=1)
        assert decision.allowed

    def test_policy_ignores_unrestricted_user(self, mimic_db):
        enforcer = dl(mimic_db, [make_policy("P4", PolicyParams())])
        decision = enforcer.submit(
            "SELECT * FROM chartevents WHERE subject_id = 5", uid=0
        )
        assert decision.allowed


class TestWindowedPolicies:
    def test_p1_rate_limit_fires_within_window(self, mimic_db, workload):
        params = PolicyParams(p1_max_users=2, p1_window=10000)
        enforcer = dl(mimic_db, [make_policy("P1", params)])
        # users 1..3 are in group x (extra_group_x_users=4 at tiny scale)
        assert enforcer.submit(workload["W1"], uid=1).allowed
        assert enforcer.submit(workload["W1"], uid=2).allowed
        decision = enforcer.submit(workload["W1"], uid=3)
        assert not decision.allowed

    def test_p1_resets_after_window(self, mimic_db, workload):
        params = PolicyParams(p1_max_users=2, p1_window=50)
        clock = SimulatedClock(default_step_ms=10)
        enforcer = Enforcer(
            mimic_db,
            [make_policy("P1", params)],
            clock=clock,
            options=EnforcerOptions.datalawyer(),
        )
        for uid in (1, 2):
            assert enforcer.submit(workload["W1"], uid=uid).allowed
        clock.sleep(1000)
        assert enforcer.submit(workload["W1"], uid=3).allowed

    def test_p5_cumulative_usage_cap(self, mimic_db, config):
        params = PolicyParams(p5_max_tuples=config.n_patients - 10, p5_window=60000)
        enforcer = dl(mimic_db, [make_policy("P5", params)])
        # First full-table read stays under the cap? n - 10 < n → violation
        decision = enforcer.submit("SELECT * FROM d_patients", uid=1)
        assert not decision.allowed
        # Half-table read is fine.
        half = config.n_patients // 2
        decision = enforcer.submit(
            f"SELECT * FROM d_patients WHERE subject_id <= {half}", uid=1
        )
        assert decision.allowed

    def test_p5_accumulates_across_queries(self, mimic_db, config):
        params = PolicyParams(p5_max_tuples=30, p5_window=60000)
        enforcer = dl(mimic_db, [make_policy("P5", params)])
        assert enforcer.submit(
            "SELECT * FROM d_patients WHERE subject_id <= 20", uid=1
        ).allowed
        # next 20 distinct tuples push the window total past 30
        decision = enforcer.submit(
            "SELECT * FROM d_patients WHERE subject_id > 40", uid=1
        )
        assert not decision.allowed

    def test_p6_per_tuple_reuse_cap(self, mimic_db):
        params = PolicyParams(p6_max_uses=2, p6_window=60000)
        enforcer = dl(mimic_db, [make_policy("P6", params)])
        for _ in range(2):
            assert enforcer.submit(
                "SELECT * FROM d_patients WHERE subject_id = 7", uid=1
            ).allowed
        decision = enforcer.submit(
            "SELECT * FROM d_patients WHERE subject_id = 7", uid=1
        )
        assert not decision.allowed


class TestLogBehaviour:
    def test_noopt_log_grows(self, mimic_db, params, workload):
        enforcer = noopt(mimic_db, [make_policy("P6", params)])
        sizes = []
        for _ in range(5):
            enforcer.submit(workload["W1"], uid=1)
            sizes.append(enforcer.store.total_live_size())
        assert sizes == sorted(sizes) and sizes[-1] > sizes[0]

    def test_datalawyer_log_stays_bounded(self, mimic_db, workload):
        # Window of 100 ms = 10 queries at the 10 ms clock step: once the
        # window starts sliding, the log stops growing.
        params = PolicyParams(p6_window=100, p6_max_uses=1000)
        enforcer = dl(mimic_db, [make_policy("P6", params)])
        for _ in range(15):
            enforcer.submit(workload["W1"], uid=1)
        first = enforcer.store.total_live_size()
        for _ in range(15):
            enforcer.submit(workload["W1"], uid=1)
        assert enforcer.store.total_live_size() <= first + 2

    def test_time_independent_policies_never_persist(self, mimic_db, params, workload):
        enforcer = dl(mimic_db, [make_policy("P2", params)])
        for _ in range(5):
            enforcer.submit(workload["W2"], uid=1)
        assert enforcer.store.total_live_size() == 0

    def test_unreferenced_logs_never_generated(self, mimic_db, params, workload):
        enforcer = dl(mimic_db, [make_policy("P1", params)])
        enforcer.submit(workload["W2"], uid=1)
        metrics = enforcer.metrics_log.entries[0]
        assert "log:provenance" not in metrics.seconds
        assert "log:schema" not in metrics.seconds

    def test_uid0_skips_provenance_generation(self, mimic_db, params, workload):
        enforcer = dl(mimic_db, [make_policy("P5", params)])
        enforcer.submit(workload["W4"], uid=0)
        metrics = enforcer.metrics_log.entries[0]
        assert "log:users" in metrics.seconds
        assert "log:provenance" not in metrics.seconds

    def test_uid1_generates_provenance(self, mimic_db, params, workload):
        enforcer = dl(mimic_db, [make_policy("P5", params)])
        enforcer.submit(workload["W4"], uid=1)
        metrics = enforcer.metrics_log.entries[0]
        assert "log:provenance" in metrics.seconds


class TestEquivalenceAcrossConfigurations:
    """Every optimization must preserve accept/reject decisions."""

    CONFIGS = {
        "noopt": EnforcerOptions.noopt(),
        "noopt-serial": EnforcerOptions.noopt(eval_strategy="serial"),
        "datalawyer": EnforcerOptions.datalawyer(),
        "no-interleave": EnforcerOptions.datalawyer(
            interleaved=False, eval_strategy="serial"
        ),
        "no-compaction": EnforcerOptions.datalawyer(log_compaction=False),
        "no-ti": EnforcerOptions.datalawyer(time_independent=False),
        "no-unification": EnforcerOptions.datalawyer(unification=False),
        "no-preemptive": EnforcerOptions.datalawyer(preemptive_compaction=False),
        "improved-partial": EnforcerOptions.datalawyer(improved_partial=True),
    }

    def _stream(self, workload):
        return [
            (workload["W1"], 1),
            (workload["W2"], 1),
            (workload["W1"], 0),
            (workload["W2"], 2),
            (workload["W3"], 1),
            (workload["W1"], 1),
            (workload["W4"], 0),
            (workload["W2"], 1),
            (workload["W1"], 3),
            (workload["W3"], 0),
        ]

    @pytest.mark.parametrize("name", sorted(CONFIGS))
    def test_decisions_match_noopt(self, name, mimic_db, config, workload):
        params = PolicyParams.for_config(
            config, p1_max_users=2, p1_window=100, p6_max_uses=3, p6_window=200
        )
        policies = make_all_policies(params)

        def run(options):
            enforcer = Enforcer(
                mimic_db.clone(),
                policies,
                clock=SimulatedClock(default_step_ms=10),
                options=options,
            )
            return [
                enforcer.submit(sql, uid=uid, execute=False).allowed
                for sql, uid in self._stream(workload)
            ]

        baseline = run(EnforcerOptions.noopt())
        assert run(self.CONFIGS[name]) == baseline
        # the stream must exercise both outcomes to be meaningful
        assert True in baseline and False in baseline


class TestMultiplePolicies:
    def test_all_six_policies_together(self, mimic_db, config, workload):
        params = PolicyParams.for_config(config)
        enforcer = dl(mimic_db, make_all_policies(params))
        for name in ("W1", "W2", "W3", "W4"):
            for uid in (0, 1):
                assert enforcer.submit(workload[name], uid=uid).allowed

    def test_violation_reports_correct_policy(self, mimic_db, config):
        params = PolicyParams.for_config(config, p3_max_output=5)
        enforcer = dl(mimic_db, make_all_policies(params))
        decision = enforcer.submit("SELECT * FROM d_patients", uid=1)
        assert not decision.allowed
        assert any("P3" in v.message for v in decision.violations)


class TestDynamicPolicies:
    def test_add_policy_restricts_history(self, mimic_db, workload):
        params = PolicyParams(p1_max_users=1, p1_window=10_000_000)
        enforcer = dl(mimic_db, [])
        # two group-x users query before the policy exists
        enforcer.submit(workload["W1"], uid=1)
        enforcer.submit(workload["W1"], uid=2)
        enforcer.add_policy(make_policy("P1", params))
        # history before registration must not count
        assert enforcer.submit(workload["W1"], uid=1).allowed

    def test_remove_policy(self, mimic_db, params):
        enforcer = dl(mimic_db, [make_policy("P2", params)])
        enforcer.remove_policy("P2")
        decision = enforcer.submit(
            "SELECT o.poe_id FROM poe_order o, d_patients p "
            "WHERE o.subject_id = p.subject_id",
            uid=1,
        )
        assert decision.allowed


class TestFactories:
    def test_make_datalawyer(self, mimic_db, params):
        enforcer = make_datalawyer(mimic_db, [make_policy("P2", params)])
        assert enforcer.options.interleaved

    def test_make_noopt(self, mimic_db, params):
        enforcer = make_noopt(mimic_db, [make_policy("P2", params)])
        assert not enforcer.options.interleaved
        assert not enforcer.options.log_compaction

    def test_option_overrides(self, mimic_db, params):
        enforcer = make_datalawyer(
            mimic_db, [make_policy("P2", params)], improved_partial=True
        )
        assert enforcer.options.improved_partial
