"""Value semantics: three-valued logic, comparisons, LIKE, sort keys."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine.types import (
    arithmetic,
    compare,
    is_truthy,
    like,
    negate,
    sort_key,
    sql_and,
    sql_not,
    sql_or,
)
from repro.errors import ExecutionError

TVL = [True, False, None]


class TestKleeneLogic:
    @pytest.mark.parametrize("a", TVL)
    @pytest.mark.parametrize("b", TVL)
    def test_and_truth_table(self, a, b):
        expected = (
            False
            if a is False or b is False
            else (None if a is None or b is None else True)
        )
        assert sql_and(a, b) is expected

    @pytest.mark.parametrize("a", TVL)
    @pytest.mark.parametrize("b", TVL)
    def test_or_truth_table(self, a, b):
        expected = (
            True
            if a is True or b is True
            else (None if a is None or b is None else False)
        )
        assert sql_or(a, b) is expected

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None

    def test_is_truthy_strict(self):
        assert is_truthy(True)
        assert not is_truthy(False)
        assert not is_truthy(None)


class TestCompare:
    def test_null_propagates(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert compare(op, None, 1) is None
            assert compare(op, 1, None) is None

    def test_numeric_comparisons(self):
        assert compare("<", 1, 2) is True
        assert compare(">=", 2, 2) is True
        assert compare("=", 1, 1.0) is True

    def test_string_comparisons(self):
        assert compare("<", "a", "b") is True
        assert compare("=", "x", "x") is True

    def test_cross_type_equality_is_false(self):
        assert compare("=", 1, "1") is False
        assert compare("<>", 1, "1") is True

    def test_bool_is_not_numeric(self):
        assert compare("=", True, 1) is False

    def test_cross_type_ordering_raises(self):
        with pytest.raises(ExecutionError):
            compare("<", 1, "a")

    def test_unknown_operator(self):
        with pytest.raises(ExecutionError):
            compare("~", 1, 2)


class TestArithmetic:
    def test_null_propagates(self):
        assert arithmetic("+", None, 1) is None
        assert arithmetic("*", 1, None) is None

    def test_basic_operations(self):
        assert arithmetic("+", 2, 3) == 5
        assert arithmetic("-", 2, 3) == -1
        assert arithmetic("*", 2, 3) == 6
        assert arithmetic("%", 7, 3) == 1

    def test_exact_integer_division(self):
        assert arithmetic("/", 6, 3) == 2
        assert isinstance(arithmetic("/", 6, 3), int)

    def test_inexact_division_is_float(self):
        assert arithmetic("/", 7, 2) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            arithmetic("/", 1, 0)
        with pytest.raises(ExecutionError):
            arithmetic("%", 1, 0)

    def test_concat(self):
        assert arithmetic("||", "a", "b") == "ab"
        assert arithmetic("||", "n=", 5) == "n=5"

    def test_non_numeric_raises(self):
        with pytest.raises(ExecutionError):
            arithmetic("+", "a", 1)

    def test_negate(self):
        assert negate(5) == -5
        assert negate(None) is None
        with pytest.raises(ExecutionError):
            negate("x")


class TestLike:
    def test_percent_wildcard(self):
        assert like("hello", "h%o") is True
        assert like("hello", "x%") is False

    def test_underscore_wildcard(self):
        assert like("cat", "c_t") is True
        assert like("caat", "c_t") is False

    def test_literal_match(self):
        assert like("abc", "abc") is True

    def test_regex_metachars_escaped(self):
        assert like("a.c", "a.c") is True
        assert like("abc", "a.c") is False

    def test_null_propagates(self):
        assert like(None, "%") is None
        assert like("a", None) is None

    def test_non_string_raises(self):
        with pytest.raises(ExecutionError):
            like(1, "%")


class TestSortKey:
    def test_nulls_last(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered == [1, 2, 3, None, None]

    def test_mixed_types_deterministic(self):
        values = ["b", 2, True, "a", 1, False]
        ordered = sorted(values, key=sort_key)
        assert ordered == [False, True, 1, 2, "a", "b"]

    @given(st.lists(st.one_of(st.integers(), st.text(), st.none(), st.booleans())))
    def test_total_order_never_raises(self, values):
        sorted(values, key=sort_key)


@given(a=st.sampled_from(TVL), b=st.sampled_from(TVL))
def test_de_morgan(a, b):
    assert sql_not(sql_and(a, b)) is sql_or(sql_not(a), sql_not(b))


@given(
    op=st.sampled_from(["<", "<=", ">", ">="]),
    a=st.integers(-100, 100),
    b=st.integers(-100, 100),
)
def test_compare_matches_python_for_ints(op, a, b):
    import operator

    fn = {"<": operator.lt, "<=": operator.le, ">": operator.gt, ">=": operator.ge}
    assert compare(op, a, b) is fn[op](a, b)
