"""Parser tests: shapes of the produced AST."""

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse, parse_expression, parse_select


class TestSelectBasics:
    def test_simple_select(self):
        q = parse_select("SELECT a FROM t")
        assert q.items == (ast.SelectItem(ast.ColumnRef(None, "a")),)
        assert q.from_items == (ast.TableRef("t"),)
        assert q.where is None

    def test_star(self):
        q = parse_select("SELECT * FROM t")
        assert isinstance(q.items[0].expr, ast.Star)
        assert q.items[0].expr.table is None

    def test_qualified_star(self):
        q = parse_select("SELECT t.* FROM t")
        assert q.items[0].expr == ast.Star("t")

    def test_alias_with_as(self):
        q = parse_select("SELECT a AS x FROM t")
        assert q.items[0].alias == "x"

    def test_alias_without_as(self):
        q = parse_select("SELECT a x FROM t")
        assert q.items[0].alias == "x"

    def test_table_alias(self):
        q = parse_select("SELECT p.a FROM t AS p")
        assert q.from_items[0] == ast.TableRef("t", "p")

    def test_table_alias_without_as(self):
        q = parse_select("SELECT p.a FROM t p")
        assert q.from_items[0] == ast.TableRef("t", "p")

    def test_multiple_from_items(self):
        q = parse_select("SELECT 1 FROM a, b c, d")
        assert [f.binding_name() for f in q.from_items] == ["a", "c", "d"]

    def test_no_from(self):
        q = parse_select("SELECT 1 + 2")
        assert q.from_items == ()

    def test_semicolon_tolerated(self):
        parse("SELECT a FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t extra stuff ,")


class TestDistinct:
    def test_distinct(self):
        q = parse_select("SELECT DISTINCT a FROM t")
        assert q.distinct and not q.distinct_on

    def test_distinct_on(self):
        q = parse_select("SELECT DISTINCT ON (a, b), t.* FROM t")
        assert q.distinct
        assert q.distinct_on == (
            ast.ColumnRef(None, "a"),
            ast.ColumnRef(None, "b"),
        )

    def test_distinct_on_without_comma(self):
        q = parse_select("SELECT DISTINCT ON (a) b FROM t")
        assert q.distinct_on == (ast.ColumnRef(None, "a"),)
        assert q.items[0].expr == ast.ColumnRef(None, "b")


class TestClauses:
    def test_where(self):
        q = parse_select("SELECT a FROM t WHERE a = 1 AND b > 2")
        conjuncts = ast.conjuncts(q.where)
        assert len(conjuncts) == 2

    def test_group_by(self):
        q = parse_select("SELECT a, COUNT(*) FROM t GROUP BY a, b")
        assert len(q.group_by) == 2

    def test_having(self):
        q = parse_select("SELECT a FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert isinstance(q.having, ast.BinaryOp)

    def test_order_by(self):
        q = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in q.order_by] == [True, False, False]

    def test_limit(self):
        q = parse_select("SELECT a FROM t LIMIT 5")
        assert q.limit == 5

    def test_limit_requires_number(self):
        with pytest.raises(ParseError):
            parse("SELECT a FROM t LIMIT x")


class TestJoins:
    def test_inner_join_desugars_to_where(self):
        q = parse_select("SELECT 1 FROM a JOIN b ON a.x = b.x WHERE a.y = 1")
        assert len(q.from_items) == 2
        conjuncts = ast.conjuncts(q.where)
        assert len(conjuncts) == 2

    def test_inner_keyword(self):
        q = parse_select("SELECT 1 FROM a INNER JOIN b ON a.x = b.x")
        assert len(q.from_items) == 2

    def test_cross_join(self):
        q = parse_select("SELECT 1 FROM a CROSS JOIN b")
        assert len(q.from_items) == 2
        assert q.where is None

    def test_left_join_produces_joinref(self):
        q = parse_select("SELECT 1 FROM a LEFT JOIN b ON a.x = b.x")
        assert isinstance(q.from_items[0], ast.JoinRef)

    def test_bare_outer_join_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM a OUTER JOIN b ON a.x = b.x")

    def test_join_without_on_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM a JOIN b")


class TestSubqueries:
    def test_from_subquery(self):
        q = parse_select("SELECT x.a FROM (SELECT a FROM t) x")
        sub = q.from_items[0]
        assert isinstance(sub, ast.SubqueryRef)
        assert sub.alias == "x"
        assert isinstance(sub.query, ast.Select)

    def test_nested_subquery(self):
        q = parse_select(
            "SELECT 1 FROM (SELECT a FROM (SELECT a FROM t) y) x"
        )
        outer = q.from_items[0]
        assert isinstance(outer, ast.SubqueryRef)
        inner = outer.query.from_items[0]
        assert isinstance(inner, ast.SubqueryRef)


class TestSetOps:
    def test_union(self):
        q = parse("SELECT a FROM t UNION SELECT a FROM u")
        assert isinstance(q, ast.SetOp)
        assert q.op == "union" and not q.all

    def test_union_all(self):
        q = parse("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert q.all

    def test_union_left_associative(self):
        q = parse("SELECT 1 UNION SELECT 2 UNION SELECT 3")
        assert isinstance(q.left, ast.SetOp)

    def test_parenthesized_union_term(self):
        q = parse("(SELECT a FROM t) UNION (SELECT a FROM u)")
        assert isinstance(q, ast.SetOp)

    def test_except_and_intersect(self):
        assert parse("SELECT 1 EXCEPT SELECT 2").op == "except"
        assert parse("SELECT 1 INTERSECT SELECT 2").op == "intersect"


class TestExpressions:
    def test_precedence_arith(self):
        e = parse_expression("1 + 2 * 3")
        assert e == ast.BinaryOp(
            "+", ast.Literal(1), ast.BinaryOp("*", ast.Literal(2), ast.Literal(3))
        )

    def test_precedence_logic(self):
        e = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(e, ast.BinaryOp) and e.op == "or"
        assert isinstance(e.right, ast.BinaryOp) and e.right.op == "and"

    def test_parentheses_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"

    def test_not(self):
        e = parse_expression("NOT a = 1")
        assert isinstance(e, ast.UnaryOp) and e.op == "not"

    def test_unary_minus_folds_literal(self):
        assert parse_expression("-5") == ast.Literal(-5)

    def test_unary_minus_on_column(self):
        e = parse_expression("-a")
        assert isinstance(e, ast.UnaryOp) and e.op == "-"

    def test_unary_plus_is_noop(self):
        assert parse_expression("+7") == ast.Literal(7)

    def test_neq_normalized(self):
        e = parse_expression("a != 1")
        assert e.op == "<>"

    def test_in_list(self):
        e = parse_expression("a IN (1, 2, 3)")
        assert isinstance(e, ast.InList) and len(e.items) == 3

    def test_not_in(self):
        e = parse_expression("a NOT IN (1)")
        assert e.negated

    def test_like(self):
        e = parse_expression("a LIKE 'x%'")
        assert e.op == "like"

    def test_not_like(self):
        e = parse_expression("a NOT LIKE 'x%'")
        assert isinstance(e, ast.UnaryOp) and e.op == "not"

    def test_between_desugars(self):
        e = parse_expression("a BETWEEN 1 AND 5")
        assert e.op == "and"
        assert e.left.op == ">=" and e.right.op == "<="

    def test_is_null(self):
        e = parse_expression("a IS NULL")
        assert isinstance(e, ast.IsNull) and not e.negated

    def test_is_not_null(self):
        e = parse_expression("a IS NOT NULL")
        assert e.negated

    def test_boolean_and_null_literals(self):
        assert parse_expression("TRUE") == ast.Literal(True)
        assert parse_expression("FALSE") == ast.Literal(False)
        assert parse_expression("NULL") == ast.Literal(None)

    def test_case(self):
        e = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(e, ast.CaseExpr)
        assert len(e.whens) == 1 and e.default == ast.Literal("y")

    def test_case_without_else(self):
        e = parse_expression("CASE WHEN a = 1 THEN 2 END")
        assert e.default is None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_function_call(self):
        e = parse_expression("count(DISTINCT a)")
        assert e == ast.FuncCall("count", (ast.ColumnRef(None, "a"),), distinct=True)

    def test_count_star(self):
        e = parse_expression("COUNT(*)")
        assert e == ast.FuncCall("count", (ast.Star(),))

    def test_zero_arg_function(self):
        e = parse_expression("now()")
        assert e == ast.FuncCall("now", ())

    def test_qualified_column(self):
        assert parse_expression("p1.irid") == ast.ColumnRef("p1", "irid")

    def test_string_concat(self):
        e = parse_expression("a || 'x'")
        assert e.op == "||"


class TestAstHelpers:
    def test_conjuncts_flatten(self):
        e = parse_expression("a = 1 AND b = 2 AND c = 3")
        assert len(ast.conjuncts(e)) == 3

    def test_conjuncts_of_none(self):
        assert ast.conjuncts(None) == []

    def test_conjoin_roundtrip(self):
        parts = [parse_expression("a = 1"), parse_expression("b = 2")]
        combined = ast.conjoin(parts)
        assert ast.conjuncts(combined) == parts

    def test_conjoin_empty(self):
        assert ast.conjoin([]) is None

    def test_column_refs(self):
        e = parse_expression("a + t.b * 2")
        refs = ast.column_refs(e)
        assert {str(r) for r in refs} == {"a", "t.b"}

    def test_walk_covers_all_nodes(self):
        q = parse_select("SELECT a FROM t WHERE b = 1")
        kinds = {type(n).__name__ for n in q.walk()}
        assert {"Select", "SelectItem", "ColumnRef", "TableRef", "BinaryOp"} <= kinds

    def test_transform_replaces_literals(self):
        q = parse_select("SELECT 'x' FROM t WHERE a = 5")

        def bump(node):
            if isinstance(node, ast.Literal) and node.value == 5:
                return ast.Literal(6)
            return None

        q2 = ast.transform(q, bump)
        assert ast.Literal(6) in list(q2.walk())
        # original untouched
        assert ast.Literal(5) in list(q.walk())

    def test_transform_identity_preserves_object(self):
        q = parse_select("SELECT a FROM t")
        assert ast.transform(q, lambda n: None) is q
