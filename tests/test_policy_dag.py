"""Shared-subplan DAG execution: sharing is invisible to users.

Covers the :mod:`repro.engine.dag` executor end to end: memoization and
cross-discipline reuse of :class:`SharedNode`, DAG construction over the
mimic P1-P6 set, EXPLAIN annotations, per-member metric attribution for
unified union groups, and a randomized equivalence property where
unified groups run under ``engine="columnar"`` with policies added and
removed mid-stream.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database, Engine
from repro.engine.columnar import ColumnBatch
from repro.engine.dag import SharedNode
from repro.engine.explain import describe
from repro.engine.operators import Operator
from repro.log import SimulatedClock
from repro.workloads import (
    MimicConfig,
    PolicyParams,
    build_mimic_database,
    make_all_policies,
    make_workload,
)


# ---------------------------------------------------------------------------
# SharedNode: memoization, invalidation, cross-discipline reuse
# ---------------------------------------------------------------------------


class CountingOp(Operator):
    """A table-reading leaf that counts its actual executions."""

    def __init__(self, table_name):
        self.table_name = table_name
        self.execs = 0

    def execute(self, database, lineage):
        self.execs += 1
        for row in database.table(self.table_name).rows():
            yield row, None

    def execute_batch(self, database):
        self.execs += 1
        yield list(database.table(self.table_name).rows())

    def execute_columnar(self, database):
        self.execs += 1
        yield ColumnBatch.from_rows(database.table(self.table_name).rows())


@pytest.fixture
def shared_setup():
    db = Database()
    db.load_table("t", ["a"], [(1,), (2,)])
    engine = Engine(db)
    child = CountingOp("t")
    node = SharedNode(child, engine, frozenset({"t"}))
    return db, engine, child, node


def test_shared_node_memoizes_within_version(shared_setup):
    db, engine, child, node = shared_setup
    first = list(node.execute_columnar(db))
    again = list(node.execute_columnar(db))
    assert child.execs == 1
    assert [b.to_rows() for b in first] == [b.to_rows() for b in again]
    assert engine.dag_saved_execs == 1


def test_shared_node_invalidates_on_table_mutation(shared_setup):
    db, engine, child, node = shared_setup
    list(node.execute_columnar(db))
    db.table("t").insert((3,))
    list(node.execute_columnar(db))
    assert child.execs == 2


def test_shared_node_converts_across_disciplines(shared_setup):
    """A batch consumer reuses a fresh columnar memo (and vice versa)
    instead of re-executing the subtree — the nested-loop operators run
    on the batch path, and without conversion they would rebuild every
    shared join a second time per check."""
    db, engine, child, node = shared_setup
    columnar = list(node.execute_columnar(db))
    batches = list(node.execute_batch(db))
    assert child.execs == 1
    assert [row for batch in batches for row in batch] == [
        row for cb in columnar for row in cb.to_rows()
    ]
    assert engine.dag_saved_execs == 1

    # And batch -> columnar after an invalidating mutation.
    db.table("t").insert((3,))
    list(node.execute_batch(db))
    assert child.execs == 2
    rebuilt = list(node.execute_columnar(db))
    assert child.execs == 2
    assert [row for cb in rebuilt for row in cb.to_rows()] == [
        (1,),
        (2,),
        (3,),
    ]


def test_shared_node_explain_annotation(shared_setup):
    _, _, _, node = shared_setup
    node.consumers = 3
    assert describe(node).endswith("[shared=3]")


# ---------------------------------------------------------------------------
# End to end over the mimic P1-P6 set
# ---------------------------------------------------------------------------


def make_mimic_enforcer(**option_overrides):
    config = MimicConfig(n_patients=20)
    options = EnforcerOptions.noopt(plan_sharing=True, **option_overrides)
    return (
        Enforcer(
            build_mimic_database(config),
            make_all_policies(PolicyParams.for_config(config)),
            clock=SimulatedClock(default_step_ms=10),
            options=options,
        ),
        make_workload(config),
    )


def test_dag_merges_mimic_subplans_and_replays_memos():
    enforcer, workload = make_mimic_enforcer()
    enforcer.submit(workload["W1"], uid=1)
    # P1-P6 share the clock scan, the restricted-user index scan, the
    # users-provenance join, and the windowed nested loop.
    assert enforcer.engine.dag_shared_nodes >= 3
    saved = enforcer.engine.dag_saved_execs
    assert saved > 0
    enforcer.submit(workload["W1"], uid=2)
    assert enforcer.engine.dag_saved_execs > saved


def test_invalidate_plans_drops_memoized_dag_nodes():
    enforcer, workload = make_mimic_enforcer()
    enforcer.submit(workload["W1"], uid=1)
    (epoch, dag), = enforcer._policy_dags.values()
    assert any(node._memo for node in dag.nodes.values())

    enforcer.engine.invalidate_plans()
    assert enforcer.engine.plan_epoch > epoch
    enforcer.submit(workload["W1"], uid=2)
    (_, rebuilt), = enforcer._policy_dags.values()
    # A stale epoch rebuilds the DAG from scratch: fresh SharedNodes,
    # no memo carried over from before the invalidation.
    assert rebuilt is not dag


def test_policy_add_remove_resets_dag_cache():
    enforcer, workload = make_mimic_enforcer()
    enforcer.submit(workload["W1"], uid=1)
    assert enforcer._policy_dags
    enforcer.add_policy(
        Policy.from_sql(
            "P7",
            "SELECT DISTINCT 'P7 violated' FROM users u "
            "WHERE u.uid = 9 HAVING COUNT(DISTINCT u.ts) > 100000",
        )
    )
    assert enforcer._policy_dags == {}
    enforcer.submit(workload["W1"], uid=1)
    assert enforcer._policy_dags
    enforcer.remove_policy("P7")
    assert enforcer._policy_dags == {}


# ---------------------------------------------------------------------------
# Per-member attribution for unified union groups (regression)
# ---------------------------------------------------------------------------

GROUP_POLICIES = [
    Policy.from_sql(
        "g1-limit",
        "SELECT DISTINCT 'g1 limit' FROM users u, memberships m "
        "WHERE u.uid = m.uid AND m.grp = 'g1' HAVING COUNT(DISTINCT u.ts) > 2",
    ),
    Policy.from_sql(
        "g2-limit",
        "SELECT DISTINCT 'g2 limit' FROM users u, memberships m "
        "WHERE u.uid = m.uid AND m.grp = 'g2' HAVING COUNT(DISTINCT u.ts) > 2",
    ),
]


def make_unified_enforcer():
    db = Database()
    db.load_table("items", ["iid"], [(1,), (2,)])
    db.load_table(
        "memberships", ["uid", "grp"], [(1, "g1"), (2, "g2"), (3, "g1")]
    )
    enforcer = Enforcer(
        db,
        list(GROUP_POLICIES),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(
            interleaved=False, eval_strategy="union", plan_sharing=True
        ),
    )
    # The two template instances must actually have been unified.
    assert any("+" in runtime.name for runtime in enforcer._runtime)
    return enforcer


def span_names(root):
    names = []
    stack = [root]
    while stack:
        span = stack.pop()
        names.append(span.name)
        stack.extend(span.children)
    return names


def test_unified_group_latency_split_across_members():
    enforcer = make_unified_enforcer()
    decision = enforcer.submit("SELECT * FROM items", uid=1)
    names = span_names(decision.span)
    # Eval latency lands on the member policies, never the joined name.
    assert "policy:g1-limit" in names
    assert "policy:g2-limit" in names
    assert not any("+" in name for name in names if name.startswith("policy:"))
    # And the time was actually accounted.
    assert decision.metrics.seconds["policy_eval"] > 0


def test_unified_group_firing_names_the_member():
    enforcer = make_unified_enforcer()
    decision = None
    for _ in range(4):
        decision = enforcer.submit("SELECT * FROM items", uid=1)
    assert decision is not None and not decision.allowed
    assert [v.policy_name for v in decision.violations] == ["g1-limit"]
    assert "g1" in decision.violations[0].message


# ---------------------------------------------------------------------------
# Equivalence property: unification x columnar x mid-stream add/remove
# ---------------------------------------------------------------------------

QUERIES = [
    "SELECT * FROM items",
    "SELECT iid FROM items WHERE iid = 1",
    "SELECT COUNT(*) FROM items",
]

EXTRA_POLICIES = [
    Policy.from_sql(
        "g3-limit",
        "SELECT DISTINCT 'g3 limit' FROM users u, memberships m "
        "WHERE u.uid = m.uid AND m.grp = 'g3' HAVING COUNT(DISTINCT u.ts) > 2",
    ),
    Policy.from_sql(
        "items-cap",
        "SELECT DISTINCT 'too much items' FROM provenance p "
        "WHERE p.irid = 'items' GROUP BY p.ts "
        "HAVING COUNT(DISTINCT p.otid) > 1",
    ),
]

LANES = {
    "shared": EnforcerOptions.datalawyer(
        interleaved=False,
        eval_strategy="union",
        plan_sharing=True,
        engine="columnar",
    ),
    "unshared": EnforcerOptions.datalawyer(
        interleaved=False,
        eval_strategy="union",
        plan_sharing=False,
        engine="columnar",
    ),
    "row-naive": EnforcerOptions.noopt(engine="row"),
}


def build_property_db():
    db = Database()
    db.load_table("items", ["iid"], [(1,), (2,), (3,)])
    db.load_table(
        "memberships",
        ["uid", "grp"],
        [(1, "g1"), (2, "g2"), (3, "g1"), (3, "g3")],
    )
    return db


def run_lane(options, events):
    enforcer = Enforcer(
        build_property_db(),
        list(GROUP_POLICIES),
        clock=SimulatedClock(default_step_ms=10),
        options=options,
    )
    added: list[str] = []
    decisions = []
    for event in events:
        if event[0] == "query":
            _, query_index, uid = event
            decision = enforcer.submit(
                QUERIES[query_index], uid=uid, execute=True
            )
            decisions.append(decision.allowed)
        elif event[0] == "add":
            _, policy_index = event
            policy = EXTRA_POLICIES[policy_index]
            if policy.name not in added:
                enforcer.add_policy(policy)
                added.append(policy.name)
        elif event[0] == "remove" and added:
            enforcer.remove_policy(added.pop())
    state = tuple(
        (name, tuple(enforcer.database.table(name).scan()))
        for name in ("users", "provenance", "schema")
    )
    return decisions, state


event_strategy = st.one_of(
    st.tuples(
        st.just("query"),
        st.integers(min_value=0, max_value=len(QUERIES) - 1),
        st.integers(min_value=1, max_value=3),
    ),
    st.tuples(
        st.just("add"),
        st.integers(min_value=0, max_value=len(EXTRA_POLICIES) - 1),
    ),
    st.tuples(st.just("remove")),
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(events=st.lists(event_strategy, min_size=4, max_size=16))
def test_sharing_invisible_under_add_remove(events):
    shared_decisions, shared_state = run_lane(LANES["shared"], events)
    unshared_decisions, unshared_state = run_lane(LANES["unshared"], events)
    naive_decisions, _ = run_lane(LANES["row-naive"], events)
    assert shared_decisions == unshared_decisions == naive_decisions
    # Identical options except sharing -> identical usage-log state.
    assert shared_state == unshared_state
