"""Conjunctive-query containment (Chandra–Merlin homomorphism)."""

import pytest

from repro.analysis import cq_implies, partial_chain, screen_is_sound
from repro.core import Policy
from repro.core.approximate import from_screen_sql
from repro.engine import Database
from repro.errors import PolicyError
from repro.log import standard_registry
from repro.sql import parse_select


def q(sql):
    return parse_select(sql)


class TestPositiveCases:
    def test_identity(self):
        policy = q("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1")
        assert cq_implies(policy, policy)

    def test_drop_an_atom(self):
        policy = q(
            "SELECT DISTINCT 'e' FROM users u, schema s "
            "WHERE u.ts = s.ts AND u.uid = 1"
        )
        screen = q("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1")
        assert cq_implies(policy, screen)

    def test_drop_a_predicate(self):
        policy = q(
            "SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1 AND u.ts > 5"
        )
        screen = q("SELECT DISTINCT 'e' FROM users u WHERE u.ts > 5")
        assert cq_implies(policy, screen)

    def test_alias_renaming(self):
        policy = q("SELECT DISTINCT 'e' FROM users alpha WHERE alpha.uid = 1")
        screen = q("SELECT DISTINCT 'e' FROM users beta WHERE beta.uid = 1")
        assert cq_implies(policy, screen)

    def test_self_join_folds_onto_single_atom(self):
        policy = q(
            "SELECT DISTINCT 'e' FROM schema p1 WHERE p1.irid = 'navteq'"
        )
        screen = q(
            "SELECT DISTINCT 'e' FROM schema a, schema b "
            "WHERE a.irid = 'navteq' AND b.irid = 'navteq' AND a.ts = b.ts"
        )
        # every single-atom match extends to the self-join by mapping both
        # screen atoms onto p1 — requires equality via classes: a.ts = b.ts
        # maps to p1.ts = p1.ts which holds trivially
        assert cq_implies(policy, screen)

    def test_equality_through_transitivity(self):
        policy = q(
            "SELECT DISTINCT 'e' FROM users u, schema s, provenance p "
            "WHERE u.ts = s.ts AND s.ts = p.ts"
        )
        screen = q(
            "SELECT DISTINCT 'e' FROM users u, provenance p "
            "WHERE u.ts = p.ts"
        )
        assert cq_implies(policy, screen)

    def test_constant_propagation(self):
        policy = q(
            "SELECT DISTINCT 'e' FROM users u, schema s "
            "WHERE u.uid = 7 AND u.ts = s.ts"
        )
        screen = q("SELECT DISTINCT 'e' FROM users x WHERE x.uid = 7")
        assert cq_implies(policy, screen)

    def test_policy_having_is_irrelevant(self):
        policy = q(
            "SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1 "
            "HAVING COUNT(DISTINCT u.ts) > 10"
        )
        screen = q("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1")
        assert cq_implies(policy, screen)

    def test_non_equality_predicate_maps_syntactically(self):
        policy = q(
            "SELECT DISTINCT 'e' FROM users u, clock c "
            "WHERE u.ts > c.ts - 100 AND u.uid = 1"
        )
        screen = q(
            "SELECT DISTINCT 'e' FROM users v, clock k "
            "WHERE v.ts > k.ts - 100"
        )
        assert cq_implies(policy, screen)


class TestNegativeCases:
    def test_extra_atom_not_proven(self):
        policy = q("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1")
        screen = q(
            "SELECT DISTINCT 'e' FROM users u, provenance p "
            "WHERE u.ts = p.ts"
        )
        assert not cq_implies(policy, screen)

    def test_stricter_predicate_not_proven(self):
        policy = q("SELECT DISTINCT 'e' FROM users u")
        screen = q("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1")
        assert not cq_implies(policy, screen)

    def test_wrong_constant(self):
        policy = q("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1")
        screen = q("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 2")
        assert not cq_implies(policy, screen)

    def test_equality_not_implied(self):
        policy = q("SELECT DISTINCT 'e' FROM users u, schema s")
        screen = q(
            "SELECT DISTINCT 'e' FROM users u, schema s WHERE u.ts = s.ts"
        )
        assert not cq_implies(policy, screen)

    def test_screen_with_having_rejected(self):
        policy = q("SELECT DISTINCT 'e' FROM users u")
        screen = q(
            "SELECT DISTINCT 'e' FROM users u HAVING COUNT(*) > 1"
        )
        assert not cq_implies(policy, screen)

    def test_subquery_out_of_scope(self):
        policy = q("SELECT DISTINCT 'e' FROM (SELECT ts FROM users) x")
        screen = q("SELECT DISTINCT 'e' FROM users u")
        assert not cq_implies(policy, screen)

    def test_different_window_constant(self):
        policy = q(
            "SELECT DISTINCT 'e' FROM users u, clock c WHERE u.ts > c.ts - 100"
        )
        screen = q(
            "SELECT DISTINCT 'e' FROM users u, clock c WHERE u.ts > c.ts - 50"
        )
        # (true containment would need arithmetic reasoning; we stay
        # conservative)
        assert not cq_implies(policy, screen)


class TestDerivedPartialsAreProvable:
    def test_partials_of_a_policy_pass_the_checker(self):
        """Lemma 4.4's π ⇒ π_S, re-proven by the homomorphism test for the
        conjunctive parts of the chain."""
        registry = standard_registry()
        db = Database()
        db.load_table("groups", ["uid", "gid"], [])
        policy = parse_select(
            "SELECT DISTINCT 'e' FROM users u, schema s, groups g "
            "WHERE u.ts = s.ts AND u.uid = g.uid AND g.gid = 'x' "
            "AND s.irid = 'patients'"
        )
        for stage, partial in partial_chain(policy, registry, db):
            if partial is None:
                continue
            assert cq_implies(policy, partial), set(stage)


class TestVerifiedScreens:
    POLICY = Policy.from_sql(
        "p",
        "SELECT DISTINCT 'e' FROM users u, schema s "
        "WHERE u.ts = s.ts AND u.uid = 1 AND s.irid = 'patients'",
    )

    def test_sound_screen_accepted(self):
        approx = from_screen_sql(
            self.POLICY,
            "SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1",
            verify=True,
        )
        assert approx.screen is not None

    def test_unsound_screen_rejected_statically(self):
        with pytest.raises(PolicyError):
            from_screen_sql(
                self.POLICY,
                "SELECT DISTINCT 'e' FROM users u WHERE u.uid = 99",
                verify=True,
            )

    def test_screen_is_sound_alias(self):
        policy = q("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1")
        screen = q("SELECT DISTINCT 'e' FROM users u")
        assert screen_is_sound(policy, screen)
