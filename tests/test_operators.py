"""Operator-level unit tests (bypassing the planner)."""

import pytest

from repro.engine import Database, Table
from repro.engine.aggregates import make_accumulator_factory
from repro.engine.operators import (
    DistinctOnOp,
    DistinctOp,
    ExceptOp,
    FilterOp,
    GroupOp,
    HashJoinOp,
    IndexScanOp,
    IntersectOp,
    LimitOp,
    MaterializedScanOp,
    NestedLoopOp,
    OrderOp,
    ProjectOp,
    ScanOp,
    UnionOp,
    ValuesOp,
)
from repro.sql import ast


@pytest.fixture
def db():
    db = Database()
    db.load_table("r", ["k", "v"], [(1, "a"), (2, "b"), (2, "c")])
    db.load_table("s", ["k", "w"], [(1, 10), (2, 20)])
    return db


def run(op, db, lineage=False):
    return list(op.execute(db, lineage))


def rows_of(op, db):
    return [row for row, _ in run(op, db)]


def col(i):
    return lambda row: row[i]


class TestScans:
    def test_scan(self, db):
        assert rows_of(ScanOp("r"), db) == [(1, "a"), (2, "b"), (2, "c")]

    def test_scan_lineage(self, db):
        pairs = run(ScanOp("r"), db, lineage=True)
        assert pairs[0][1] == frozenset({("r", 0)})

    def test_index_scan(self, db):
        op = IndexScanOp("r", 0, lambda row: 2)
        assert rows_of(op, db) == [(2, "b"), (2, "c")]

    def test_index_scan_null_probe(self, db):
        op = IndexScanOp("r", 0, lambda row: None)
        assert rows_of(op, db) == []

    def test_materialized_scan(self, db):
        temp = Table.from_rows("temp", ["x"], [(1,), (2,)])
        op = MaterializedScanOp(temp)
        assert rows_of(op, db) == [(1,), (2,)]

    def test_materialized_scan_label(self, db):
        temp = Table.from_rows("temp", ["x"], [(9,)])
        pairs = run(MaterializedScanOp(temp, label="other"), db, lineage=True)
        assert pairs[0][1] == frozenset({("other", 0)})

    def test_values(self, db):
        assert rows_of(ValuesOp([(1, 2), (3, 4)]), db) == [(1, 2), (3, 4)]


class TestFilterProject:
    def test_filter(self, db):
        op = FilterOp(ScanOp("r"), lambda row: row[0] == 2)
        assert rows_of(op, db) == [(2, "b"), (2, "c")]

    def test_project(self, db):
        op = ProjectOp(ScanOp("r"), [col(1), lambda row: row[0] * 10])
        assert rows_of(op, db) == [("a", 10), ("b", 20), ("c", 20)]


class TestJoins:
    def test_hash_join(self, db):
        op = HashJoinOp(ScanOp("r"), ScanOp("s"), [col(0)], [col(0)])
        assert rows_of(op, db) == [
            (1, "a", 1, 10),
            (2, "b", 2, 20),
            (2, "c", 2, 20),
        ]

    def test_hash_join_null_keys_skip(self, db):
        db.table("r").insert((None, "n"))
        op = HashJoinOp(ScanOp("r"), ScanOp("s"), [col(0)], [col(0)])
        assert len(rows_of(op, db)) == 3

    def test_hash_join_lineage_union(self, db):
        op = HashJoinOp(ScanOp("r"), ScanOp("s"), [col(0)], [col(0)])
        pairs = run(op, db, lineage=True)
        assert pairs[0][1] == frozenset({("r", 0), ("s", 0)})

    def test_nested_loop_product(self, db):
        op = NestedLoopOp(ScanOp("r"), ScanOp("s"))
        assert len(rows_of(op, db)) == 6

    def test_nested_loop_with_predicate(self, db):
        op = NestedLoopOp(
            ScanOp("r"), ScanOp("s"), predicate=lambda row: row[0] < row[2]
        )
        assert rows_of(op, db) == [(1, "a", 2, 20)]


class TestGroup:
    def _count_factory(self):
        call = ast.FuncCall("count", (ast.Star(),))
        return make_accumulator_factory(call, lambda expr: col(0))

    def test_group_by_key(self, db):
        op = GroupOp(ScanOp("r"), [col(0)], [self._count_factory()])
        assert sorted(rows_of(op, db)) == [(1, 1), (2, 2)]

    def test_scalar_group_on_empty_input(self, db):
        empty = FilterOp(ScanOp("r"), lambda row: False)
        op = GroupOp(empty, [], [self._count_factory()])
        assert rows_of(op, db) == [(0,)]

    def test_keyed_group_on_empty_input_yields_nothing(self, db):
        empty = FilterOp(ScanOp("r"), lambda row: False)
        op = GroupOp(empty, [col(0)], [self._count_factory()])
        assert rows_of(op, db) == []

    def test_group_lineage_union(self, db):
        op = GroupOp(ScanOp("r"), [col(0)], [self._count_factory()])
        pairs = dict((row[0], lin) for row, lin in run(op, db, lineage=True))
        assert pairs[2] == frozenset({("r", 1), ("r", 2)})


class TestDistinctOps:
    def test_distinct(self, db):
        op = DistinctOp(ProjectOp(ScanOp("r"), [col(0)]))
        assert rows_of(op, db) == [(1,), (2,)]

    def test_distinct_on(self, db):
        op = DistinctOnOp(ScanOp("r"), [col(0)], [col(1)])
        assert rows_of(op, db) == [("a",), ("b",)]

    def test_distinct_on_empty_key_keeps_one(self, db):
        op = DistinctOnOp(ScanOp("r"), [], [col(1)])
        assert rows_of(op, db) == [("a",)]


class TestSetOps:
    def test_union(self, db):
        left = ProjectOp(ScanOp("r"), [col(0)])
        right = ProjectOp(ScanOp("s"), [col(0)])
        assert sorted(rows_of(UnionOp(left, right, False), db)) == [(1,), (2,)]

    def test_union_all(self, db):
        left = ProjectOp(ScanOp("r"), [col(0)])
        right = ProjectOp(ScanOp("s"), [col(0)])
        assert len(rows_of(UnionOp(left, right, True), db)) == 5

    def test_except(self, db):
        left = ProjectOp(ScanOp("r"), [col(0)])
        right = ProjectOp(
            FilterOp(ScanOp("s"), lambda row: row[0] == 1), [col(0)]
        )
        assert rows_of(ExceptOp(left, right), db) == [(2,)]

    def test_intersect(self, db):
        left = ProjectOp(ScanOp("r"), [col(0)])
        right = ProjectOp(
            FilterOp(ScanOp("s"), lambda row: row[0] == 1), [col(0)]
        )
        assert rows_of(IntersectOp(left, right), db) == [(1,)]


class TestOrderLimit:
    def test_order_ascending(self, db):
        op = OrderOp(ScanOp("r"), [col(1)], [False])
        assert [row[1] for row in rows_of(op, db)] == ["a", "b", "c"]

    def test_order_descending(self, db):
        op = OrderOp(ScanOp("r"), [col(1)], [True])
        assert [row[1] for row in rows_of(op, db)] == ["c", "b", "a"]

    def test_order_multi_key_stability(self, db):
        op = OrderOp(ScanOp("r"), [col(0), col(1)], [False, True])
        assert rows_of(op, db) == [(1, "a"), (2, "c"), (2, "b")]

    def test_limit(self, db):
        assert len(rows_of(LimitOp(ScanOp("r"), 2), db)) == 2

    def test_limit_zero(self, db):
        assert rows_of(LimitOp(ScanOp("r"), 0), db) == []

    def test_limit_stops_pulling(self, db):
        pulled = []

        class Probe(ScanOp):
            def execute(self, database, lineage):
                for item in super().execute(database, lineage):
                    pulled.append(item)
                    yield item

        list(LimitOp(Probe("r"), 1).execute(db, False))
        assert len(pulled) == 1
