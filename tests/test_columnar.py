"""Columnar engine: typed column vectors, zone-map pruning, range
indexes, the four-way referee (columnar ≡ vectorized ≡ row ≡ SQLite),
WAL recovery rebuilding identical column state, and regression coverage
for every deprecated engine spelling.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import DEFAULT_ENGINE, ENGINES, Database, Engine
from repro.engine.columnar import (
    CHUNK_SIZE,
    ColumnVector,
    build_zone_entry,
    chunk_can_skip,
    value_family,
)
from repro.log import SimulatedClock, standard_registry
from repro.service import ServiceConfig, ShardedEnforcerService
from repro.storage.wal import initialize_durability, recover_enforcer

int_or_null = st.one_of(st.integers(min_value=-4, max_value=4), st.none())
rows_r = st.lists(st.tuples(int_or_null, int_or_null), max_size=8)
rows_s = st.lists(st.tuples(int_or_null, int_or_null), max_size=8)


def build_db(r_rows, s_rows) -> Database:
    db = Database()
    db.load_table("r", ["a", "b"], r_rows)
    db.load_table("s", ["a", "c"], s_rows)
    return db


def build_engines(r_rows, s_rows):
    """One engine per discipline over one shared catalog."""
    db = build_db(r_rows, s_rows)
    return [Engine(db, name) for name in ENGINES]


def to_sqlite(db: Database) -> sqlite3.Connection:
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
    connection.execute("CREATE TABLE s (a INTEGER, c INTEGER)")
    connection.executemany("INSERT INTO r VALUES (?, ?)", db.table("r").rows())
    connection.executemany("INSERT INTO s VALUES (?, ?)", db.table("s").rows())
    return connection


QUERY_FORMS = [
    "SELECT r.a, r.b FROM r WHERE r.a = 1",
    "SELECT r.a FROM r WHERE r.a > 0 AND r.b < 3",
    "SELECT r.a FROM r WHERE r.a >= 2",
    "SELECT r.a, s.c FROM r, s WHERE r.a = s.a",
    "SELECT r.a, s.c FROM r, s WHERE r.a = s.a AND r.b = 2",
    "SELECT r.a, s.c FROM r, s WHERE r.a = s.a AND r.b < s.c",
    "SELECT r.a, s.c FROM r LEFT JOIN s ON r.a = s.a WHERE r.b = 1",
    "SELECT r.a FROM r, s WHERE r.b > s.c",
    "SELECT r.a, COUNT(*) FROM r GROUP BY r.a",
    "SELECT r.a, SUM(r.b) FROM r GROUP BY r.a HAVING COUNT(*) > 1",
    "SELECT COUNT(*), SUM(r.a), MIN(r.b), MAX(r.b), AVG(r.a) FROM r",
    "SELECT COUNT(*) FROM r WHERE r.a IS NOT NULL",
    "SELECT COUNT(DISTINCT r.a) FROM r",
    "SELECT DISTINCT r.a FROM r",
    "SELECT r.a FROM r UNION SELECT s.a FROM s",
    "SELECT r.a FROM r EXCEPT SELECT s.a FROM s",
    "SELECT r.a FROM r ORDER BY r.a LIMIT 3",
    "SELECT r.a + r.b FROM r WHERE NOT (r.a = 2)",
]


class TestFourWayAgreement:
    @settings(max_examples=40, deadline=None)
    @given(rows_r, rows_s, st.integers(0, len(QUERY_FORMS) - 1))
    def test_columnar_vectorized_row_sqlite(self, r_rows, s_rows, query_index):
        sql = QUERY_FORMS[query_index]
        engines = build_engines(r_rows, s_rows)
        results = [engine.execute(sql) for engine in engines]
        reference = results[0]
        for engine, got in zip(engines[1:], results[1:]):
            assert got.rows == reference.rows, engine.engine_name
            assert got.columns == reference.columns, engine.engine_name
        if "ORDER BY" not in sql:  # multiset compare against the oracle
            theirs = to_sqlite(engines[0].database).execute(sql).fetchall()
            assert sorted(reference.rows, key=repr) == sorted(
                [tuple(r) for r in theirs], key=repr
            )

    @settings(max_examples=20, deadline=None)
    @given(rows_r, rows_s, st.integers(0, len(QUERY_FORMS) - 1))
    def test_lineage_mode_identical(self, r_rows, s_rows, query_index):
        """lineage=True forces the row path on every engine — rows *and*
        provenance must agree with the row-engine reference."""
        sql = QUERY_FORMS[query_index]
        engines = build_engines(r_rows, s_rows)
        results = [engine.execute(sql, lineage=True) for engine in engines]
        for engine, got in zip(engines[1:], results[1:]):
            assert got.rows == results[0].rows, engine.engine_name
            assert got.lineages == results[0].lineages, engine.engine_name

    @settings(max_examples=15, deadline=None)
    @given(rows_r, rows_s)
    def test_mutation_under_cached_plan(self, r_rows, s_rows):
        """Inserts and deletes bump table versions: cached plans, zone
        maps, and range indexes must all see the current state."""
        sql = "SELECT r.a, s.c FROM r, s WHERE r.a = s.a"
        range_sql = "SELECT s.c FROM s WHERE s.a >= 1"
        engines = build_engines(r_rows, s_rows)

        def agree(query):
            results = [engine.execute(query).rows for engine in engines]
            assert results[1] == results[0]
            assert results[2] == results[0]

        agree(sql)
        agree(range_sql)
        s = engines[0].database.table("s")
        s.insert_many([(1, 99), (2, 98)])
        agree(sql)
        agree(range_sql)
        s.delete_tids({s.tids()[0]} if s.tids() else set())
        agree(sql)
        agree(range_sql)


class TestColumnVector:
    def test_promotes_to_int_mode(self):
        vec = ColumnVector.from_values([1, 2, 3])
        assert vec.kind == "i64"
        assert vec.values() == [1, 2, 3]
        assert vec.null_count == 0
        assert vec.is_clean_numeric()

    def test_promotes_to_float_mode(self):
        vec = ColumnVector.from_values([1.5, 2.5])
        assert vec.kind == "f64"
        assert vec.values() == [1.5, 2.5]

    def test_nulls_tracked_in_bitmap(self):
        vec = ColumnVector.from_values([1, None, 3, None])
        assert vec.null_count == 2
        assert vec.values() == [1, None, 3, None]
        assert not vec.is_clean_numeric()
        bitmap = vec.null_bitmap()
        assert (bitmap[0] >> 1) & 1 and (bitmap[0] >> 3) & 1
        assert not (bitmap[0] & 1)

    def test_demotes_on_nonconforming_append(self):
        vec = ColumnVector.from_values([1, 2, 3])
        assert vec.kind == "i64"
        vec.append("x")
        assert vec.kind == "obj"
        assert vec.values() == [1, 2, 3, "x"]

    def test_bools_never_enter_typed_mode(self):
        # bool is an int subclass; a typed store would erase the
        # distinction and break the engine's bool-is-not-int semantics.
        vec = ColumnVector.from_values([True, False])
        assert vec.values() == [True, False]
        assert vec.values()[0] is True

    def test_clone_is_copy_on_write(self):
        vec = ColumnVector.from_values([1, 2, 3])
        twin = vec.clone()
        twin.append(4)
        assert vec.values() == [1, 2, 3]
        assert twin.values() == [1, 2, 3, 4]
        vec.append(9)
        assert twin.values() == [1, 2, 3, 4]
        assert vec.values() == [1, 2, 3, 9]

    def test_take_preserves_values_and_nulls(self):
        vec = ColumnVector.from_values([10, None, 30, 40])
        taken = vec.take([3, 0, 1])
        assert taken.values() == [40, 10, None]
        assert taken.null_count == 1


class TestTableAccessors:
    def make_table(self, n=10):
        db = Database()
        db.load_table(
            "t", ["a", "b"], [(i, None if i % 3 == 0 else i * 2) for i in range(n)]
        )
        return db.table("t")

    def test_column_by_name(self):
        table = self.make_table()
        vec = table.column("a")
        assert isinstance(vec, ColumnVector)
        assert vec.values() == [row[0] for row in table.rows()]
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            table.column("nope")

    def test_null_mask(self):
        table = self.make_table(4)
        mask = table.null_mask("b")
        assert (mask[0] >> 0) & 1 and (mask[0] >> 3) & 1
        assert not ((mask[0] >> 1) & 1 or (mask[0] >> 2) & 1)

    def test_chunks_cover_all_rows_in_order(self):
        db = Database()
        n = CHUNK_SIZE * 2 + 17
        db.load_table("big", ["x"], [(i,) for i in range(n)])
        table = db.table("big")
        spans = table.chunk_spans()
        assert spans[0] == (0, CHUNK_SIZE)
        assert spans[-1][1] == n
        rebuilt = [row for batch in table.chunks() for row in batch.to_rows()]
        assert rebuilt == table.rows()

    def test_zone_map_tracks_min_max_nulls(self):
        table = self.make_table(6)
        [entry] = table.zone_map(1)
        assert entry.family == "num"
        assert entry.lo == 2 and entry.hi == 10
        assert entry.null_count == 2
        table.insert((99, 198))
        [entry] = table.zone_map(1)
        assert entry.hi == 198


class TestZonePruning:
    def make_sorted_db(self, n=10 * CHUNK_SIZE):
        db = Database()
        db.load_table("big", ["id", "v"], [(i, i % 7) for i in range(n)])
        return db

    def test_range_predicate_skips_cold_chunks(self):
        db = self.make_sorted_db()
        engine = Engine(db, "columnar")
        low, high = CHUNK_SIZE // 2, CHUNK_SIZE + CHUNK_SIZE // 2
        result = engine.execute(
            f"SELECT COUNT(*) FROM big WHERE big.id >= {low} "
            f"AND big.id < {high}"
        )
        assert result.rows == [(high - low,)]
        assert db.zone_chunks_skipped >= 8
        assert db.zone_chunks_scanned <= 2
        assert db.zone_chunks_scanned + db.zone_chunks_skipped == 10

    def test_unselective_predicate_scans_everything(self):
        db = self.make_sorted_db(2 * CHUNK_SIZE)
        engine = Engine(db, "columnar")
        result = engine.execute(
            "SELECT COUNT(*) FROM big WHERE big.id >= 0 AND big.v < 7"
        )
        assert result.rows == [(2 * CHUNK_SIZE,)]
        assert db.zone_chunks_skipped == 0

    def test_row_and_vectorized_engines_never_prune(self):
        db = self.make_sorted_db(2 * CHUNK_SIZE)
        for name in ("row", "vectorized"):
            engine = Engine(db, name)
            engine.execute(
                "SELECT COUNT(*) FROM big WHERE big.id >= 0 AND big.id < 10"
            )
        assert db.zone_chunks_scanned == 0
        assert db.zone_chunks_skipped == 0

    def test_single_range_conjunct_uses_range_index(self):
        db = self.make_sorted_db(2 * CHUNK_SIZE)
        engine = Engine(db, "columnar")
        result = engine.execute("SELECT COUNT(*) FROM big WHERE big.id < 100")
        assert result.rows == [(100,)]
        assert db.range_probes >= 1

    def test_chunk_can_skip_matrix(self):
        entry = build_zone_entry([1, 5, 9])
        assert chunk_can_skip(entry, "<", 1, value_family(1))
        assert not chunk_can_skip(entry, "<=", 1, value_family(1))
        assert chunk_can_skip(entry, ">", 9, value_family(9))
        assert chunk_can_skip(entry, "=", 10, value_family(10))
        assert not chunk_can_skip(entry, "=", 5, value_family(5))
        # NULL comparisons are never True; cross-family '=' can't match,
        # but cross-family ordering must scan so the error surfaces.
        assert chunk_can_skip(entry, "=", None, None)
        assert chunk_can_skip(entry, "=", "x", value_family("x"))
        assert not chunk_can_skip(entry, "<", "x", value_family("x"))
        # All-NULL chunks never satisfy any comparison.
        assert chunk_can_skip(build_zone_entry([None, None]), "=", 1, "num")
        # Mixed-family chunks are unprunable.
        assert not chunk_can_skip(build_zone_entry([1, "x"]), "=", 1, "num")


class TestRangeIndex:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.one_of(st.integers(min_value=-5, max_value=5), st.none()),
            max_size=40,
        ),
        st.sampled_from(["<", "<=", ">", ">=", "="]),
        st.integers(min_value=-5, max_value=5),
    )
    def test_matches_brute_force(self, values, op, const):
        from repro.engine import types

        db = Database()
        db.load_table("t", ["x"], [(v,) for v in values])
        table = db.table("t")
        got = table.range_positions(0, op, const)
        expected = [
            i
            for i, v in enumerate(values)
            if v is not None and types.compare(op, v, const)
        ]
        assert got == expected

    def test_null_const_matches_nothing(self):
        db = Database()
        db.load_table("t", ["x"], [(1,), (2,)])
        assert db.table("t").range_positions(0, "<", None) == []

    def test_cross_family_refuses(self):
        db = Database()
        db.load_table("t", ["x"], [(1,), (2,)])
        assert db.table("t").range_positions(0, "<", "a") is None

    def test_mixed_column_refuses(self):
        db = Database()
        db.load_table("t", ["x"], [(1,), ("a",)])
        assert db.table("t").range_positions(0, "<", 3) is None

    def test_index_tracks_mutations(self):
        db = Database()
        db.load_table("t", ["x"], [(i,) for i in range(10)])
        table = db.table("t")
        assert table.range_positions(0, ">=", 8) == [8, 9]
        table.insert((100,))
        assert table.range_positions(0, ">=", 8) == [8, 9, 10]


RATE_POLICY = (
    "SELECT DISTINCT 'too fast' FROM users u, groups g, clock c "
    "WHERE u.uid = g.uid AND g.gid = 'x' AND u.ts > c.ts - 100 "
    "HAVING COUNT(DISTINCT u.ts) > 3"
)


def make_enforcer(**overrides) -> Enforcer:
    db = Database()
    db.load_table(
        "items",
        ["iid", "owner"],
        [(f"i{i}", f"u{i % 2}") for i in range(4)],
    )
    db.load_table("groups", ["uid", "gid"], [("alice", "x"), ("bob", "x")])
    policy = Policy.from_sql("rate", RATE_POLICY, "rate limit")
    return Enforcer(
        db,
        [policy],
        registry=standard_registry(),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions(**overrides),
    )


class TestRecoveryRebuildsColumnState:
    def test_recovered_columns_match_uncrashed_twin(self, tmp_path):
        queries = [("SELECT iid FROM items", "alice")] * 5 + [
            ("SELECT owner FROM items WHERE owner = 'u0'", "bob")
        ]
        enforcer = make_enforcer(engine="columnar")
        wal = initialize_durability(enforcer, tmp_path)
        for sql, uid in queries:
            enforcer.submit(sql, uid=uid)
        wal.close()  # abandon in-memory state: simulated crash

        twin = make_enforcer(engine="columnar")
        for sql, uid in queries:
            twin.submit(sql, uid=uid)

        recovered, rwal, _ = recover_enforcer(
            tmp_path, clock=SimulatedClock(default_step_ms=10)
        )
        try:
            for name in ("users", "schema", "provenance"):
                ours = recovered.database.table(name)
                theirs = twin.database.table(name)
                assert ours.rows() == theirs.rows()
                assert ours.tids() == theirs.tids()
                width = len(ours.rows()[0]) if ours.rows() else 0
                for position in range(width):
                    assert (
                        ours.column_values(position)
                        == theirs.column_values(position)
                    )
                    assert [
                        (e.family, e.lo, e.hi, e.null_count)
                        for e in ours.zone_map(position)
                    ] == [
                        (e.family, e.lo, e.hi, e.null_count)
                        for e in theirs.zone_map(position)
                    ]
            # And the recovered enforcer keeps deciding identically.
            for sql, uid in queries:
                assert (
                    recovered.submit(sql, uid=uid).allowed
                    == twin.submit(sql, uid=uid).allowed
                )
        finally:
            rwal.close()


class TestDeprecatedSpellings:
    def test_engine_vectorized_kwarg_warns_and_maps(self):
        db = Database()
        db.load_table("t", ["x"], [(1,)])
        with pytest.warns(DeprecationWarning, match="vectorized"):
            engine = Engine(db, vectorized=False)
        assert engine.engine_name == "row"
        assert engine.vectorized is False
        with pytest.warns(DeprecationWarning, match="vectorized"):
            engine = Engine(db, vectorized=True)
        assert engine.engine_name == "vectorized"
        assert engine.execute("SELECT t.x FROM t").rows == [(1,)]

    def test_enforcer_options_vectorized_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="vectorized"):
            options = EnforcerOptions(vectorized=False)
        assert options.engine == "row"
        assert options.vectorized is None  # normalized away
        with pytest.warns(DeprecationWarning, match="vectorized"):
            options = EnforcerOptions.datalawyer(vectorized=True)
        assert options.engine == "vectorized"

    def test_explicit_engine_wins_over_legacy_boolean(self):
        with pytest.warns(DeprecationWarning, match="vectorized"):
            options = EnforcerOptions(engine="columnar", vectorized=False)
        assert options.engine == "columnar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            EnforcerOptions(engine="turbo")
        db = Database()
        with pytest.raises(ValueError, match="unknown engine"):
            Engine(db, "turbo")

    def test_default_engine_is_columnar(self):
        db = Database()
        assert Engine(db).engine_name == DEFAULT_ENGINE == "columnar"
        assert EnforcerOptions().engine_name == "columnar"

    def test_cli_no_vectorized_flag_warns_and_maps(self):
        from repro.cli import _engine_from_args, make_parser

        args = make_parser().parse_args(
            ["check", "--query", "SELECT 1", "--no-vectorized"]
        )
        with pytest.warns(DeprecationWarning, match="--engine row"):
            assert _engine_from_args(args) == "row"
        args = make_parser().parse_args(
            ["check", "--query", "SELECT 1", "--engine", "columnar"]
        )
        assert _engine_from_args(args) == "columnar"


def make_service_enforcer() -> Enforcer:
    db = Database()
    db.load_table("navteq", ["id", "lat"], [(i, float(i)) for i in range(8)])
    policy = Policy.from_sql(
        "no-joins",
        "SELECT DISTINCT 'no external joins' FROM schema p1, schema p2 "
        "WHERE p1.ts = p2.ts AND p1.irid = 'navteq' AND p2.irid <> 'navteq'",
    )
    return Enforcer(
        db,
        [policy],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


class TestServiceEngineSurface:
    def test_stats_and_metrics_expose_engine(self):
        service = ShardedEnforcerService(
            make_service_enforcer(),
            ServiceConfig(shards=2, routing="modulo", engine="columnar"),
        )
        try:
            service.submit(
                "SELECT n.id FROM navteq n WHERE n.id >= 2 AND n.id < 5",
                uid=1,
            )
            stats = service.stats()
            assert [s["engine"] for s in stats["per_shard"]] == [
                "columnar",
                "columnar",
            ]
            body = service.render_metrics()
            assert 'repro_engine_info{shard="0",engine="columnar"} 1' in body
            assert "repro_engine_chunks_scanned_total" in body
            assert "repro_engine_chunks_skipped_total" in body
        finally:
            service.drain()

    def test_config_engine_overrides_seed_enforcer(self):
        enforcer = make_service_enforcer()
        assert enforcer.engine.engine_name == "columnar"
        service = ShardedEnforcerService(
            enforcer, ServiceConfig(shards=1, engine="row")
        )
        try:
            assert service.shards[0].enforcer.engine.engine_name == "row"
            assert service.shards[0].enforcer.options.engine == "row"
        finally:
            service.drain()

    def test_config_rejects_unknown_engine(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="unknown engine"):
            ServiceConfig(engine="turbo")
