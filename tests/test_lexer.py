"""Lexer tests."""

import pytest

from repro.errors import LexError
from repro.sql import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        assert kinds("select") == [(TokenType.KEYWORD, "SELECT")]
        assert kinds("SeLeCt") == [(TokenType.KEYWORD, "SELECT")]

    def test_identifiers_fold_to_lowercase(self):
        assert kinds("ChartEvents") == [(TokenType.IDENT, "chartevents")]

    def test_identifier_with_underscore_and_digits(self):
        assert kinds("d_patients2") == [(TokenType.IDENT, "d_patients2")]

    def test_integer_literal(self):
        assert kinds("42") == [(TokenType.NUMBER, "42")]

    def test_float_literal(self):
        assert kinds("3.25") == [(TokenType.NUMBER, "3.25")]

    def test_scientific_notation(self):
        assert kinds("1e5 2.5E-3") == [
            (TokenType.NUMBER, "1e5"),
            (TokenType.NUMBER, "2.5E-3"),
        ]

    def test_string_literal(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_string_escape_doubles_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_empty_string(self):
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_quoted_identifier_preserves_case(self):
        assert kinds('"MixedCase"') == [(TokenType.IDENT, "MixedCase")]

    def test_quoted_identifier_escape(self):
        assert kinds('"a""b"') == [(TokenType.IDENT, 'a"b')]


class TestOperators:
    @pytest.mark.parametrize(
        "op", ["=", "<>", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "||"]
    )
    def test_each_operator(self, op):
        assert kinds(f"a {op} b") == [
            (TokenType.IDENT, "a"),
            (TokenType.OPERATOR, op),
            (TokenType.IDENT, "b"),
        ]

    def test_greedy_two_char_operators(self):
        assert kinds("a<=b") == [
            (TokenType.IDENT, "a"),
            (TokenType.OPERATOR, "<="),
            (TokenType.IDENT, "b"),
        ]

    def test_punctuation(self):
        assert kinds("(a, b.c);") == [
            (TokenType.PUNCT, "("),
            (TokenType.IDENT, "a"),
            (TokenType.PUNCT, ","),
            (TokenType.IDENT, "b"),
            (TokenType.PUNCT, "."),
            (TokenType.IDENT, "c"),
            (TokenType.PUNCT, ")"),
            (TokenType.PUNCT, ";"),
        ]


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert kinds("a -- comment here\n b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_block_comment(self):
        assert kinds("a /* multi\nline */ b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_whitespace_variants(self):
        assert kinds("a\t\r\n  b") == [
            (TokenType.IDENT, "a"),
            (TokenType.IDENT, "b"),
        ]


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a ? b")
        assert "unexpected character" in str(excinfo.value)

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("'open")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ab\ncd ?")
        assert excinfo.value.line == 2


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("select\n  a")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_eof_token_present(self):
        tokens = tokenize("a")
        assert tokens[-1].type is TokenType.EOF

    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("   ")
        assert len(tokens) == 1 and tokens[0].type is TokenType.EOF


class TestTokenHelpers:
    def test_matches(self):
        token = Token(TokenType.IDENT, "abc", 1, 1)
        assert token.matches(TokenType.IDENT)
        assert token.matches(TokenType.IDENT, "abc")
        assert not token.matches(TokenType.IDENT, "xyz")
        assert not token.matches(TokenType.KEYWORD)

    def test_is_keyword(self):
        token = Token(TokenType.KEYWORD, "SELECT", 1, 1)
        assert token.is_keyword("SELECT")
        assert token.is_keyword("FROM", "SELECT")
        assert not token.is_keyword("FROM")
