"""The incremental maintenance subsystem: classifier verdicts, state
mechanics, and — the load-bearing property — bit-identical decisions
between incremental and full re-evaluation across workloads, policy
changes, rejections, poisoning, and crash/recovery."""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.incremental import STATE_FORMAT_VERSION
from repro.incremental.state import (
    FOREVER,
    _compare,
    _CountAgg,
    _DistinctAgg,
    _expired,
)
from repro.log import SimulatedClock, standard_registry
from repro.service import ServiceConfig, ShardedEnforcerService
from repro.storage import (
    checkpoint,
    initialize_durability,
    recover_enforcer,
    tear,
)
from repro.workloads import (
    MarketplaceConfig,
    MimicConfig,
    PolicyParams,
    build_marketplace_database,
    build_mimic_database,
    make_all_policies,
    make_marketplace_workload,
    make_workload,
    standard_contract,
)

# ---------------------------------------------------------------------------
# Toy fixture: a rate-limited group over a tiny catalog (fast to submit).
# ---------------------------------------------------------------------------

RATE_POLICY = (
    "SELECT DISTINCT 'too fast' FROM users u, groups g, clock c "
    "WHERE u.uid = g.uid AND g.gid = 'x' AND u.ts > c.ts - 60 "
    "HAVING COUNT(DISTINCT u.ts) > 2"
)
LIFETIME_POLICY = (
    "SELECT DISTINCT 'quota' FROM users u WHERE u.uid = 'alice' "
    "HAVING COUNT(u.ts) > 4"
)

QUERY_POOL = [
    "SELECT iid FROM items",
    "SELECT owner FROM items",
    "SELECT iid FROM items WHERE owner = 'u0'",
    "SELECT COUNT(*) FROM items",
    "SELECT gid FROM groups",
]

USERS = ["alice", "bob", "carol"]  # carol is outside the limited group


def toy_db() -> Database:
    db = Database()
    db.load_table(
        "items",
        ["iid", "owner"],
        [(f"i{i}", f"u{i % 2}") for i in range(4)],
    )
    db.load_table("groups", ["uid", "gid"], [("alice", "x"), ("bob", "x")])
    return db


def toy_enforcer(incremental: bool, policies=None, **overrides) -> Enforcer:
    if policies is None:
        policies = [Policy.from_sql("rate", RATE_POLICY, "rate limit")]
    return Enforcer(
        toy_db(),
        policies,
        registry=standard_registry(),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(
            incremental=incremental, **overrides
        ),
    )


def persisted_log_content(enforcer: Enforcer) -> dict:
    """Disk row values per relation (tids excluded deliberately: witness
    shortcuts may stage different tid sequences, content must agree)."""
    return {
        name: [row for _, row in entries]
        for name, entries in enforcer.store._disk.items()
    }


def run_twins(incremental: Enforcer, full: Enforcer, stream) -> list:
    """Drive both systems through ``stream``; assert lockstep equality."""
    outcomes = []
    for qidx, uidx in stream:
        mine = incremental.submit(QUERY_POOL[qidx], uid=USERS[uidx])
        twin = full.submit(QUERY_POOL[qidx], uid=USERS[uidx])
        assert mine.allowed == twin.allowed
        assert [v.policy_name for v in mine.violations] == [
            v.policy_name for v in twin.violations
        ]
        outcomes.append((mine.allowed, mine.timestamp))
    assert persisted_log_content(incremental) == persisted_log_content(full)
    return outcomes


# ---------------------------------------------------------------------------
# Classifier
# ---------------------------------------------------------------------------


class TestClassifier:
    def classify(self, sql: str):
        enforcer = toy_enforcer(True, [Policy.from_sql("p", sql)])
        (entry,) = enforcer.incremental_report()
        return entry

    def test_windowed_distinct_count_is_incrementalizable(self):
        entry = self.classify(RATE_POLICY)
        assert entry["incrementalizable"]
        assert "count(distinct u.ts)" in entry["reason"]
        assert entry["plan"]["log_relations"] == ["users"]

    def test_window_free_count_is_incrementalizable(self):
        assert self.classify(LIFETIME_POLICY)["incrementalizable"]

    def test_grouped_count_is_incrementalizable(self):
        entry = self.classify(
            "SELECT u.uid FROM users u, clock c WHERE u.ts > c.ts - 60 "
            "GROUP BY u.uid HAVING COUNT(u.ts) > 3"
        )
        assert entry["incrementalizable"]
        assert entry["plan"]["group_by"] == ["u.uid"]

    def test_growing_window_refused(self):
        entry = self.classify(
            "SELECT DISTINCT 'x' FROM users u, clock c "
            "WHERE u.ts < c.ts - 60 HAVING COUNT(u.ts) > 2"
        )
        assert not entry["incrementalizable"]
        assert "non-shrinking" in entry["reason"]

    def test_windowed_extremum_refused(self):
        entry = self.classify(
            "SELECT DISTINCT 'x' FROM users u, clock c "
            "WHERE u.ts > c.ts - 60 HAVING MAX(u.ts) > 5"
        )
        assert not entry["incrementalizable"]
        assert "min/max" in entry["reason"]

    def test_window_free_extremum_is_incrementalizable(self):
        entry = self.classify(
            "SELECT DISTINCT 'x' FROM users u HAVING MAX(u.ts) > 1000000"
        )
        assert entry["incrementalizable"]

    def test_non_monotone_shapes_refused(self):
        for sql in (
            "SELECT DISTINCT 'x' FROM users u HAVING COUNT(u.ts) < 2",
            "SELECT DISTINCT 'x' FROM users u HAVING SUM(u.ts) > 10",
        ):
            entry = self.classify(sql)
            assert not entry["incrementalizable"]
            assert "non-monotone" in entry["reason"]

    def test_mimic_policy_verdicts(self):
        config = MimicConfig(n_patients=30)
        enforcer = Enforcer(
            build_mimic_database(config),
            make_all_policies(PolicyParams.for_config(config)),
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(incremental=True),
        )
        verdicts = {}
        for entry in enforcer.incremental_report():
            for name in entry["policies"]:
                verdicts[name] = (entry["incrementalizable"], entry["reason"])
        assert verdicts["P1"][0] and verdicts["P5"][0] and verdicts["P6"][0]
        for name in ("P2", "P3", "P4"):
            assert not verdicts[name][0]
            assert "time-independent" in verdicts[name][1]

    def test_marketplace_contract_classifies(self):
        config = MarketplaceConfig(n_subscribers=3)
        enforcer = Enforcer(
            build_marketplace_database(config),
            standard_contract(config),
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(incremental=True),
        )
        report = enforcer.incremental_report()
        assert any(entry["incrementalizable"] for entry in report)


# ---------------------------------------------------------------------------
# State mechanics
# ---------------------------------------------------------------------------


class TestStateUnits:
    def test_expiry_boundaries(self):
        # Strict window (T < bound): dead exactly at the bound.
        assert not _expired(10, 0, 9)
        assert _expired(10, 0, 10)
        # Non-strict (T <= bound): survives the bound itself.
        assert not _expired(10, 1, 10)
        assert _expired(10, 1, 11)

    def test_compare_null_semantics(self):
        assert not _compare(None, ">", 1)
        assert not _compare(1, ">", None)
        assert _compare(2, ">", 1)
        assert _compare(1, ">=", 1)

    def test_count_agg_window_expiry(self):
        agg = _CountAgg()
        agg.fold(1, (10, 0), seq=0)  # expires at T >= 10
        agg.fold(1, (20, 0), seq=1)
        agg.fold(1, FOREVER, seq=2)
        assert agg.value(5, ()) == 3
        assert agg.value(10, ()) == 2
        assert agg.value(25, ()) == 1  # only the FOREVER contribution
        # Extras are transient: counted while alive, never folded.
        assert agg.value(25, [(1, (30, 0))]) == 2
        assert agg.value(25, ()) == 1

    def test_distinct_agg_keeps_loosest_bound(self):
        agg = _DistinctAgg()
        agg.fold("v", (10, 0), seq=0)
        agg.fold("v", (30, 0), seq=1)  # same value seen with a later bound
        agg.fold("w", (15, 0), seq=2)
        assert agg.value(5, ()) == 2
        assert agg.value(20, ()) == 1  # "w" expired, "v" survives to 30
        assert agg.value(30, ()) == 0

    def test_distinct_agg_forever_wins(self):
        agg = _DistinctAgg()
        agg.fold("v", (10, 0), seq=0)
        agg.fold("v", FOREVER, seq=1)
        assert agg.value(10_000, ()) == 1

    def test_count_agg_json_roundtrip(self):
        agg = _CountAgg()
        agg.fold(2, (10, 1), seq=0)
        agg.fold(3, FOREVER, seq=1)
        restored = _CountAgg.from_json(
            json.loads(json.dumps(agg.to_json()))
        )
        assert restored.value(10, ()) == agg.value(10, ())
        assert restored.value(11, ()) == agg.value(11, ())


# ---------------------------------------------------------------------------
# Equivalence: incremental on vs off, bit-identical decisions
# ---------------------------------------------------------------------------

stream_strategy = st.lists(
    st.tuples(
        st.integers(0, len(QUERY_POOL) - 1),
        st.integers(0, len(USERS) - 1),
    ),
    min_size=1,
    max_size=25,
)


class TestEquivalence:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(stream=stream_strategy)
    def test_toy_stream_equivalence(self, stream):
        incremental = toy_enforcer(True)
        incremental.warm_incremental()
        full = toy_enforcer(False)
        outcomes = run_twins(incremental, full, stream)
        # The rate limit must actually fire on long same-user bursts so
        # the rejection/discard path is exercised, not just the happy one.
        if sum(1 for _, u in stream if u == 0) + sum(
            1 for _, u in stream if u == 1
        ) == len(stream) and len(stream) > 6:
            assert not all(allowed for allowed, _ in outcomes)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        before=stream_strategy,
        after=stream_strategy,
        drop_rate=st.booleans(),
    )
    def test_policy_change_midstream(self, before, after, drop_rate):
        policies = [
            Policy.from_sql("rate", RATE_POLICY, "rate limit"),
            Policy.from_sql("quota", LIFETIME_POLICY, "lifetime quota"),
        ]
        incremental = toy_enforcer(True, [p for p in policies])
        incremental.warm_incremental()
        full = toy_enforcer(False, [p for p in policies])
        run_twins(incremental, full, before)
        name = "rate" if drop_rate else "quota"
        incremental.remove_policy(name)
        full.remove_policy(name)
        run_twins(incremental, full, after)
        readded = Policy.from_sql(name, policies[0 if drop_rate else 1].sql)
        incremental.add_policy(readded)
        full.add_policy(readded)
        run_twins(incremental, full, after)

    def test_cold_start_equals_warm_start(self):
        warm = toy_enforcer(True)
        warm.warm_incremental()
        cold = toy_enforcer(True)  # maintainer built lazily mid-stream
        stream = [(0, 0), (1, 0), (2, 0), (0, 1), (3, 2), (0, 0)]
        for qidx, uidx in stream:
            a = warm.submit(QUERY_POOL[qidx], uid=USERS[uidx])
            b = cold.submit(QUERY_POOL[qidx], uid=USERS[uidx])
            assert a.allowed == b.allowed
        assert warm.incremental.stats.hits > 0
        assert cold.incremental.stats.hits > 0

    def test_marketplace_stream_equivalence(self):
        config = MarketplaceConfig(
            n_listings=40, n_subscribers=3, rate_limit=3, rate_window=100
        )
        template = build_marketplace_database(config)
        workload = make_marketplace_workload(config)

        def build(incremental: bool) -> Enforcer:
            return Enforcer(
                template.clone(),
                standard_contract(config),
                clock=SimulatedClock(default_step_ms=10),
                options=EnforcerOptions.datalawyer(incremental=incremental),
            )

        inc, full = build(True), build(False)
        inc.warm_incremental()
        rejected = 0
        for _ in range(3):
            for name in ("M1", "M2", "M3"):
                for uid in (1, 2):
                    a = inc.submit(workload[name], uid=uid)
                    b = full.submit(workload[name], uid=uid)
                    assert a.allowed == b.allowed, (name, uid)
                    assert [v.policy_name for v in a.violations] == [
                        v.policy_name for v in b.violations
                    ]
                    rejected += not a.allowed
        assert rejected > 0  # the rate limit must have fired
        assert persisted_log_content(inc) == persisted_log_content(full)
        assert inc.incremental.stats.hits > 0

    def test_mimic_workload_equivalence(self):
        config = MimicConfig(n_patients=40)
        template = build_mimic_database(config)
        policies = make_all_policies(PolicyParams.for_config(config))
        workload = make_workload(config)

        def build(incremental: bool) -> Enforcer:
            return Enforcer(
                template.clone(),
                [Policy.from_sql(p.name, p.sql, p.message) for p in policies],
                clock=SimulatedClock(default_step_ms=10),
                options=EnforcerOptions.datalawyer(incremental=incremental),
            )

        inc, full = build(True), build(False)
        inc.warm_incremental()
        for _ in range(2):
            for name, sql in workload.all().items():
                for uid in (0, 1):
                    a = inc.submit(sql, uid=uid)
                    b = full.submit(sql, uid=uid)
                    assert a.allowed == b.allowed, (name, uid)
        assert persisted_log_content(inc) == persisted_log_content(full)
        assert inc.incremental.stats.hits > 0
        assert inc.incremental.stats.fallbacks == 0


# ---------------------------------------------------------------------------
# Poisoning: the bounded-state fallback stays correct
# ---------------------------------------------------------------------------


class TestPoisoning:
    def test_size_cap_poisons_and_stays_correct(self):
        # The window-free distinct count accumulates one entry per alice
        # submission forever, so the tiny cap must blow mid-stream
        # (windowed state would evade it — expired entries get pruned).
        policies = [
            Policy.from_sql(
                "quota",
                "SELECT DISTINCT 'quota' FROM users u "
                "WHERE u.uid = 'alice' HAVING COUNT(DISTINCT u.ts) > 4",
                "quota",
            )
        ]
        incremental = toy_enforcer(
            True, list(policies), incremental_max_entries=3
        )
        incremental.warm_incremental()
        full = toy_enforcer(False, list(policies))
        stream = [(0, 0), (1, 0), (2, 0), (3, 0), (0, 0), (1, 0), (2, 2)]
        run_twins(incremental, full, stream)
        stats = incremental.incremental.stats
        assert stats.fallbacks > 0
        assert any(
            "poisoned" in reason for reason in stats.fallback_reasons
        ), stats.fallback_reasons


# ---------------------------------------------------------------------------
# Durability: checkpointed state, WAL replay, stale-marker invalidation
# ---------------------------------------------------------------------------


def durable_enforcer(directory: Path):
    enforcer = toy_enforcer(True)
    wal = initialize_durability(enforcer, directory, sync=False)
    return enforcer, wal


class TestDurability:
    def test_checkpoint_writes_state_and_restore_adopts_it(self):
        with tempfile.TemporaryDirectory() as raw:
            directory = Path(raw)
            enforcer, wal = durable_enforcer(directory)
            enforcer.warm_incremental()
            for qidx, uidx in [(0, 0), (1, 0), (2, 1), (0, 2)]:
                enforcer.submit(QUERY_POOL[qidx], uid=USERS[uidx])
            checkpoint(enforcer, directory, wal)
            wal.close()
            # The checkpoint protocol swaps the snapshot into checkpoint/.
            assert (directory / "checkpoint" / "incremental.json").exists()

            recovered, rwal, _ = recover_enforcer(
                directory, clock=SimulatedClock(default_step_ms=10)
            )
            assert recovered.options.incremental
            maintainer = recovered.incremental
            assert maintainer is not None and maintainer.warm
            assert maintainer.stats.restores == 1

            twin = toy_enforcer(True)
            for qidx, uidx in [(0, 0), (1, 0), (2, 1), (0, 2)]:
                twin.submit(QUERY_POOL[qidx], uid=USERS[uidx])
            held_out = [(0, 0), (0, 0), (1, 1), (2, 2)]
            for qidx, uidx in held_out:
                a = recovered.submit(QUERY_POOL[qidx], uid=USERS[uidx])
                b = twin.submit(QUERY_POOL[qidx], uid=USERS[uidx])
                assert a.allowed == b.allowed
            rwal.close()

    def test_stale_format_marker_forces_rebuild(self):
        with tempfile.TemporaryDirectory() as raw:
            directory = Path(raw)
            enforcer, wal = durable_enforcer(directory)
            enforcer.warm_incremental()
            for qidx, uidx in [(0, 0), (1, 0), (2, 1)]:
                enforcer.submit(QUERY_POOL[qidx], uid=USERS[uidx])
            checkpoint(enforcer, directory, wal)
            wal.close()

            state_path = directory / "checkpoint" / "incremental.json"
            payload = json.loads(state_path.read_text(encoding="utf-8"))
            assert payload["format"] == STATE_FORMAT_VERSION
            payload["format"] = STATE_FORMAT_VERSION + 1
            state_path.write_text(json.dumps(payload), encoding="utf-8")

            recovered, rwal, _ = recover_enforcer(
                directory, clock=SimulatedClock(default_step_ms=10)
            )
            # Adoption refused; the lazy rebuild path takes over and the
            # decisions still match an uncrashed twin.
            assert recovered.incremental is None or not recovered.incremental.warm
            twin = toy_enforcer(True)
            for qidx, uidx in [(0, 0), (1, 0), (2, 1)]:
                twin.submit(QUERY_POOL[qidx], uid=USERS[uidx])
            for qidx, uidx in [(0, 0), (0, 0), (1, 1)]:
                a = recovered.submit(QUERY_POOL[qidx], uid=USERS[uidx])
                b = twin.submit(QUERY_POOL[qidx], uid=USERS[uidx])
                assert a.allowed == b.allowed
            rwal.close()

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        stream=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 2)),
            min_size=1,
            max_size=8,
        ),
        held_out=st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 2)),
            min_size=1,
            max_size=5,
        ),
        crash_fraction=st.floats(0.0, 1.0),
    )
    def test_recovery_equivalence_with_incremental_on(
        self, stream, held_out, crash_fraction
    ):
        with tempfile.TemporaryDirectory() as raw:
            directory = Path(raw)
            enforcer, wal = durable_enforcer(directory)
            enforcer.warm_incremental()
            original = [
                enforcer.submit(QUERY_POOL[q], uid=USERS[u]).allowed
                for q, u in stream
            ]
            wal.close()

            wal_path = directory / "wal.jsonl"
            tear(wal_path, int(wal_path.stat().st_size * crash_fraction))

            recovered, rwal, report = recover_enforcer(
                directory, clock=SimulatedClock(default_step_ms=10)
            )
            durable = report.last_seq
            assert 0 <= durable <= len(stream)

            twin = toy_enforcer(True)
            twin.warm_incremental()
            assert [
                twin.submit(QUERY_POOL[q], uid=USERS[u]).allowed
                for q, u in stream[:durable]
            ] == original[:durable]

            for qidx, uidx in held_out:
                a = recovered.submit(QUERY_POOL[qidx], uid=USERS[uidx])
                b = twin.submit(QUERY_POOL[qidx], uid=USERS[uidx])
                assert a.allowed == b.allowed
            assert persisted_log_content(recovered) == persisted_log_content(
                twin
            )
            rwal.close()


# ---------------------------------------------------------------------------
# Service surface
# ---------------------------------------------------------------------------


class TestServiceSurface:
    def make_service(self, **config_overrides) -> ShardedEnforcerService:
        return ShardedEnforcerService(
            toy_enforcer(False),  # config owns the incremental switch
            ServiceConfig(**config_overrides),
        )

    def test_stats_and_classification_surface(self):
        service = self.make_service()
        try:
            assert service.config.incremental
            for _ in range(3):
                service.submit(QUERY_POOL[0], uid=USERS[0])
            stats = service.stats()
            assert stats["incremental"] is True
            shard = stats["per_shard"][0]
            assert shard["incremental"]["hits"] > 0
            assert shard["incremental"]["state_entries"] >= 0
            (entry,) = service.policies()
            assert entry["classification"]["incrementalizable"] is True
        finally:
            service.close()

    def test_metrics_exposition_includes_incremental_families(self):
        service = self.make_service()
        try:
            service.submit(QUERY_POOL[0], uid=USERS[0])
            text = service.render_metrics()
            assert "# TYPE repro_incremental_hits_total counter" in text
            assert "# TYPE repro_incremental_fallbacks_total counter" in text
            assert "# TYPE repro_incremental_state_entries gauge" in text
        finally:
            service.close()

    def test_disabled_by_config(self):
        service = self.make_service(incremental=False)
        try:
            service.submit(QUERY_POOL[0], uid=USERS[0])
            stats = service.stats()
            assert stats["incremental"] is False
            assert "incremental" not in stats["per_shard"][0]
        finally:
            service.close()
