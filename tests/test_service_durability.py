"""Durability through the service stack: per-shard WALs, recovery on
startup, checkpoint cadence, durable policy changes, the HTTP
``/durability`` surface, and the ``recover`` CLI subcommand."""

from __future__ import annotations

import io
import json
import threading
from http.client import HTTPConnection

import pytest

from repro.cli import cmd_recover, make_parser
from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.log import SimulatedClock, standard_registry
from repro.server import serve
from repro.service import ServiceConfig, ShardedEnforcerService
from repro.storage import read_wal
from repro.workloads import (
    MarketplaceConfig,
    build_marketplace_database,
    sharded_contract,
)

QUERY = "SELECT biz_id FROM listings"


def make_marketplace_enforcer() -> Enforcer:
    config = MarketplaceConfig()
    return Enforcer(
        build_marketplace_database(config),
        sharded_contract(config),
        registry=standard_registry(),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


def make_simple_enforcer() -> Enforcer:
    db = Database()
    db.load_table("items", ["iid"], [(1,), (2,), (3,)])
    policy = Policy.from_sql(
        "rate",
        "SELECT DISTINCT 'too fast' FROM users u, clock c "
        "WHERE u.uid = 7 AND u.ts > c.ts - 100 "
        "HAVING COUNT(DISTINCT u.ts) > 3",
        "rate limit for uid 7",
    )
    return Enforcer(
        db,
        [policy],
        registry=standard_registry(),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


class TestDurableService:
    def test_restart_continues_identically(self, tmp_path):
        config = ServiceConfig(
            shards=2, routing="modulo", data_dir=str(tmp_path)
        )
        service = ShardedEnforcerService(make_marketplace_enforcer(), config)
        first = [
            service.submit(QUERY, uid=uid).allowed
            for uid in (0, 1, 2, 3, 0, 1)
        ]
        assert all(first)
        service.drain()

        # An undurable twin processes the same queries without restarting.
        twin = ShardedEnforcerService(
            make_marketplace_enforcer(),
            ServiceConfig(shards=2, routing="modulo"),
        )
        for uid in (0, 1, 2, 3, 0, 1):
            twin.submit(QUERY, uid=uid)

        restarted = ShardedEnforcerService(
            make_marketplace_enforcer(), config
        )
        assert len(restarted.recovery_reports) == 2
        after = [
            restarted.submit(QUERY, uid=uid).allowed for uid in (0, 1, 0, 1)
        ]
        after_twin = [
            twin.submit(QUERY, uid=uid).allowed for uid in (0, 1, 0, 1)
        ]
        assert after == after_twin
        assert restarted.log_sizes() == twin.log_sizes()
        restarted.drain()
        twin.drain()

    def test_crash_without_drain_recovers_from_wal(self, tmp_path):
        config = ServiceConfig(shards=1, data_dir=str(tmp_path))
        service = ShardedEnforcerService(make_simple_enforcer(), config)
        for _ in range(5):
            service.submit("SELECT iid FROM items", uid=7)
        # No drain: simulated crash. Every decision is already journaled.
        restarted = ShardedEnforcerService(make_simple_enforcer(), config)
        report = restarted.recovery_reports[0]
        assert report.last_seq == 5
        assert report.replayed == 5
        # uid 7 exhausted its window before the crash; still rejected.
        assert not restarted.submit("SELECT iid FROM items", uid=7).allowed
        restarted.drain()
        service.drain()

    def test_checkpoint_cadence_truncates_the_wal(self, tmp_path):
        config = ServiceConfig(
            shards=1, data_dir=str(tmp_path), checkpoint_every=2
        )
        service = ShardedEnforcerService(make_simple_enforcer(), config)
        for _ in range(5):
            service.submit("SELECT iid FROM items", uid=1)
        status = service.durability_status()
        shard_status = status["per_shard"][0]
        assert shard_status["last_seq"] == 5
        # 5 queries at cadence 2 → checkpoints after 2 and 4; one record
        # (seq 5) remains in the live segment.
        assert shard_status["since_checkpoint"] == 1
        scan = read_wal(tmp_path / "shard-0" / "wal.jsonl")
        assert [r.get("seq") for r in scan.records] == [None, 5]
        service.drain()

    def test_drain_checkpoints_so_restart_replays_nothing(self, tmp_path):
        config = ServiceConfig(shards=1, data_dir=str(tmp_path))
        service = ShardedEnforcerService(make_simple_enforcer(), config)
        for _ in range(3):
            service.submit("SELECT iid FROM items", uid=1)
        service.drain()
        restarted = ShardedEnforcerService(make_simple_enforcer(), config)
        report = restarted.recovery_reports[0]
        assert report.checkpoint_seq == 3
        assert report.replayed == 0
        restarted.drain()

    def test_policy_change_survives_a_crash(self, tmp_path):
        config = ServiceConfig(shards=1, data_dir=str(tmp_path))
        service = ShardedEnforcerService(make_simple_enforcer(), config)
        service.add_policy(
            Policy.from_sql(
                "no-items",
                "SELECT DISTINCT 'items off limits' FROM schema s "
                "WHERE s.irid = 'items'",
            )
        )
        # Crash without drain: the broadcast checkpointed every shard.
        restarted = ShardedEnforcerService(make_simple_enforcer(), config)
        assert restarted.has_policy("no-items")
        assert not restarted.submit("SELECT iid FROM items", uid=1).allowed
        restarted.remove_policy("no-items")
        again = ShardedEnforcerService(make_simple_enforcer(), config)
        assert not again.has_policy("no-items")
        again.drain()
        restarted.drain()
        service.drain()

    def test_undurable_service_reports_disabled(self):
        service = ShardedEnforcerService(make_simple_enforcer())
        assert service.durability_status() == {"enabled": False}
        assert service.stats()["durable"] is False
        service.drain()


class TestHttpSurface:
    @pytest.fixture
    def server(self, tmp_path):
        httpd = serve(
            make_simple_enforcer(),
            port=0,
            config=ServiceConfig(
                shards=1, data_dir=str(tmp_path), checkpoint_every=2
            ),
        )
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        yield httpd
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)

    def request(self, server, method, path, body=None):
        connection = HTTPConnection(*server.server_address)
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        data = json.loads(response.read().decode())
        connection.close()
        return response.status, data

    def test_durability_endpoint(self, server):
        for _ in range(3):
            status, _ = self.request(
                server, "POST", "/query",
                {"sql": "SELECT iid FROM items", "uid": 1},
            )
            assert status == 200
        status, body = self.request(server, "GET", "/durability")
        assert status == 200
        assert body["enabled"] is True
        assert body["checkpoint_every"] == 2
        assert body["per_shard"][0]["last_seq"] == 3


class TestCli:
    def _populate(self, tmp_path, queries=4):
        config = ServiceConfig(shards=2, routing="modulo", data_dir=str(tmp_path))
        service = ShardedEnforcerService(make_marketplace_enforcer(), config)
        for uid in range(queries):
            service.submit(QUERY, uid=uid)
        service.drain()

    def _recover(self, argv):
        args = make_parser().parse_args(["recover", *argv])
        out = io.StringIO()
        return cmd_recover(args, out), out.getvalue()

    def test_serve_flags_wire_durability(self, tmp_path):
        from repro.cli import build_server

        args = make_parser().parse_args(
            [
                "serve", "--demo", "--port", "0",
                "--data-dir", str(tmp_path),
                "--checkpoint-every", "7", "--no-fsync",
            ]
        )
        server = build_server(args)
        config = server.service.config
        assert config.data_dir == str(tmp_path)
        assert config.checkpoint_every == 7
        assert config.wal_sync is False
        server.server_close()

    def test_recover_reports_each_shard(self, tmp_path):
        self._populate(tmp_path)
        code, out = self._recover([str(tmp_path)])
        assert code == 0
        assert "shard-0" in out and "shard-1" in out
        assert "checkpoint at seq" in out

    def test_recover_checkpoint_flag_truncates(self, tmp_path):
        self._populate(tmp_path)
        code, out = self._recover([str(tmp_path), "--checkpoint"])
        assert code == 0
        assert "WAL truncated" in out
        scan = read_wal(tmp_path / "shard-0" / "wal.jsonl")
        assert [r["type"] for r in scan.records] == ["header"]

    def test_recover_without_state_fails(self, tmp_path):
        code, out = self._recover([str(tmp_path)])
        assert code == 1
        assert "no durable state" in out
