"""Structural analysis tests: occurrences, ts components, clock predicates."""

import pytest

from repro.analysis import (
    CURRENT_TIME_PARAM,
    analyze_structure,
    substitute_current_time,
)
from repro.analysis.features import ts_joined_with_clock
from repro.engine import Database
from repro.log import standard_registry
from repro.sql import ast, parse_select


@pytest.fixture
def registry():
    return standard_registry()


@pytest.fixture
def db():
    db = Database()
    db.load_table("groups", ["uid", "gid"], [])
    db.load_table("d_patients", ["subject_id", "sex"], [])
    return db


def structure_of(sql, registry, db=None):
    return analyze_structure(parse_select(sql), registry, db)


class TestOccurrenceClassification:
    def test_log_vs_db_vs_clock(self, registry, db):
        s = structure_of(
            "SELECT 1 FROM users u, schema s, groups g, clock c "
            "WHERE u.ts = s.ts",
            registry,
            db,
        )
        assert s.log_occurrences == {"u": "users", "s": "schema"}
        assert s.db_tables == {"g": "groups"}
        assert s.clock_aliases == {"c"}

    def test_self_join_occurrences(self, registry):
        s = structure_of(
            "SELECT 1 FROM schema p1, schema p2 WHERE p1.ts = p2.ts", registry
        )
        assert s.log_occurrences == {"p1": "schema", "p2": "schema"}

    def test_subquery_captured(self, registry):
        s = structure_of(
            "SELECT 1 FROM (SELECT ts FROM users) x, schema s", registry
        )
        assert "x" in s.subqueries
        assert s.log_occurrences == {"s": "schema"}

    def test_duplicate_alias_rejected(self, registry):
        from repro.errors import PolicySyntaxError

        with pytest.raises(PolicySyntaxError):
            structure_of("SELECT 1 FROM users u, schema u", registry)


class TestTsComponents:
    def test_direct_join(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, schema s WHERE u.ts = s.ts", registry
        )
        assert s.ts_components["u"] == {"u", "s"}
        assert s.neighborhood("u") == {"s"}

    def test_transitive_join(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, schema s, provenance p "
            "WHERE u.ts = s.ts AND s.ts = p.ts",
            registry,
        )
        assert s.ts_components["u"] == {"u", "s", "p"}

    def test_disconnected_components(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, schema s, provenance p WHERE u.ts = s.ts",
            registry,
        )
        assert s.ts_components["p"] == {"p"}
        assert s.neighborhood("p") == set()

    def test_non_ts_join_does_not_connect(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, provenance p WHERE u.uid = p.otid", registry
        )
        assert s.neighborhood("u") == set()

    def test_clock_join_does_not_merge_log_components(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, schema s, clock c "
            "WHERE u.ts = c.ts AND s.ts = c.ts",
            registry,
        )
        # u and s both join the clock but not (directly) each other; the
        # log-only component analysis keeps them separate.
        assert s.neighborhood("u") == set()

    def test_ts_joined_with_clock(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, schema s, clock c "
            "WHERE u.ts = c.ts AND u.ts = s.ts",
            registry,
        )
        assert ts_joined_with_clock(s) == {"u", "s"}


class TestClockPredicates:
    def test_direct_form(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, clock c WHERE c.ts < 100", registry
        )
        (pred,) = s.clock_predicates
        assert pred.op == "<" and pred.bound == ast.Literal(100)

    def test_paper_window_form(self, registry):
        # u.ts > c.ts - 1209600  ⇒  c.ts < u.ts + 1209600
        s = structure_of(
            "SELECT 1 FROM users u, clock c WHERE u.ts > c.ts - 1209600",
            registry,
        )
        (pred,) = s.clock_predicates
        assert pred.op == "<"
        # bound = u.ts - (-(1209600))
        assert pred.bound == ast.BinaryOp(
            "-",
            ast.ColumnRef("u", "ts"),
            ast.UnaryOp("-", ast.Literal(1209600)),
        )

    def test_column_shift_on_clock(self, registry):
        # Unified policies put the window in a constants-table column.
        db = Database()
        db.load_table("consts", ["w"], [(100,)])
        s = structure_of(
            "SELECT 1 FROM users u, clock c, consts k "
            "WHERE u.ts > c.ts - k.w",
            registry,
            db,
        )
        (pred,) = s.clock_predicates
        assert pred.op == "<"
        assert pred.bound == ast.BinaryOp(
            "-",
            ast.ColumnRef("u", "ts"),
            ast.UnaryOp("-", ast.ColumnRef("k", "w")),
        )

    def test_flipped_comparison(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, clock c WHERE u.ts <= c.ts", registry
        )
        (pred,) = s.clock_predicates
        assert pred.op == ">="

    def test_equality_form(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, clock c WHERE c.ts = u.ts", registry
        )
        (pred,) = s.clock_predicates
        assert pred.op == "="

    def test_plus_shift_on_clock(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, clock c WHERE c.ts + 5 > u.ts", registry
        )
        (pred,) = s.clock_predicates
        assert pred.op == ">"
        assert pred.bound == ast.BinaryOp(
            "-", ast.ColumnRef("u", "ts"), ast.Literal(5)
        )

    def test_unsupported_inequality_yields_none(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, clock c WHERE c.ts <> u.ts", registry
        )
        assert s.clock_predicates is None

    def test_unsupported_nonlinear_yields_none(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, clock c WHERE c.ts * 2 > u.ts", registry
        )
        assert s.clock_predicates is None

    def test_clock_on_both_sides_yields_none(self, registry):
        s = structure_of(
            "SELECT 1 FROM users u, clock c, clock c2 WHERE c.ts = c2.ts",
            registry,
        )
        assert s.clock_predicates is None

    def test_no_clock_means_empty_list(self, registry):
        s = structure_of("SELECT 1 FROM users u WHERE u.uid = 1", registry)
        assert s.clock_predicates == []


class TestCurrentTimeParam:
    def test_substitute(self):
        expr = ast.BinaryOp("<", CURRENT_TIME_PARAM, ast.Literal(5))
        substituted = substitute_current_time(expr, 42)
        assert substituted == ast.BinaryOp("<", ast.Literal(42), ast.Literal(5))

    def test_substitute_deep(self):
        q = parse_select("SELECT 1 FROM users u WHERE u.ts > 0")
        q2 = q.replace(
            where=ast.BinaryOp(">", CURRENT_TIME_PARAM, ast.Literal(0))
        )
        out = substitute_current_time(q2, 7)
        assert ast.Literal(7) in list(out.walk())

    def test_unsubstituted_param_fails_loudly(self):
        from repro.engine import Database, Engine
        from repro.errors import BindError

        q = ast.Select(
            items=(ast.SelectItem(CURRENT_TIME_PARAM),),
            from_items=(ast.TableRef("t"),),
        )
        db = Database()
        db.load_table("t", ["a"], [(1,)])
        with pytest.raises(BindError):
            Engine(db).execute(q)
