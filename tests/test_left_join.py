"""LEFT OUTER JOIN: parsing, execution, lineage, and enforcement."""

import pytest

from repro.engine import Database, Engine
from repro.errors import ParseError
from repro.sql import ast, parse, parse_select, print_query


@pytest.fixture
def db():
    db = Database()
    db.load_table("emp", ["id", "name", "dept"], [
        (1, "ann", 10), (2, "bob", 20), (3, "cal", None), (4, "dee", 99),
    ])
    db.load_table("dept", ["did", "dname"], [(10, "eng"), (20, "ops")])
    return db


@pytest.fixture
def engine(db):
    return Engine(db)


class TestParsing:
    def test_left_join_parses_to_joinref(self):
        q = parse_select("SELECT 1 FROM a LEFT JOIN b ON a.x = b.x")
        (item,) = q.from_items
        assert isinstance(item, ast.JoinRef)
        assert item.kind == "left"

    def test_left_outer_join_synonym(self):
        q = parse_select("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert isinstance(q.from_items[0], ast.JoinRef)

    def test_chained_left_joins_nest(self):
        q = parse_select(
            "SELECT 1 FROM a LEFT JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        (outer,) = q.from_items
        assert isinstance(outer, ast.JoinRef)
        assert isinstance(outer.left, ast.JoinRef)
        assert [leaf.binding_name() for leaf in outer.leaf_items()] == [
            "a",
            "b",
            "c",
        ]

    def test_right_join_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM a OUTER JOIN b ON a.x = b.x")

    def test_roundtrip(self):
        sql = "SELECT a.x FROM a LEFT JOIN b p ON a.x = p.x WHERE a.y = 1"
        tree = parse(sql)
        assert parse(print_query(tree)) == tree


class TestExecution:
    def test_matched_and_padded_rows(self, engine):
        result = engine.execute(
            "SELECT e.name, d.dname FROM emp e LEFT JOIN dept d "
            "ON e.dept = d.did"
        )
        assert sorted(result.rows, key=str) == sorted(
            [("ann", "eng"), ("bob", "ops"), ("cal", None), ("dee", None)],
            key=str,
        )

    def test_null_join_key_pads(self, engine):
        result = engine.execute(
            "SELECT e.name, d.did FROM emp e LEFT JOIN dept d "
            "ON e.dept = d.did WHERE e.id = 3"
        )
        assert result.rows == [("cal", None)]

    def test_where_on_right_side_applies_after_join(self, engine):
        # IS NULL after a left join finds the unmatched rows
        result = engine.execute(
            "SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.did "
            "WHERE d.did IS NULL"
        )
        assert sorted(result.rows) == [("cal",), ("dee",)]

    def test_where_equality_on_right_removes_padded(self, engine):
        result = engine.execute(
            "SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.did "
            "WHERE d.dname = 'eng'"
        )
        assert result.rows == [("ann",)]

    def test_left_join_then_comma_join(self, engine):
        result = engine.execute(
            "SELECT e.name, x.id FROM emp e LEFT JOIN dept d "
            "ON e.dept = d.did, emp x WHERE x.id = e.id AND d.did IS NULL"
        )
        assert sorted(result.rows) == [("cal", 3), ("dee", 4)]

    def test_aggregation_over_left_join(self, engine):
        result = engine.execute(
            "SELECT d.dname, COUNT(e.id) FROM emp e LEFT JOIN dept d "
            "ON e.dept = d.did GROUP BY d.dname"
        )
        assert sorted(result.rows, key=str) == sorted(
            [("eng", 1), ("ops", 1), (None, 2)], key=str
        )

    def test_chained_left_joins_execute(self, engine, db):
        db.load_table("site", ["dname", "city"], [("eng", "sea")])
        engine.invalidate_plans()
        result = engine.execute(
            "SELECT e.name, s.city FROM emp e "
            "LEFT JOIN dept d ON e.dept = d.did "
            "LEFT JOIN site s ON d.dname = s.dname "
            "WHERE e.id <= 2"
        )
        assert sorted(result.rows) == [("ann", "sea"), ("bob", None)]

    def test_matches_inner_join_plus_antijoin(self, engine):
        left = engine.execute(
            "SELECT e.id, d.did FROM emp e LEFT JOIN dept d ON e.dept = d.did"
        ).rows
        inner = engine.execute(
            "SELECT e.id, d.did FROM emp e, dept d WHERE e.dept = d.did"
        ).rows
        padded = [row for row in left if row[1] is None]
        assert sorted(r for r in left if r[1] is not None) == sorted(inner)
        assert {row[0] for row in padded} == {3, 4}


class TestLineage:
    def test_matched_row_lineage_includes_both(self, engine):
        result = engine.execute(
            "SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.did "
            "WHERE e.id = 1",
            lineage=True,
        )
        assert result.lineage_tables() == {"emp", "dept"}

    def test_padded_row_lineage_is_left_only(self, engine):
        result = engine.execute(
            "SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.did "
            "WHERE e.id = 4",
            lineage=True,
        )
        assert result.lineage_tables() == {"emp"}


class TestEnforcementWithLeftJoins:
    def test_schema_log_covers_join_condition(self, db):
        from repro.log import SchemaAnalyzer

        rows = SchemaAnalyzer(db).analyze(
            parse("SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.did")
        )
        relations = {row[1] for row in rows}
        assert relations == {"emp", "dept"}

    def test_join_policy_catches_left_join(self, db):
        from repro.core import Enforcer, Policy

        no_joins = Policy.from_sql(
            "no-emp-joins",
            "SELECT DISTINCT 'emp may not be joined' FROM schema s1, schema s2 "
            "WHERE s1.ts = s2.ts AND s1.irid = 'emp' AND s2.irid <> 'emp'",
        )
        enforcer = Enforcer(db, [no_joins])
        assert enforcer.submit("SELECT name FROM emp", uid=1).allowed
        decision = enforcer.submit(
            "SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.did",
            uid=1,
        )
        assert not decision.allowed

    def test_provenance_of_left_join_query(self, db):
        from repro.core import Enforcer, Policy
        from repro.workloads import k_anonymity

        enforcer = Enforcer(db, [k_anonymity("emp", k=2)])
        decision = enforcer.submit(
            "SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.did "
            "WHERE e.id = 1",
            uid=1,
        )
        assert not decision.allowed  # single emp tuple backs the output
