"""CLI tests: CSV loading, policy files, check/shell/demo commands."""

import io

import pytest

from repro.cli import (
    build_enforcer,
    cmd_check,
    cmd_demo,
    cmd_shell,
    load_csv_table,
    load_policy_file,
    main,
    make_parser,
)
from repro.engine import Database
from repro.errors import ReproError


@pytest.fixture
def workspace(tmp_path):
    (tmp_path / "listings.csv").write_text(
        "biz_id,name,stars,active\n"
        "1,alpha,4.5,true\n"
        "2,beta,3.0,false\n"
        "3,gamma,,true\n",
        encoding="utf-8",
    )
    (tmp_path / "owners.csv").write_text(
        "biz_id,owner\n1,ann\n2,bob\n", encoding="utf-8"
    )
    (tmp_path / "no-listing-joins.sql").write_text(
        "SELECT DISTINCT 'listings may not be joined' "
        "FROM schema s1, schema s2 "
        "WHERE s1.ts = s2.ts AND s1.irid = 'listings' "
        "AND s2.irid <> 'listings'",
        encoding="utf-8",
    )
    return tmp_path


class TestLoading:
    def test_csv_types(self, workspace):
        db = Database()
        name = load_csv_table(db, workspace / "listings.csv")
        assert name == "listings"
        rows = db.table("listings").rows()
        assert rows[0] == (1, "alpha", 4.5, True)
        assert rows[1][3] is False
        assert rows[2][2] is None  # empty cell = NULL

    def test_empty_csv_rejected(self, tmp_path):
        empty = tmp_path / "x.csv"
        empty.write_text("", encoding="utf-8")
        with pytest.raises(ReproError):
            load_csv_table(Database(), empty)

    def test_policy_file(self, workspace):
        policy = load_policy_file(workspace / "no-listing-joins.sql")
        assert policy.name == "no-listing-joins"
        assert "joined" in policy.message

    def test_build_enforcer(self, workspace):
        enforcer = build_enforcer(
            [str(workspace / "listings.csv"), str(workspace / "owners.csv")],
            [str(workspace / "no-listing-joins.sql")],
        )
        assert enforcer.database.has_table("listings")
        assert len(enforcer.policies) == 1


class TestCheckCommand:
    def _args(self, workspace, **overrides):
        argv = [
            "check",
            "--data",
            str(workspace / "listings.csv"),
            "--data",
            str(workspace / "owners.csv"),
            "--policy",
            str(workspace / "no-listing-joins.sql"),
        ]
        for key, value in overrides.items():
            argv.extend([f"--{key}", value] if value is not True else [f"--{key}"])
        return make_parser().parse_args(argv)

    def test_allowed_query(self, workspace):
        out = io.StringIO()
        args = self._args(workspace, query="SELECT name FROM listings")
        assert cmd_check(args, out) == 0
        assert "ALLOWED (3 rows)" in out.getvalue()

    def test_rejected_query_sets_exit_code(self, workspace):
        out = io.StringIO()
        args = self._args(
            workspace,
            query="SELECT l.name, o.owner FROM listings l, owners o "
            "WHERE l.biz_id = o.biz_id",
        )
        assert cmd_check(args, out) == 1
        assert "REJECTED" in out.getvalue()

    def test_explain_flag(self, workspace):
        out = io.StringIO()
        args = self._args(
            workspace,
            query="SELECT l.name, o.owner FROM listings l, owners o "
            "WHERE l.biz_id = o.biz_id",
            explain=True,
        )
        cmd_check(args, out)
        assert "evidence" in out.getvalue()

    def test_query_file(self, workspace):
        (workspace / "queries.sql").write_text(
            "SELECT name FROM listings; SELECT owner FROM owners",
            encoding="utf-8",
        )
        out = io.StringIO()
        args = make_parser().parse_args(
            [
                "check",
                "--data",
                str(workspace / "listings.csv"),
                "--data",
                str(workspace / "owners.csv"),
                "--policy",
                str(workspace / "no-listing-joins.sql"),
                "--query-file",
                str(workspace / "queries.sql"),
            ]
        )
        assert cmd_check(args, out) == 0
        assert out.getvalue().count("ALLOWED") == 2

    def test_bad_sql_reports_error(self, workspace):
        out = io.StringIO()
        args = self._args(workspace, query="SELEKT nope")
        assert cmd_check(args, out) == 2
        assert "ERROR" in out.getvalue()


class TestShellCommand:
    def test_scripted_session(self, workspace):
        out = io.StringIO()
        script = iter(
            [
                "SELECT name FROM listings",
                "SELECT l.name FROM listings l, owners o WHERE l.biz_id = o.biz_id",
                ":explain",
                ":log",
                ":policies",
                ":quit",
            ]
        )
        args = make_parser().parse_args(
            [
                "shell",
                "--data",
                str(workspace / "listings.csv"),
                "--data",
                str(workspace / "owners.csv"),
                "--policy",
                str(workspace / "no-listing-joins.sql"),
            ]
        )
        code = cmd_shell(args, out, input_fn=lambda prompt: next(script))
        assert code == 0
        text = out.getvalue()
        assert "ALLOWED" in text and "REJECTED" in text
        assert "evidence" in text
        assert "no-listing-joins:" in text

    def test_eof_exits(self, workspace):
        out = io.StringIO()
        args = make_parser().parse_args(
            ["shell", "--data", str(workspace / "listings.csv")]
        )

        def raise_eof(prompt):
            raise EOFError

        assert cmd_shell(args, out, input_fn=raise_eof) == 0


class TestDemoCommand:
    def test_demo_runs(self):
        out = io.StringIO()
        args = make_parser().parse_args(["demo", "--patients", "60"])
        assert cmd_demo(args, out) == 0
        text = out.getvalue()
        assert "W4 uid=1" in text
        assert "REJECTED" in text


class TestMain:
    def test_main_dispatches(self, workspace):
        code = main(
            [
                "check",
                "--data",
                str(workspace / "listings.csv"),
                "--policy",
                str(workspace / "no-listing-joins.sql"),
                "--query",
                "SELECT name FROM listings",
            ]
        )
        assert code == 0


class TestReportCommand:
    def test_report_bundles_results(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig1_uid0.txt").write_text("FIG1 TABLE\n", encoding="utf-8")
        (results / "extra.txt").write_text("EXTRA TABLE\n", encoding="utf-8")
        out = io.StringIO()
        args = make_parser().parse_args(
            ["report", "--results", str(results)]
        )
        from repro.cli import cmd_report

        assert cmd_report(args, out) == 0
        text = out.getvalue()
        assert "FIG1 TABLE" in text and "EXTRA TABLE" in text
        assert text.index("FIG1") < text.index("EXTRA")

    def test_report_writes_output_file(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig4.txt").write_text("FIG4\n", encoding="utf-8")
        target = tmp_path / "REPORT.txt"
        out = io.StringIO()
        args = make_parser().parse_args(
            ["report", "--results", str(results), "--output", str(target)]
        )
        from repro.cli import cmd_report

        cmd_report(args, out)
        assert "FIG4" in target.read_text(encoding="utf-8")

    def test_report_missing_dir(self, tmp_path):
        out = io.StringIO()
        args = make_parser().parse_args(
            ["report", "--results", str(tmp_path / "nope")]
        )
        from repro.cli import cmd_report

        assert cmd_report(args, out) == 1


class TestServeCommand:
    def test_build_server_wires_flags_into_service(self, workspace):
        from repro.cli import build_server

        args = make_parser().parse_args(
            [
                "serve",
                "--data", str(workspace / "listings.csv"),
                "--policy", str(workspace / "no-listing-joins.sql"),
                "--port", "0",
                "--shards", "3",
                "--queue-depth", "7",
                "--workers", "2",
            ]
        )
        server = build_server(args)
        try:
            service = server.service
            assert service.config.shards == 3
            assert service.config.queue_depth == 7
            assert service.config.workers == 2
            assert len(service.shards) == 3
            [entry] = service.policies()
            assert entry["name"] == "no-listing-joins"
        finally:
            server.server_close()

    def test_demo_flag_serves_marketplace(self):
        from repro.cli import build_server

        args = make_parser().parse_args(
            ["serve", "--demo", "--port", "0", "--shards", "2"]
        )
        server = build_server(args)
        try:
            names = {entry["name"] for entry in server.service.policies()}
            assert "no-blending" in names
            assert any(name.startswith("free-tier-u") for name in names)
            decision = server.service.submit(
                "SELECT name FROM listings WHERE biz_id = 1", uid=1
            )
            assert decision.allowed
        finally:
            server.server_close()
