"""Deeper fSchema static-analysis coverage."""

import pytest

from repro.engine import Database
from repro.errors import BindError
from repro.log import SchemaAnalyzer
from repro.sql import parse


@pytest.fixture
def db():
    db = Database()
    db.load_table("t", ["a", "b", "c"], [])
    db.load_table("u", ["a", "d"], [])
    return db


def rows_for(db, sql):
    return SchemaAnalyzer(db).analyze(parse(sql))


class TestNonOutputReferences:
    def test_group_by_columns_recorded(self, db):
        rows = rows_for(db, "SELECT COUNT(*) FROM t GROUP BY t.b")
        assert (None, "t", "b", False) in rows

    def test_order_by_columns_recorded(self, db):
        rows = rows_for(db, "SELECT t.a FROM t ORDER BY t.c")
        assert (None, "t", "c", False) in rows

    def test_having_columns_recorded(self, db):
        rows = rows_for(
            db, "SELECT t.b FROM t GROUP BY t.b HAVING MAX(t.c) > 1"
        )
        assert (None, "t", "c", False) in rows

    def test_distinct_on_columns_recorded(self, db):
        rows = rows_for(db, "SELECT DISTINCT ON (t.c), t.a FROM t")
        assert (None, "t", "c", False) in rows

    def test_subquery_where_columns_recorded(self, db):
        rows = rows_for(
            db, "SELECT x.a FROM (SELECT a FROM t WHERE t.b = 'q') x"
        )
        assert (None, "t", "b", False) in rows


class TestAggregatePropagation:
    def test_agg_flag_through_subquery(self, db):
        rows = rows_for(
            db,
            "SELECT x.n FROM (SELECT COUNT(t.a) AS n FROM t) x",
        )
        assert ("n", "t", "a", True) in rows

    def test_agg_applied_outside_subquery(self, db):
        rows = rows_for(
            db,
            "SELECT MAX(x.a) AS m FROM (SELECT a FROM t) x",
        )
        assert ("m", "t", "a", True) in rows

    def test_non_agg_column_not_flagged(self, db):
        rows = rows_for(db, "SELECT t.a, COUNT(t.b) FROM t GROUP BY t.a")
        assert ("a", "t", "a", False) in rows
        assert ("count", "t", "b", True) in rows

    def test_agg_argument_expression(self, db):
        rows = rows_for(db, "SELECT SUM(t.a + t.c) AS s FROM t")
        assert ("s", "t", "a", True) in rows
        assert ("s", "t", "c", True) in rows


class TestNaming:
    def test_alias_becomes_ocid(self, db):
        rows = rows_for(db, "SELECT t.a AS renamed FROM t")
        assert ("renamed", "t", "a", False) in rows

    def test_positional_name_for_expression(self, db):
        rows = rows_for(db, "SELECT t.a + 1 FROM t")
        assert ("col1", "t", "a", False) in rows

    def test_case_expression_sources(self, db):
        rows = rows_for(
            db,
            "SELECT CASE WHEN t.a > 0 THEN t.b ELSE t.c END AS pick FROM t",
        )
        derived = {(r[1], r[2]) for r in rows if r[0] == "pick"}
        assert derived == {("t", "a"), ("t", "b"), ("t", "c")}


class TestMultiRelation:
    def test_union_records_both_sides(self, db):
        rows = rows_for(db, "SELECT a FROM t UNION SELECT d FROM u")
        assert ("a", "t", "a", False) in rows
        assert ("d", "u", "d", False) in rows

    def test_self_join_records_single_relation(self, db):
        rows = rows_for(
            db,
            "SELECT p.a FROM t p, t q WHERE p.a = q.a",
        )
        assert {r[1] for r in rows} == {"t"}

    def test_three_way_join(self, db):
        rows = rows_for(
            db,
            "SELECT t.a FROM t, u, t z WHERE t.a = u.a AND u.a = z.a",
        )
        assert {r[1] for r in rows} == {"t", "u"}

    def test_unknown_column_raises(self, db):
        with pytest.raises(BindError):
            rows_for(db, "SELECT t.zzz FROM t")

    def test_ambiguous_unqualified_raises(self, db):
        with pytest.raises(BindError):
            rows_for(db, "SELECT a FROM t, u")

    def test_deterministic_ordering(self, db):
        sql = "SELECT t.b, t.a FROM t WHERE t.c > 0"
        assert rows_for(db, sql) == rows_for(db, sql)
        rows = rows_for(db, sql)
        # non-output rows (ocid None) sort last
        assert rows[-1][0] is None
