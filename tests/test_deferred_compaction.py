"""Deferred (every-k-queries) compaction: soundness and effect."""

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.workloads import PolicyParams, make_policy, repeat_query, run_stream


def make_enforcer(db, every, params):
    return Enforcer(
        db,
        [make_policy("P6", params), make_policy("P1", params)],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(compaction_every=every),
    )


@pytest.fixture
def params():
    return PolicyParams(p6_window=100, p6_max_uses=3, p1_window=100, p1_max_users=2)


class TestDeferredCompaction:
    def test_decisions_unchanged(self, mimic_db, params):
        sql = "SELECT * FROM d_patients WHERE subject_id = 7"
        eager = make_enforcer(mimic_db.clone(), 1, params)
        deferred = make_enforcer(mimic_db.clone(), 7, params)
        for uid in [1, 1, 1, 1, 2, 1, 1, 3, 1, 1, 1, 2, 1, 1]:
            lhs = eager.submit(sql, uid=uid, execute=False)
            rhs = deferred.submit(sql, uid=uid, execute=False)
            assert lhs.allowed == rhs.allowed

    def test_log_shrinks_at_compaction_points(self, mimic_db, params):
        enforcer = make_enforcer(mimic_db, 5, params)
        sql = "SELECT * FROM d_patients WHERE subject_id = 7"
        sizes = []
        for index in range(25):
            decision = enforcer.submit(sql, uid=(index % 3) + 4, execute=False)
            sizes.append(enforcer.store.total_live_size())
        # Compaction fires at queries 5, 10, 15, ... (indices 4, 9, 14, ...).
        # Between points the log grows monotonically...
        assert sizes[5] < sizes[8]
        assert sizes[10] < sizes[13]
        # ...and each compaction point prunes back below the interval peak.
        assert sizes[9] < sizes[8]
        assert sizes[14] < sizes[13]
        # Overall the log stays bounded (windows are 10 queries long).
        assert max(sizes[10:]) <= max(sizes[:10]) + 6

    def test_compaction_runs_less_often(self, mimic_db, params):
        deferred = make_enforcer(mimic_db.clone(), 10, params)
        eager = make_enforcer(mimic_db.clone(), 1, params)
        sql = "SELECT * FROM d_patients WHERE subject_id = 7"
        run_stream(deferred, repeat_query(sql, 4, 20), execute=False)
        run_stream(eager, repeat_query(sql, 4, 20), execute=False)
        deferred_marks = sum(
            1
            for entry in deferred.metrics_log.entries
            if "compact_mark" in entry.seconds
        )
        eager_marks = sum(
            1
            for entry in eager.metrics_log.entries
            if "compact_mark" in entry.seconds
        )
        assert deferred_marks == 2
        assert eager_marks == 20

    def test_interval_one_is_default_behavior(self, mimic_db, params):
        enforcer = make_enforcer(mimic_db, 1, params)
        sql = "SELECT * FROM d_patients WHERE subject_id = 7"
        run_stream(enforcer, repeat_query(sql, 4, 3), execute=False)
        marks = sum(
            1
            for entry in enforcer.metrics_log.entries
            if "compact_mark" in entry.seconds
        )
        assert marks == 3

    def test_windowed_policy_still_correct_across_deferral(self, mimic_db, params):
        """A violation that matures *between* compaction points is caught."""
        enforcer = make_enforcer(mimic_db, 9, params)
        sql = "SELECT * FROM d_patients WHERE subject_id = 7"
        # P6: max 3 uses of the same tuple per 100ms (10 queries)
        for _ in range(3):
            assert enforcer.submit(sql, uid=1, execute=False).allowed
        assert not enforcer.submit(sql, uid=1, execute=False).allowed
