"""Differential testing: our engine vs SQLite on a shared SQL fragment.

SQLite (stdlib ``sqlite3``) acts as the reference oracle. The generated
fragment is restricted to constructs with identical semantics in both
engines: integer data (+ NULL), comparisons, AND/OR/NOT, IS NULL,
``+ - *`` arithmetic, inner and LEFT joins, DISTINCT, GROUP BY / HAVING
with COUNT/SUM/MIN/MAX, and the set operations. Excluded by design:
division (SQLite truncates integers), LIKE (SQLite is case-insensitive),
ORDER BY ties/NULL placement, and floats (formatting).

Results are compared as row multisets.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Engine

int_or_null = st.one_of(st.integers(min_value=-4, max_value=4), st.none())
rows_r = st.lists(st.tuples(int_or_null, int_or_null), max_size=7)
rows_s = st.lists(st.tuples(int_or_null, int_or_null), max_size=7)


def build_engines(r_rows, s_rows):
    db = Database()
    db.load_table("r", ["a", "b"], r_rows)
    db.load_table("s", ["a", "c"], s_rows)
    engine = Engine(db)

    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
    connection.execute("CREATE TABLE s (a INTEGER, c INTEGER)")
    connection.executemany("INSERT INTO r VALUES (?, ?)", r_rows)
    connection.executemany("INSERT INTO s VALUES (?, ?)", s_rows)
    return engine, connection


def both(engine, connection, sql):
    ours = engine.execute(sql).rows
    theirs = [tuple(row) for row in connection.execute(sql).fetchall()]
    return sorted(ours, key=repr), sorted(theirs, key=repr)


comparisons = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
constants = st.integers(min_value=-3, max_value=3)
r_columns = st.sampled_from(["r.a", "r.b"])


@st.composite
def predicates(draw):
    kind = draw(st.integers(min_value=0, max_value=4))
    column = draw(r_columns)
    if kind == 0:
        return f"{column} {draw(comparisons)} {draw(constants)}"
    if kind == 1:
        return f"{column} IS NULL"
    if kind == 2:
        return f"{column} IS NOT NULL"
    if kind == 3:
        left = draw(predicates())
        right = draw(predicates())
        op = draw(st.sampled_from(["AND", "OR"]))
        return f"({left} {op} {right})"
    return f"NOT ({draw(predicates())})"


class TestFilters:
    @settings(max_examples=60, deadline=None)
    @given(rows_r, predicates())
    def test_where(self, r_rows, predicate):
        engine, connection = build_engines(r_rows, [])
        sql = f"SELECT r.a, r.b FROM r WHERE {predicate}"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r)
    def test_arithmetic_projection(self, r_rows):
        engine, connection = build_engines(r_rows, [])
        sql = "SELECT r.a + r.b, r.a - 2, r.a * r.b FROM r"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r)
    def test_distinct(self, r_rows):
        engine, connection = build_engines(r_rows, [])
        ours, theirs = both(engine, connection, "SELECT DISTINCT r.a FROM r")
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r)
    def test_in_list(self, r_rows):
        engine, connection = build_engines(r_rows, [])
        sql = "SELECT r.b FROM r WHERE r.a IN (1, 2, 3)"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r)
    def test_case_expression(self, r_rows):
        engine, connection = build_engines(r_rows, [])
        sql = (
            "SELECT CASE WHEN r.a > 0 THEN 1 WHEN r.a < 0 THEN -1 ELSE 0 END "
            "FROM r WHERE r.a IS NOT NULL"
        )
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs


class TestJoins:
    @settings(max_examples=60, deadline=None)
    @given(rows_r, rows_s)
    def test_inner_join(self, r_rows, s_rows):
        engine, connection = build_engines(r_rows, s_rows)
        sql = "SELECT r.a, r.b, s.c FROM r, s WHERE r.a = s.a"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=60, deadline=None)
    @given(rows_r, rows_s)
    def test_left_join(self, r_rows, s_rows):
        engine, connection = build_engines(r_rows, s_rows)
        sql = "SELECT r.a, s.c FROM r LEFT JOIN s ON r.a = s.a"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r, rows_s)
    def test_left_join_with_where(self, r_rows, s_rows):
        engine, connection = build_engines(r_rows, s_rows)
        sql = (
            "SELECT r.a FROM r LEFT JOIN s ON r.a = s.a WHERE s.c IS NULL"
        )
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r, rows_s)
    def test_non_equi_join(self, r_rows, s_rows):
        engine, connection = build_engines(r_rows, s_rows)
        sql = "SELECT r.a, s.a FROM r, s WHERE r.a < s.a"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=30, deadline=None)
    @given(rows_r)
    def test_self_join(self, r_rows):
        engine, connection = build_engines(r_rows, [])
        sql = (
            "SELECT p.a, q.b FROM r p, r q WHERE p.a = q.a AND p.b < q.b"
        )
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs


class TestAggregation:
    @settings(max_examples=60, deadline=None)
    @given(rows_r)
    def test_group_by_counts(self, r_rows):
        engine, connection = build_engines(r_rows, [])
        sql = (
            "SELECT r.a, COUNT(*), COUNT(r.b), COUNT(DISTINCT r.b) "
            "FROM r GROUP BY r.a"
        )
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=60, deadline=None)
    @given(rows_r)
    def test_scalar_aggregates(self, r_rows):
        engine, connection = build_engines(r_rows, [])
        sql = "SELECT COUNT(*), SUM(r.a), MIN(r.a), MAX(r.a) FROM r"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=60, deadline=None)
    @given(rows_r, st.integers(min_value=0, max_value=3))
    def test_having(self, r_rows, threshold):
        engine, connection = build_engines(r_rows, [])
        sql = (
            f"SELECT r.a FROM r GROUP BY r.a HAVING COUNT(*) > {threshold}"
        )
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r)
    def test_having_on_empty_scalar_group(self, r_rows):
        engine, connection = build_engines(r_rows, [])
        sql = "SELECT COUNT(*) FROM r WHERE r.a > 99 HAVING COUNT(*) > 0"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r, rows_s)
    def test_aggregate_over_join(self, r_rows, s_rows):
        engine, connection = build_engines(r_rows, s_rows)
        sql = (
            "SELECT r.a, COUNT(s.c) FROM r, s WHERE r.a = s.a GROUP BY r.a"
        )
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs


class TestSetOps:
    @settings(max_examples=40, deadline=None)
    @given(rows_r, rows_s)
    def test_union(self, r_rows, s_rows):
        engine, connection = build_engines(r_rows, s_rows)
        sql = "SELECT r.a FROM r UNION SELECT s.a FROM s"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r, rows_s)
    def test_union_all(self, r_rows, s_rows):
        engine, connection = build_engines(r_rows, s_rows)
        sql = "SELECT r.a FROM r UNION ALL SELECT s.a FROM s"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r, rows_s)
    def test_except(self, r_rows, s_rows):
        engine, connection = build_engines(r_rows, s_rows)
        sql = "SELECT r.a FROM r EXCEPT SELECT s.a FROM s"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(rows_r, rows_s)
    def test_intersect(self, r_rows, s_rows):
        engine, connection = build_engines(r_rows, s_rows)
        sql = "SELECT r.a FROM r INTERSECT SELECT s.a FROM s"
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs


class TestSubqueries:
    @settings(max_examples=40, deadline=None)
    @given(rows_r)
    def test_from_subquery(self, r_rows):
        engine, connection = build_engines(r_rows, [])
        sql = (
            "SELECT x.a, COUNT(*) FROM "
            "(SELECT r.a AS a FROM r WHERE r.b IS NOT NULL) x GROUP BY x.a"
        )
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs

    @settings(max_examples=30, deadline=None)
    @given(rows_r, rows_s)
    def test_join_with_aggregated_subquery(self, r_rows, s_rows):
        engine, connection = build_engines(r_rows, s_rows)
        sql = (
            "SELECT r.b, t.n FROM r, "
            "(SELECT s.a AS a, COUNT(*) AS n FROM s GROUP BY s.a) t "
            "WHERE r.a = t.a"
        )
        ours, theirs = both(engine, connection, sql)
        assert ours == theirs
