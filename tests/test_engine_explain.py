"""Engine.explain: the physical-plan printer."""

import pytest

from repro.engine import Database, Engine


@pytest.fixture
def engine():
    db = Database()
    db.load_table("r", ["a", "b"], [(1, 2)])
    db.load_table("s", ["a", "c"], [(1, 3)])
    return Engine(db)


class TestExplain:
    def test_scan_and_project(self, engine):
        text = engine.explain("SELECT a FROM r")
        assert "Output [a]" in text
        assert "Project" in text
        assert "Scan r" in text

    def test_index_scan_chosen_for_equality(self, engine):
        text = engine.explain("SELECT * FROM r WHERE a = 1")
        assert "IndexScan r" in text
        assert "Scan r" not in text.replace("IndexScan r", "")

    def test_filter_for_range(self, engine):
        text = engine.explain("SELECT * FROM r WHERE a > 1")
        assert "Filter" in text

    def test_hash_join_chosen_for_equi_join(self, engine):
        text = engine.explain("SELECT r.a FROM r, s WHERE r.a = s.a")
        assert "HashJoin (1 keys)" in text

    def test_nested_loop_for_cross_product(self, engine):
        text = engine.explain("SELECT 1 FROM r, s")
        assert "NestedLoop (product)" in text

    def test_left_join(self, engine):
        text = engine.explain(
            "SELECT r.a FROM r LEFT JOIN s ON r.a = s.a"
        )
        assert "LeftJoin (pad 2)" in text

    def test_group(self, engine):
        text = engine.explain("SELECT a, COUNT(*) FROM r GROUP BY a")
        assert "Group (1 keys, 1 aggregates)" in text

    def test_distinct_and_distinct_on(self, engine):
        assert "Distinct" in engine.explain("SELECT DISTINCT a FROM r")
        assert "DistinctOn (1 keys)" in engine.explain(
            "SELECT DISTINCT ON (a), r.b FROM r"
        )

    def test_union(self, engine):
        text = engine.explain("SELECT a FROM r UNION ALL SELECT a FROM s")
        assert "Union All" in text

    def test_order_limit(self, engine):
        text = engine.explain("SELECT a FROM r ORDER BY a LIMIT 3")
        assert "Order (1 keys)" in text
        assert "Limit 3" in text

    def test_indentation_reflects_tree(self, engine):
        text = engine.explain("SELECT r.a FROM r, s WHERE r.a = s.a")
        lines = text.splitlines()
        join_depth = next(
            line for line in lines if "HashJoin" in line
        ).index("H")
        scan_depths = [
            line.index("Scan") if "Scan" in line and "Index" not in line
            else line.index("IndexScan")
            for line in lines
            if "Scan" in line
        ]
        assert all(depth > join_depth for depth in scan_depths)

    def test_no_from(self, engine):
        assert "Values (1 rows)" in engine.explain("SELECT 1")
