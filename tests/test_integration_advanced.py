"""Integration tests for tricky feature interactions.

Covers combinations the unit tests don't reach: unified *windowed*
policies under compaction, retain-all policies in long streams, custom
log registries end-to-end, and policy sets mixing every classification.
"""

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.log import (
    STANDARD_LOG_FUNCTIONS,
    LogFunction,
    LogRegistry,
    SimulatedClock,
)


def build_db():
    db = Database()
    db.load_table("items", ["k", "v"], [(i, i * 10) for i in range(10)])
    db.load_table(
        "groups", ["uid", "gid"], [(1, "x"), (2, "x"), (3, "y")]
    )
    return db


def rate_policy(uid, limit=2, window=100):
    return Policy.from_sql(
        f"rate-{uid}",
        f"SELECT DISTINCT 'user {uid} rate limited' FROM users u, clock c "
        f"WHERE u.uid = {uid} AND u.ts > c.ts - {window} "
        f"HAVING COUNT(DISTINCT u.ts) > {limit}",
    )


class TestUnifiedWindowedPolicies:
    """Unified policies that are also time-dependent: the witness must
    join the generated constants table and still compact correctly."""

    @pytest.fixture
    def enforcer(self):
        return Enforcer(
            build_db(),
            [rate_policy(uid) for uid in (1, 2, 3)],
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(),
        )

    def test_policies_unified(self, enforcer):
        unified = [r for r in enforcer.runtime_policies() if r.member_names]
        assert len(unified) == 1 and len(unified[0].member_names) == 3

    def test_unified_policy_has_witness(self, enforcer):
        (unified,) = [r for r in enforcer.runtime_policies() if r.member_names]
        assert not unified.time_independent
        assert unified.witness is not None
        assert "users" in unified.witness.relations()

    def test_per_member_enforcement(self, enforcer):
        for _ in range(2):
            assert enforcer.submit("SELECT * FROM items", uid=1).allowed
        decision = enforcer.submit("SELECT * FROM items", uid=1)
        assert not decision.allowed
        assert "user 1" in decision.violations[0].message
        assert enforcer.submit("SELECT * FROM items", uid=2).allowed

    def test_window_slides_per_member(self, enforcer):
        for _ in range(2):
            enforcer.submit("SELECT * FROM items", uid=1)
        enforcer.clock.sleep(500)
        assert enforcer.submit("SELECT * FROM items", uid=1).allowed

    def test_compaction_keeps_log_bounded(self, enforcer):
        for index in range(30):
            enforcer.submit("SELECT * FROM items", uid=(index % 3) + 1)
            enforcer.clock.sleep(60)  # keep everyone under the limit
        # window is 100ms; at 70ms per query only ~2 entries stay relevant
        # per member
        assert enforcer.store.live_size("users") <= 9

    def test_matches_non_unified_decisions(self):
        policies = [rate_policy(uid) for uid in (1, 2, 3)]
        stream = [(uid % 3) + 1 for uid in range(12)]

        def run(unification):
            enforcer = Enforcer(
                build_db(),
                policies,
                clock=SimulatedClock(default_step_ms=10),
                options=EnforcerOptions.datalawyer(unification=unification),
            )
            return [
                enforcer.submit("SELECT * FROM items", uid=uid, execute=False).allowed
                for uid in stream
            ]

        assert run(True) == run(False)


class TestRetainAllPolicies:
    """A policy with an unsupported clock shape compacts nothing but must
    stay correct over a long stream."""

    @pytest.fixture
    def policy(self):
        # <> on the clock: compaction opts out (retain-all).
        return Policy.from_sql(
            "odd",
            "SELECT DISTINCT 'fired' FROM users u, clock c "
            "WHERE u.uid = 9 AND u.ts <> c.ts "
            "HAVING COUNT(DISTINCT u.ts) > 2",
        )

    def test_retain_all_classified(self, policy):
        enforcer = Enforcer(build_db(), [policy])
        (runtime,) = enforcer.runtime_policies()
        assert runtime.witness is not None
        assert runtime.witness.retain_all == {"users"}

    def test_log_retained_fully_and_decisions_match_noopt(self, policy):
        def run(options):
            enforcer = Enforcer(
                build_db(),
                [policy],
                clock=SimulatedClock(default_step_ms=10),
                options=options,
            )
            decisions = [
                enforcer.submit(
                    "SELECT * FROM items", uid=9, execute=False
                ).allowed
                for _ in range(6)
            ]
            return decisions, enforcer.store.live_size("users")

        optimized, size_opt = run(EnforcerOptions.datalawyer())
        baseline, size_base = run(EnforcerOptions.noopt())
        assert optimized == baseline
        assert False in optimized  # the policy eventually fires
        # retain-all means DataLawyer keeps as much as NoOpt (minus the
        # increments of rejected queries, which both revert)
        assert size_opt == size_base


class TestCustomRegistryEndToEnd:
    def test_result_size_log(self):
        output_size = LogFunction(
            name="output_size",
            columns=("n",),
            generate=lambda ctx: [(len(ctx.lineage_result().rows),)],
            cost_rank=3,
        )
        registry = LogRegistry([*STANDARD_LOG_FUNCTIONS, output_size])
        policy = Policy.from_sql(
            "cap",
            "SELECT DISTINCT 'too many rows' FROM output_size o "
            "WHERE o.n > 5",
        )
        enforcer = Enforcer(
            build_db(),
            [policy],
            registry=registry,
            options=EnforcerOptions.datalawyer(),
        )
        (runtime,) = enforcer.runtime_policies()
        assert runtime.time_independent  # single relation, no aggregates
        assert enforcer.submit("SELECT * FROM items WHERE k < 3", uid=1).allowed
        assert not enforcer.submit("SELECT * FROM items", uid=1).allowed
        # time-independent → custom log never persisted
        assert enforcer.store.live_size("output_size") == 0

    def test_custom_log_with_window(self):
        bytes_log = LogFunction(
            name="bytes_out",
            columns=("n",),
            generate=lambda ctx: [(len(ctx.lineage_result().rows),)],
            cost_rank=3,
        )
        registry = LogRegistry([*STANDARD_LOG_FUNCTIONS, bytes_log])
        policy = Policy.from_sql(
            "budget",
            "SELECT DISTINCT 'volume budget exhausted' "
            "FROM bytes_out b, clock c WHERE b.ts > c.ts - 100 "
            "HAVING SUM(b.n) > 15",
        )
        enforcer = Enforcer(
            build_db(),
            [policy],
            registry=registry,
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(),
        )
        (runtime,) = enforcer.runtime_policies()
        assert not runtime.time_independent
        assert not runtime.monotone  # SUM threshold: conservative
        assert enforcer.submit("SELECT * FROM items", uid=1).allowed
        decision = enforcer.submit("SELECT * FROM items", uid=1)
        assert not decision.allowed  # 10 + 10 > 15 in window
        enforcer.clock.sleep(300)
        assert enforcer.submit("SELECT * FROM items", uid=1).allowed


class TestMixedPolicySet:
    """Every classification at once: ti + windowed + non-monotone +
    unified group + retain-all."""

    def test_mixed_set_matches_noopt(self):
        policies = [
            rate_policy(1),
            rate_policy(2),
            Policy.from_sql(
                "no-joins",
                "SELECT DISTINCT 'no join' FROM schema s1, schema s2 "
                "WHERE s1.ts = s2.ts AND s1.irid = 'items' "
                "AND s2.irid <> 'items'",
            ),
            Policy.from_sql(
                "support",
                "SELECT DISTINCT 'thin output' FROM users u, provenance p "
                "WHERE u.ts = p.ts AND u.uid = 2 AND p.irid = 'items' "
                "GROUP BY p.ts, p.otid HAVING COUNT(DISTINCT p.itid) <= 0",
            ),
            Policy.from_sql(
                "odd",
                "SELECT DISTINCT 'odd fired' FROM users u, clock c "
                "WHERE u.uid = 3 AND u.ts <> c.ts "
                "HAVING COUNT(DISTINCT u.ts) > 4",
            ),
        ]
        queries = [
            ("SELECT * FROM items", 1),
            ("SELECT * FROM items", 1),
            ("SELECT * FROM items", 1),
            ("SELECT i.k FROM items i, groups g WHERE i.k = g.uid", 2),
            ("SELECT COUNT(*) FROM items", 2),
            ("SELECT * FROM items", 3),
            ("SELECT * FROM items", 3),
            ("SELECT * FROM items", 2),
        ] * 2

        def run(options):
            enforcer = Enforcer(
                build_db(),
                policies,
                clock=SimulatedClock(default_step_ms=10),
                options=options,
            )
            return [
                enforcer.submit(sql, uid=uid, execute=False).allowed
                for sql, uid in queries
            ]

        baseline = run(EnforcerOptions.noopt())
        assert run(EnforcerOptions.datalawyer()) == baseline
        assert run(EnforcerOptions.datalawyer(improved_partial=True)) == baseline
        assert False in baseline and True in baseline
