"""Vectorized execution: batch path ≡ row path ≡ SQLite, predicate
pushdown, and the version-keyed hash-join build cache.

The referee property: for every query, ``Engine(db, engine="vectorized")``
and ``Engine(db, engine="row")`` return bit-identical results —
including lineage-mode runs (which always take the row path) and
mid-stream mutations that bump table versions under a cached plan.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Engine
from repro.workloads import MimicConfig, build_mimic_database, make_workload

int_or_null = st.one_of(st.integers(min_value=-4, max_value=4), st.none())
rows_r = st.lists(st.tuples(int_or_null, int_or_null), max_size=8)
rows_s = st.lists(st.tuples(int_or_null, int_or_null), max_size=8)


def build_db(r_rows, s_rows) -> Database:
    db = Database()
    db.load_table("r", ["a", "b"], r_rows)
    db.load_table("s", ["a", "c"], s_rows)
    return db


def build_pair(r_rows, s_rows):
    """Two engines — batch and row discipline — over one shared catalog."""
    db = build_db(r_rows, s_rows)
    return Engine(db, engine="vectorized"), Engine(db, engine="row")


def to_sqlite(db: Database) -> sqlite3.Connection:
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE r (a INTEGER, b INTEGER)")
    connection.execute("CREATE TABLE s (a INTEGER, c INTEGER)")
    connection.executemany(
        "INSERT INTO r VALUES (?, ?)", db.table("r").rows()
    )
    connection.executemany(
        "INSERT INTO s VALUES (?, ?)", db.table("s").rows()
    )
    return connection


QUERY_FORMS = [
    "SELECT r.a, r.b FROM r WHERE r.a = 1",
    "SELECT r.a FROM r WHERE r.a > 0 AND r.b < 3",
    "SELECT r.a, s.c FROM r, s WHERE r.a = s.a",
    "SELECT r.a, s.c FROM r, s WHERE r.a = s.a AND r.b = 2",
    "SELECT r.a, s.c FROM r, s WHERE r.a = s.a AND r.b < s.c",
    "SELECT r.a, s.c FROM r LEFT JOIN s ON r.a = s.a WHERE r.b = 1",
    "SELECT r.a FROM r, s WHERE r.b > s.c",
    "SELECT r.a, COUNT(*) FROM r GROUP BY r.a",
    "SELECT r.a, SUM(r.b) FROM r GROUP BY r.a HAVING COUNT(*) > 1",
    "SELECT COUNT(*) FROM r WHERE r.a IS NOT NULL",
    "SELECT DISTINCT r.a FROM r",
    "SELECT r.a FROM r UNION SELECT s.a FROM s",
    "SELECT r.a FROM r EXCEPT SELECT s.a FROM s",
    "SELECT r.a FROM r ORDER BY r.a LIMIT 3",
    "SELECT r.a + r.b FROM r WHERE NOT (r.a = 2)",
]


class TestBatchEqualsRowEqualsSqlite:
    @settings(max_examples=40, deadline=None)
    @given(rows_r, rows_s, st.integers(0, len(QUERY_FORMS) - 1))
    def test_three_way_agreement(self, r_rows, s_rows, query_index):
        sql = QUERY_FORMS[query_index]
        vec, row = build_pair(r_rows, s_rows)
        got_vec = vec.execute(sql)
        got_row = row.execute(sql)
        assert got_vec.rows == got_row.rows
        assert got_vec.columns == got_row.columns
        if "ORDER BY" not in sql:  # multiset compare against the oracle
            theirs = to_sqlite(vec.database).execute(sql).fetchall()
            assert sorted(got_vec.rows, key=repr) == sorted(
                [tuple(r) for r in theirs], key=repr
            )

    @settings(max_examples=25, deadline=None)
    @given(rows_r, rows_s, st.integers(0, len(QUERY_FORMS) - 1))
    def test_lineage_mode_identical(self, r_rows, s_rows, query_index):
        """lineage=True forces the row path on both engines — rows *and*
        provenance must agree with the row-engine reference."""
        sql = QUERY_FORMS[query_index]
        vec, row = build_pair(r_rows, s_rows)
        got_vec = vec.execute(sql, lineage=True)
        got_row = row.execute(sql, lineage=True)
        assert got_vec.rows == got_row.rows
        assert got_vec.lineages == got_row.lineages

    @settings(max_examples=20, deadline=None)
    @given(rows_r, rows_s)
    def test_mutation_under_cached_plan(self, r_rows, s_rows):
        """A cached plan must see catalog mutations: versions invalidate
        the join build cache, so results track the current table state."""
        sql = "SELECT r.a, s.c FROM r, s WHERE r.a = s.a"
        vec, row = build_pair(r_rows, s_rows)
        assert vec.execute(sql).rows == row.execute(sql).rows
        s = vec.database.table("s")
        s.insert_many([(1, 99), (2, 98)])
        assert vec.execute(sql).rows == row.execute(sql).rows
        s.delete_tids({s.tids()[0]} if s.tids() else set())
        assert vec.execute(sql).rows == row.execute(sql).rows


class TestKernelFallback:
    """Expression shapes the kernel emitter punts on (IN, CASE, function
    calls) must still agree between the two paths — they run through the
    spliced-closure fallback."""

    FALLBACK_QUERIES = [
        "SELECT r.a FROM r WHERE r.a IN (1, 2, 3)",
        "SELECT CASE WHEN r.a > 0 THEN 'pos' ELSE 'neg' END FROM r",
        "SELECT ABS(r.a) FROM r WHERE r.a IS NOT NULL",
    ]

    @pytest.mark.parametrize("sql", FALLBACK_QUERIES)
    def test_fallback_agreement(self, sql):
        vec, row = build_pair(
            [(1, 2), (-3, 4), (None, 1), (2, None)], [(1, 5)]
        )
        assert vec.execute(sql).rows == row.execute(sql).rows


class TestComparisonSpecializations:
    """The per-op comparison helpers the kernel emitter uses must be
    bit-identical to ``compare`` — same results, same exception type and
    message — over a matrix covering every type family, NULL, and the
    bool-is-not-int edge."""

    VALUES = [None, True, False, 0, 1, -3, 2.5, 0.0, "", "a", "b"]

    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    def test_matches_compare(self, op):
        from repro.engine import types
        from repro.errors import ExecutionError

        specialized = {
            "=": types.compare_eq,
            "<>": types.compare_ne,
            "<": types.compare_lt,
            "<=": types.compare_le,
            ">": types.compare_gt,
            ">=": types.compare_ge,
        }[op]
        for left in self.VALUES:
            for right in self.VALUES:
                try:
                    expected = ("ok", types.compare(op, left, right))
                except ExecutionError as exc:
                    expected = ("err", str(exc))
                try:
                    actual = ("ok", specialized(left, right))
                except ExecutionError as exc:
                    actual = ("err", str(exc))
                assert actual == expected, (op, left, right)


class TestJoinBuildCache:
    def setup_pair(self):
        db = build_db([(i % 5, i) for i in range(40)], [(i, i * 10) for i in range(5)])
        return Engine(db, engine="vectorized"), db

    def test_second_execution_hits(self):
        engine, db = self.setup_pair()
        sql = "SELECT r.b, s.c FROM r, s WHERE r.a = s.a"
        first = engine.execute(sql)
        assert db.join_build_misses == 1
        assert db.join_build_hits == 0
        second = engine.execute(sql)
        assert db.join_build_hits == 1
        assert db.join_build_misses == 1
        assert first.rows == second.rows

    def test_build_side_mutation_invalidates(self):
        engine, db = self.setup_pair()
        sql = "SELECT r.b, s.c FROM r, s WHERE r.a = s.a"
        engine.execute(sql)
        db.table("s").insert((0, 999))  # build side: forces a rebuild
        result = engine.execute(sql)
        assert db.join_build_misses == 2
        assert (0, 999) in {(row[1] // 1, row[1]) for row in result.rows} or any(
            row[1] == 999 for row in result.rows
        )

    def test_probe_side_mutation_does_not_invalidate(self):
        engine, db = self.setup_pair()
        sql = "SELECT r.b, s.c FROM r, s WHERE r.a = s.a"
        engine.execute(sql)
        db.table("r").insert((0, 777))  # probe side only
        result = engine.execute(sql)
        assert db.join_build_hits == 1
        assert db.join_build_misses == 1
        assert any(row[0] == 777 for row in result.rows)

    def test_lineage_and_batch_caches_are_separate(self):
        engine, db = self.setup_pair()
        sql = "SELECT r.b, s.c FROM r, s WHERE r.a = s.a"
        plain = engine.execute(sql)
        traced = engine.execute(sql, lineage=True)
        assert plain.rows == traced.rows
        assert db.join_build_misses == 2  # one build per discipline
        engine.execute(sql, lineage=True)
        assert db.join_build_hits == 1

    def test_explain_annotates_miss_then_hit(self):
        engine, _ = self.setup_pair()
        sql = "SELECT r.b, s.c FROM r, s WHERE r.a = s.a"
        assert "[build-cache=miss]" in engine.explain(sql)
        engine.execute(sql)
        assert "[build-cache=hit]" in engine.explain(sql)

    def test_subquery_build_side_not_cached(self):
        engine, db = self.setup_pair()
        sql = (
            "SELECT r.b, q.c FROM r, "
            "(SELECT s.a AS a, s.c AS c FROM s WHERE s.c > 0) q "
            "WHERE r.a = q.a"
        )
        engine.execute(sql)
        engine.execute(sql)
        assert db.join_build_hits == 0  # derived build sides rebuild
        assert "[build-cache=" not in engine.explain(sql)


class TestPushdown:
    def make_engine(self):
        db = build_db([(1, 2), (2, 3)], [(1, 10), (2, 20)])
        db.load_table("t", ["a", "d"], [(1, 7)])
        return Engine(db)

    def test_single_table_conjunct_pushed_below_join(self):
        engine = self.make_engine()
        text = engine.explain(
            "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND s.c > 5"
        )
        lines = text.splitlines()
        join_depth = next(
            i for i, line in enumerate(lines) if "HashJoin" in line
        )
        pushed = [i for i, line in enumerate(lines) if "[pushed=1]" in line]
        assert pushed and pushed[0] > join_depth  # below the join node

    def test_constant_equality_promotes_index_scan(self):
        engine = self.make_engine()
        text = engine.explain(
            "SELECT r.b, s.c FROM r, s WHERE r.a = s.a AND r.a = 1"
        )
        assert "IndexScan r (col 0)" in text

    def test_left_join_pushes_left_side_only(self):
        engine = self.make_engine()
        # Equality would promote all the way to an IndexScan; use an
        # inequality so the pushed FilterOp itself is visible.
        text = engine.explain(
            "SELECT r.b, s.c FROM r LEFT JOIN s ON r.a = s.a WHERE r.b > 2"
        )
        lines = text.splitlines()
        left_join = next(i for i, l in enumerate(lines) if "LeftJoin" in l)
        pushed = next(i for i, l in enumerate(lines) if "[pushed=1]" in l)
        assert pushed > left_join  # descended under the left join

        # A right-side conjunct must stay above the LeftJoin.
        text = engine.explain(
            "SELECT r.b, s.c FROM r LEFT JOIN s ON r.a = s.a WHERE s.c = 10"
        )
        lines = text.splitlines()
        left_join = next(i for i, l in enumerate(lines) if "LeftJoin" in l)
        pushed = next(i for i, l in enumerate(lines) if "[pushed=1]" in l)
        assert pushed < left_join

    def test_left_join_pushdown_preserves_padding_semantics(self):
        vec, row = build_pair([(1, 2), (2, 3), (3, 3)], [(1, 10)])
        sql = "SELECT r.a, s.c FROM r LEFT JOIN s ON r.a = s.a WHERE r.b = 3"
        got = vec.execute(sql)
        assert got.rows == row.execute(sql).rows
        assert sorted(got.rows) == [(2, None), (3, None)]

    def test_multi_unit_conjunct_attached_mid_join(self):
        engine = self.make_engine()
        text = engine.explain(
            "SELECT r.b FROM r, s, t "
            "WHERE r.a = s.a AND s.a = t.a AND r.b < s.c"
        )
        lines = text.splitlines()
        joins = [i for i, l in enumerate(lines) if "HashJoin" in l]
        pushed = [i for i, l in enumerate(lines) if "[pushed=" in l]
        assert len(joins) == 2
        # r.b < s.c is evaluable after the first join: it sits between
        # the outer join and the inner one.
        assert pushed and joins[0] < pushed[0]

    def test_pushdown_equivalence_on_random_data(self):
        vec, row = build_pair(
            [(i % 4, i % 3) for i in range(30)],
            [(i % 4, i) for i in range(12)],
        )
        for sql in (
            "SELECT r.a, s.c FROM r, s WHERE r.a = s.a AND r.b = 1 AND s.c > 3",
            "SELECT r.a FROM r, s WHERE r.a = s.a AND r.b < s.c AND s.a = 2",
        ):
            assert vec.execute(sql).rows == row.execute(sql).rows


class TestVectorCounters:
    def test_batches_and_rows_counted(self):
        engine, _ = TestJoinBuildCache().setup_pair()
        engine.execute("SELECT r.a FROM r")
        assert engine.vector_batches >= 1
        assert engine.vector_rows == 40

    def test_row_engine_leaves_counters_alone(self):
        db = build_db([(1, 1)], [])
        engine = Engine(db, engine="row")
        engine.execute("SELECT r.a FROM r")
        assert engine.vector_batches == 0
        assert engine.vector_rows == 0


class TestMimicWorkload:
    """The canonical W1–W4 workload over the generated MIMIC data: the
    two disciplines must agree on every query, with and without lineage,
    before and after a mid-stream mutation."""

    @pytest.fixture(scope="class")
    def engines(self):
        database = build_mimic_database(MimicConfig(n_patients=40))
        return (
            Engine(database, engine="vectorized"),
            Engine(database, engine="row"),
            make_workload(MimicConfig(n_patients=40)),
        )

    def test_all_queries_agree(self, engines):
        vec, row, workload = engines
        for name, sql in workload.all().items():
            got_vec = vec.execute(sql)
            got_row = row.execute(sql)
            assert got_vec.rows == got_row.rows, name
            got_vec = vec.execute(sql, lineage=True)
            got_row = row.execute(sql, lineage=True)
            assert got_vec.rows == got_row.rows, name
            assert got_vec.lineages == got_row.lineages, name

    def test_agreement_survives_mutation(self, engines):
        vec, row, workload = engines
        patients = vec.database.table("d_patients")
        template = patients.rows()[0]
        patients.insert(tuple(template))  # bump the version mid-stream
        for name, sql in workload.all().items():
            assert vec.execute(sql).rows == row.execute(sql).rows, name
