"""Property-based tests over the relational engine (hypothesis).

Random small tables + a constrained query space; properties assert
relational-algebra identities and lineage correctness.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Engine
from repro.engine.types import sort_key

values = st.one_of(
    st.integers(min_value=-5, max_value=5),
    st.sampled_from(["a", "b", "c"]),
    st.none(),
)
int_values = st.one_of(st.integers(min_value=-5, max_value=5), st.none())

rows_rs = st.tuples(
    st.lists(st.tuples(int_values, values), max_size=8),
    st.lists(st.tuples(int_values, values), max_size=8),
)


def make_db(r_rows, s_rows) -> Engine:
    db = Database()
    db.load_table("r", ["k", "v"], r_rows)
    db.load_table("s", ["k", "w"], s_rows)
    return Engine(db)


def bag(rows):
    return sorted(rows, key=lambda row: [sort_key(v) for v in row])


@settings(max_examples=60, deadline=None)
@given(rows_rs)
def test_join_commutes_on_key(table_rows):
    engine = make_db(*table_rows)
    ab = engine.execute("SELECT r.k, s.k FROM r, s WHERE r.k = s.k").rows
    ba = engine.execute("SELECT r.k, s.k FROM s, r WHERE s.k = r.k").rows
    assert bag(ab) == bag(ba)


@settings(max_examples=60, deadline=None)
@given(rows_rs)
def test_join_equals_filtered_product(table_rows):
    engine = make_db(*table_rows)
    # hash-join path
    joined = engine.execute("SELECT r.k, s.w FROM r, s WHERE r.k = s.k").rows
    # force nested-loop path with an always-true extra structure: compute in
    # python from the cross product
    product = engine.execute("SELECT r.k, s.k, s.w FROM r, s").rows
    expected = [(rk, w) for rk, sk, w in product if rk is not None and rk == sk]
    assert bag(joined) == bag(expected)


@settings(max_examples=60, deadline=None)
@given(rows_rs)
def test_distinct_is_idempotent(table_rows):
    engine = make_db(*table_rows)
    once = engine.execute("SELECT DISTINCT v FROM r").rows
    twice = engine.execute(
        "SELECT DISTINCT x.v FROM (SELECT DISTINCT v FROM r) x"
    ).rows
    assert bag(once) == bag(twice)


@settings(max_examples=60, deadline=None)
@given(rows_rs)
def test_union_is_distinct_union_all(table_rows):
    engine = make_db(*table_rows)
    union = engine.execute("SELECT k FROM r UNION SELECT k FROM s").rows
    union_all = engine.execute(
        "SELECT DISTINCT x.k FROM "
        "(SELECT k FROM r UNION ALL SELECT k FROM s) x"
    ).rows
    assert bag(union) == bag(union_all)


@settings(max_examples=60, deadline=None)
@given(rows_rs)
def test_filter_conjunction_equals_composition(table_rows):
    engine = make_db(*table_rows)
    both = engine.execute("SELECT v FROM r WHERE k > 0 AND k < 4").rows
    composed = engine.execute(
        "SELECT x.v FROM (SELECT k, v FROM r WHERE k > 0) x WHERE x.k < 4"
    ).rows
    assert bag(both) == bag(composed)


@settings(max_examples=60, deadline=None)
@given(rows_rs)
def test_count_star_matches_row_count(table_rows):
    engine = make_db(*table_rows)
    count = engine.execute("SELECT COUNT(*) FROM r").scalar()
    assert count == len(table_rows[0])


@settings(max_examples=60, deadline=None)
@given(rows_rs)
def test_group_counts_sum_to_total(table_rows):
    engine = make_db(*table_rows)
    groups = engine.execute("SELECT k, COUNT(*) FROM r GROUP BY k").rows
    assert sum(count for _, count in groups) == len(table_rows[0])


@settings(max_examples=60, deadline=None)
@given(rows_rs)
def test_count_distinct_matches_python(table_rows):
    engine = make_db(*table_rows)
    counted = engine.execute("SELECT COUNT(DISTINCT v) FROM r").scalar()
    expected = len({v for _, v in table_rows[0] if v is not None})
    assert counted == expected


@settings(max_examples=60, deadline=None)
@given(rows_rs)
def test_except_intersect_partition(table_rows):
    """EXCEPT ∪ INTERSECT = DISTINCT left (as sets of rows)."""
    engine = make_db(*table_rows)
    left = {r for r in engine.execute("SELECT k FROM r").rows}
    except_ = {r for r in engine.execute("SELECT k FROM r EXCEPT SELECT k FROM s").rows}
    intersect = {
        r for r in engine.execute("SELECT k FROM r INTERSECT SELECT k FROM s").rows
    }
    assert except_ | intersect == left
    assert not except_ & intersect


@settings(max_examples=40, deadline=None)
@given(rows_rs)
def test_lineage_rows_reproduce_answer(table_rows):
    """Keeping only lineage tuples preserves the query answer exactly."""
    engine = make_db(*table_rows)
    sql = "SELECT r.v, s.w FROM r, s WHERE r.k = s.k"
    result = engine.execute(sql, lineage=True)
    needed = (
        set().union(*result.lineages) if result.lineages else set()
    )
    for name in ("r", "s"):
        table = engine.database.table(name)
        table.retain_tids({tid for tbl, tid in needed if tbl == name})
    engine.invalidate_plans()
    assert bag(engine.execute(sql).rows) == bag(result.rows)


@settings(max_examples=40, deadline=None)
@given(rows_rs)
def test_every_lineage_tuple_contributes(table_rows):
    """Minimality on scans+filters: each lineage tuple equals its row."""
    engine = make_db(*table_rows)
    result = engine.execute("SELECT k, v FROM r WHERE k >= 0", lineage=True)
    table = engine.database.table("r")
    for row, lin in zip(result.rows, result.lineages):
        assert len(lin) == 1
        ((_, tid),) = lin
        assert table.row_for_tid(tid) == row


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(int_values, int_values), max_size=10),
    st.integers(min_value=-3, max_value=3),
)
def test_having_threshold_consistency(rows, threshold):
    """HAVING count > k result ⊆ GROUP BY result, and matches Python."""
    db = Database()
    db.load_table("g", ["k", "v"], rows)
    engine = Engine(db)
    filtered = engine.execute(
        f"SELECT k, COUNT(*) FROM g GROUP BY k HAVING COUNT(*) > {threshold}"
    ).rows
    everything = engine.execute("SELECT k, COUNT(*) FROM g GROUP BY k").rows
    assert set(filtered) == {row for row in everything if row[1] > threshold}


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(int_values, values), max_size=10))
def test_order_by_sorts_and_preserves_bag(rows):
    db = Database()
    db.load_table("o", ["k", "v"], rows)
    engine = Engine(db)
    ordered = engine.execute("SELECT k FROM o ORDER BY k").rows
    assert bag(ordered) == bag(engine.execute("SELECT k FROM o").rows)
    keys = [sort_key(row[0]) for row in ordered]
    assert keys == sorted(keys)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(int_values, values), max_size=10),
    st.integers(min_value=0, max_value=12),
)
def test_limit_is_prefix(rows, limit):
    db = Database()
    db.load_table("o", ["k", "v"], rows)
    engine = Engine(db)
    all_rows = engine.execute("SELECT * FROM o").rows
    limited = engine.execute(f"SELECT * FROM o LIMIT {limit}").rows
    assert limited == all_rows[:limit]


@settings(max_examples=40, deadline=None)
@given(rows_rs)
def test_index_scan_equals_scan_filter(table_rows):
    """The planner's index probe agrees with predicate semantics."""
    engine = make_db(*table_rows)
    via_index = engine.execute("SELECT v FROM r WHERE k = 2").rows
    expected = [(v,) for k, v in table_rows[0] if k == 2]
    assert bag(via_index) == bag(expected)
