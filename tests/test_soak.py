"""Soak test: a long mixed stream holds every system invariant.

Runs a few hundred queries from several users against all six policies,
checking after every single query that:

- the decision matches a reference NoOpt enforcer fed the same stream;
- the compacted log is a subset of the reference log (as row sets);
- no staged tuples leak across queries;
- the clock table stays a single row at the current time.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Enforcer, EnforcerOptions
from repro.log import SimulatedClock
from repro.workloads import (
    MimicConfig,
    PolicyParams,
    build_mimic_database,
    make_all_policies,
    make_workload,
)

QUERY_COUNT = 220


@pytest.fixture(scope="module")
def soak_setup():
    config = MimicConfig(n_patients=80)
    params = PolicyParams.for_config(
        config,
        p1_max_users=2,
        p1_window=120,
        p5_max_tuples=55,
        p5_window=400,
        p6_max_uses=6,
        p6_window=300,
    )
    template = build_mimic_database(config)
    policies = make_all_policies(params)
    workload = make_workload(config)
    return template, policies, workload, config


def test_soak_mixed_stream(soak_setup):
    template, policies, workload, config = soak_setup
    rng = random.Random(2026)

    datalawyer = Enforcer(
        template.clone(),
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    reference = Enforcer(
        template.clone(),
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.noopt(),
    )

    queries = list(workload.all().values()) + [
        "SELECT COUNT(*) FROM d_patients",
        "SELECT sex, COUNT(*) FROM d_patients GROUP BY sex",
        "SELECT o.medication, COUNT(m.dose) FROM poe_order o, poe_med m "
        "WHERE o.poe_id = m.poe_id GROUP BY o.medication",
        f"SELECT * FROM d_patients WHERE subject_id = {config.n_patients // 2}",
    ]
    uids = [0, 1, 1, 2, 3, 5]

    allowed = rejected = 0
    for step in range(QUERY_COUNT):
        sql = rng.choice(queries)
        uid = rng.choice(uids)

        lhs = datalawyer.submit(sql, uid=uid, execute=False)
        rhs = reference.submit(sql, uid=uid, execute=False)
        assert lhs.allowed == rhs.allowed, (step, sql, uid)
        allowed += lhs.allowed
        rejected += not lhs.allowed

        # Compacted log ⊆ reference log, per relation, as row multisets.
        for relation in ("users", "schema", "provenance"):
            compact_rows = datalawyer.database.table(relation).rows()
            reference_rows = list(reference.database.table(relation).rows())
            for row in compact_rows:
                assert row in reference_rows, (step, relation, row)
                reference_rows.remove(row)

        # No staged leftovers; clock is one fresh row.
        assert not datalawyer.store.staged_relations()
        clock_rows = datalawyer.database.table("clock").rows()
        assert clock_rows == [(datalawyer.clock.now(),)]

    # The stream must have exercised both outcomes.
    assert allowed > 50
    assert rejected > 10

    # And compaction must have actually saved space by the end.
    assert (
        datalawyer.store.total_live_size()
        < reference.store.total_live_size()
    )
