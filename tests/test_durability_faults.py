"""Fault-injection tests: recovery from crashes at the worst moments.

Every test follows the same shape: run a query stream against a durable
enforcer, kill the "process" somewhere inconvenient (mid-record write,
dropped fsync + torn tail, or inside the checkpoint swap), recover, and
assert the recovered enforcer's held-out decisions are bit-identical to
an uncrashed twin that processed exactly the queries recovery reports as
durable."""

from __future__ import annotations

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.log import SimulatedClock, standard_registry
from repro.storage import (
    FaultPlan,
    InjectedCrash,
    WriteAheadLog,
    checkpoint,
    initialize_durability,
    read_wal,
    recover_enforcer,
    tear,
)

RATE_POLICY = (
    "SELECT DISTINCT 'too fast' FROM users u, groups g, clock c "
    "WHERE u.uid = g.uid AND g.gid = 'x' AND u.ts > c.ts - 100 "
    "HAVING COUNT(DISTINCT u.ts) > 3"
)

QUERIES = [
    ("SELECT iid FROM items", "alice"),
    ("SELECT owner FROM items", "bob"),
    ("SELECT iid FROM items WHERE owner = 'u0'", "alice"),
    ("SELECT iid FROM items", "alice"),
    ("SELECT owner FROM items WHERE owner = 'u1'", "bob"),
    ("SELECT iid FROM items", "bob"),
    ("SELECT iid FROM items", "alice"),
    ("SELECT owner FROM items", "bob"),
]

HELD_OUT = [
    ("SELECT iid FROM items", "alice"),
    ("SELECT owner FROM items", "bob"),
    ("SELECT iid FROM items WHERE owner = 'u0'", "bob"),
    ("SELECT iid FROM items", "alice"),
]


def make_enforcer(**options) -> Enforcer:
    db = Database()
    db.load_table(
        "items",
        ["iid", "owner"],
        [(f"i{i}", f"u{i % 2}") for i in range(4)],
    )
    db.load_table("groups", ["uid", "gid"], [("alice", "x"), ("bob", "x")])
    policy = Policy.from_sql("rate", RATE_POLICY, "rate limit")
    return Enforcer(
        db,
        [policy],
        registry=standard_registry(),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions(**options),
    )


def run_stream(enforcer, queries):
    return [
        (d.allowed, d.timestamp)
        for d in (enforcer.submit(q, uid=u) for q, u in queries)
    ]


def arm(enforcer, directory, plan):
    """Swap the enforcer's WAL for one driven by ``plan``.

    Keeps the fault byte-budget independent of the header/genesis bytes
    written during :func:`initialize_durability`.
    """
    old = enforcer.store.wal
    old.close()
    wal = WriteAheadLog(
        directory / "wal.jsonl", fault_plan=plan, start_seq=old.last_seq
    )
    enforcer.store.attach_wal(wal)
    return wal


def assert_recovery_matches_uncrashed(directory, options=None):
    """Recover; assert held-out decisions equal a twin that ran exactly
    the ``last_seq`` queries recovery reports as durable."""
    recovered, rwal, report = recover_enforcer(
        directory, clock=SimulatedClock(default_step_ms=10)
    )
    twin = make_enforcer(**(options or {}))
    run_stream(twin, QUERIES[: report.last_seq])
    assert run_stream(recovered, HELD_OUT) == run_stream(twin, HELD_OUT)
    for name in ("users", "schema", "provenance"):
        assert (
            recovered.database.table(name).rows()
            == twin.database.table(name).rows()
        )
        assert (
            recovered.database.table(name).tids()
            == twin.database.table(name).tids()
        )
    rwal.close()
    return report


class TestMidCommitCrash:
    @pytest.mark.parametrize("budget", [5, 120, 333, 700, 950])
    def test_write_killed_mid_record(self, tmp_path, budget):
        enforcer = make_enforcer()
        initialize_durability(enforcer, tmp_path)
        wal = arm(enforcer, tmp_path, FaultPlan(fail_write_after_bytes=budget))
        with pytest.raises(InjectedCrash):
            for sql, uid in QUERIES:
                enforcer.submit(sql, uid=uid)

        report = assert_recovery_matches_uncrashed(tmp_path)
        # The killed write left a genuinely torn record unless the budget
        # happened to land exactly on a record boundary.
        assert report.last_seq < len(QUERIES)
        wal.close()

    def test_compaction_commits_survive_the_same_way(self, tmp_path):
        options = {"log_compaction": True, "compaction_every": 2}
        enforcer = make_enforcer(**options)
        initialize_durability(enforcer, tmp_path)
        wal = arm(enforcer, tmp_path, FaultPlan(fail_write_after_bytes=400))
        with pytest.raises(InjectedCrash):
            for sql, uid in QUERIES:
                enforcer.submit(sql, uid=uid)
        report = assert_recovery_matches_uncrashed(tmp_path, options)
        assert report.last_seq < len(QUERIES)
        wal.close()


class TestDroppedFsync:
    @pytest.mark.parametrize("lost_fraction", [0.1, 0.4, 0.9])
    def test_torn_tail_after_os_crash(self, tmp_path, lost_fraction):
        enforcer = make_enforcer()
        initialize_durability(enforcer, tmp_path)
        wal = arm(enforcer, tmp_path, FaultPlan(drop_fsync=True))
        run_stream(enforcer, QUERIES)
        wal.close()
        # The kernel never made the tail durable; a power cut drops an
        # arbitrary suffix of what the process believed written.
        path = tmp_path / "wal.jsonl"
        size = path.stat().st_size
        tear(path, int(size * (1 - lost_fraction)))

        report = assert_recovery_matches_uncrashed(tmp_path)
        assert report.last_seq <= len(QUERIES)

    def test_recovery_truncates_the_torn_tail(self, tmp_path):
        enforcer = make_enforcer()
        wal = initialize_durability(enforcer, tmp_path)
        run_stream(enforcer, QUERIES[:4])
        wal.close()
        path = tmp_path / "wal.jsonl"
        tear(path, path.stat().st_size - 9)

        recovered, rwal, report = recover_enforcer(
            tmp_path, clock=SimulatedClock(default_step_ms=10)
        )
        assert report.torn_tail
        assert report.truncated_bytes > 0
        rwal.close()
        # After truncation the file scans clean again.
        assert not read_wal(path).torn


class TestCheckpointCrashes:
    POINTS = [
        "checkpoint:after-save",
        "checkpoint:mid-swap",
        "checkpoint:before-clean",
        "checkpoint:before-reset",
    ]

    @pytest.mark.parametrize("point", POINTS)
    def test_crash_inside_the_swap_protocol(self, tmp_path, point):
        enforcer = make_enforcer()
        wal = initialize_durability(enforcer, tmp_path)
        run_stream(enforcer, QUERIES[:6])
        with pytest.raises(InjectedCrash):
            checkpoint(
                enforcer, tmp_path, wal, fault_plan=FaultPlan(crash_at={point})
            )
        wal.close()
        report = assert_recovery_matches_uncrashed(tmp_path)
        # Wherever the crash landed, no acknowledged query is lost.
        assert report.last_seq == 6

    def test_before_reset_skips_covered_records(self, tmp_path):
        """Crash after the swap but before WAL truncation: the surviving
        records are all covered by the new checkpoint and must not be
        applied twice."""
        enforcer = make_enforcer()
        wal = initialize_durability(enforcer, tmp_path)
        run_stream(enforcer, QUERIES[:6])
        with pytest.raises(InjectedCrash):
            checkpoint(
                enforcer,
                tmp_path,
                wal,
                fault_plan=FaultPlan(crash_at={"checkpoint:before-reset"}),
            )
        wal.close()
        recovered, rwal, report = recover_enforcer(
            tmp_path, clock=SimulatedClock(default_step_ms=10)
        )
        assert report.checkpoint_seq == 6
        assert report.skipped == 6
        assert report.replayed == 0
        rwal.close()

    def test_crash_then_more_queries_then_crash_again(self, tmp_path):
        """Two consecutive crash-recover cycles with work in between."""
        enforcer = make_enforcer()
        wal = initialize_durability(enforcer, tmp_path)
        run_stream(enforcer, QUERIES[:3])
        with pytest.raises(InjectedCrash):
            checkpoint(
                enforcer,
                tmp_path,
                wal,
                fault_plan=FaultPlan(crash_at={"checkpoint:mid-swap"}),
            )
        wal.close()

        recovered, rwal, _ = recover_enforcer(
            tmp_path, clock=SimulatedClock(default_step_ms=10)
        )
        run_stream(recovered, QUERIES[3:6])
        rwal.close()  # crash again, mid-flight state abandoned

        report = assert_recovery_matches_uncrashed(tmp_path)
        assert report.last_seq == 6
