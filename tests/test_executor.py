"""SQL execution behavior: filters, joins, grouping, distinct, set ops.

The fixture tables (see conftest) are::

    t(a, b, c): (1,'x',10) (2,'y',20) (2,'z',30) (3,'x',NULL) (NULL,'w',40)
    u(a, d):    (1,100) (2,200) (4,400)
"""

import pytest

from repro.engine import Database, Engine
from repro.errors import BindError, CatalogError


def rows(engine, sql, **kw):
    return engine.execute(sql, **kw).rows


def sorted_rows(engine, sql):
    from repro.engine.types import sort_key

    return sorted(rows(engine, sql), key=lambda r: [sort_key(v) for v in r])


class TestProjectionAndFilter:
    def test_select_star(self, engine):
        assert len(rows(engine, "SELECT * FROM t")) == 5

    def test_select_columns(self, engine):
        assert rows(engine, "SELECT b FROM t WHERE a = 1") == [("x",)]

    def test_qualified_star_expansion(self, engine):
        result = engine.execute("SELECT u.*, t.b FROM t, u WHERE t.a = u.a")
        assert result.columns == ["a", "d", "b"]

    def test_expression_projection(self, engine):
        assert rows(engine, "SELECT a * 2 + 1 FROM t WHERE a = 2") == [(5,), (5,)]

    def test_alias_in_output(self, engine):
        result = engine.execute("SELECT a AS alpha FROM t WHERE a = 1")
        assert result.columns == ["alpha"]

    def test_where_eliminates_null_comparisons(self, engine):
        # a = a is unknown for NULL row → excluded
        assert len(rows(engine, "SELECT * FROM t WHERE a = a")) == 4

    def test_where_is_null(self, engine):
        assert rows(engine, "SELECT b FROM t WHERE a IS NULL") == [("w",)]

    def test_where_in_list(self, engine):
        assert len(rows(engine, "SELECT * FROM t WHERE a IN (1, 3)")) == 2

    def test_where_like(self, engine):
        assert len(rows(engine, "SELECT * FROM t WHERE b LIKE '_'")) == 5

    def test_where_not(self, engine):
        assert len(rows(engine, "SELECT * FROM t WHERE NOT a = 2")) == 2

    def test_between(self, engine):
        assert len(rows(engine, "SELECT * FROM t WHERE a BETWEEN 2 AND 3")) == 3

    def test_case_expression(self, engine):
        result = rows(
            engine,
            "SELECT CASE WHEN a >= 2 THEN 'big' ELSE 'small' END "
            "FROM t WHERE a IS NOT NULL",
        )
        assert sorted(result) == [("big",), ("big",), ("big",), ("small",)]

    def test_scalar_functions(self, engine):
        assert rows(engine, "SELECT abs(-3), length('abcd'), upper('x')") == [
            (3, 4, "X")
        ]

    def test_coalesce(self, engine):
        result = rows(engine, "SELECT coalesce(c, 0) FROM t WHERE a = 3")
        assert result == [(0,)]

    def test_no_from_select(self, engine):
        assert rows(engine, "SELECT 1 + 1") == [(2,)]


class TestJoins:
    def test_equi_join(self, engine):
        result = sorted_rows(
            engine, "SELECT t.a, u.d FROM t, u WHERE t.a = u.a"
        )
        assert result == [(1, 100), (2, 200), (2, 200)]

    def test_join_null_keys_never_match(self, engine):
        db = Database()
        db.load_table("l", ["k"], [(None,), (1,)])
        db.load_table("r", ["k"], [(None,), (1,)])
        e = Engine(db)
        assert rows(e, "SELECT * FROM l, r WHERE l.k = r.k") == [(1, 1)]

    def test_cross_product(self, engine):
        assert len(rows(engine, "SELECT 1 FROM t, u")) == 15

    def test_three_way_join(self, engine):
        result = rows(
            engine,
            "SELECT t.a FROM t, u, u v "
            "WHERE t.a = u.a AND u.a = v.a AND t.a = 1",
        )
        assert result == [(1,)]

    def test_non_equi_join_predicate(self, engine):
        result = sorted_rows(
            engine, "SELECT t.a, u.a FROM t, u WHERE t.a < u.a AND t.a = 1"
        )
        assert result == [(1, 2), (1, 4)]

    def test_self_join_with_aliases(self, engine):
        result = rows(
            engine,
            "SELECT p1.b, p2.b FROM t p1, t p2 "
            "WHERE p1.a = p2.a AND p1.b < p2.b AND p1.a = 2",
        )
        assert result == [("y", "z")]

    def test_join_syntax_desugared(self, engine):
        a = sorted_rows(engine, "SELECT t.a FROM t JOIN u ON t.a = u.a")
        b = sorted_rows(engine, "SELECT t.a FROM t, u WHERE t.a = u.a")
        assert a == b


class TestGrouping:
    def test_group_by_counts(self, engine):
        result = sorted_rows(engine, "SELECT a, COUNT(*) FROM t GROUP BY a")
        assert result == [(1, 1), (2, 2), (3, 1), (None, 1)]

    def test_group_by_null_forms_one_group(self, engine):
        result = rows(engine, "SELECT COUNT(*) FROM t WHERE a IS NULL GROUP BY a")
        assert result == [(1,)]

    def test_count_column_skips_nulls(self, engine):
        assert rows(engine, "SELECT COUNT(c) FROM t") == [(4,)]

    def test_count_star_counts_all(self, engine):
        assert rows(engine, "SELECT COUNT(*) FROM t") == [(5,)]

    def test_count_distinct(self, engine):
        assert rows(engine, "SELECT COUNT(DISTINCT b) FROM t") == [(4,)]

    def test_sum_avg_min_max(self, engine):
        assert rows(
            engine, "SELECT SUM(c), MIN(c), MAX(c), AVG(c) FROM t"
        ) == [(100, 10, 40, 25.0)]

    def test_aggregates_on_empty_input(self, engine):
        assert rows(
            engine, "SELECT COUNT(*), SUM(a), MIN(a), AVG(a) FROM t WHERE FALSE"
        ) == [(0, None, None, None)]

    def test_scalar_aggregate_single_row(self, engine):
        assert rows(engine, "SELECT COUNT(*) FROM t WHERE a = 2") == [(2,)]

    def test_having_filters_groups(self, engine):
        result = rows(engine, "SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1")
        assert result == [(2,)]

    def test_having_on_empty_input_scalar(self, engine):
        # single empty group fails HAVING count > 0? count = 0
        assert (
            rows(engine, "SELECT COUNT(*) FROM t WHERE FALSE HAVING COUNT(*) > 0")
            == []
        )

    def test_having_passes_empty_group_when_condition_holds(self, engine):
        result = rows(
            engine, "SELECT COUNT(*) FROM t WHERE FALSE HAVING COUNT(*) = 0"
        )
        assert result == [(0,)]

    def test_group_key_expression(self, engine):
        result = sorted_rows(
            engine,
            "SELECT a % 2, COUNT(*) FROM t WHERE a IS NOT NULL GROUP BY a % 2",
        )
        assert result == [(0, 2), (1, 2)]

    def test_non_grouped_column_rejected(self, engine):
        with pytest.raises(BindError):
            engine.execute("SELECT b, COUNT(*) FROM t GROUP BY a")

    def test_star_with_group_by_rejected(self, engine):
        with pytest.raises(BindError):
            engine.execute("SELECT * FROM t GROUP BY a")

    def test_multiple_identical_aggregates_share_state(self, engine):
        result = rows(
            engine,
            "SELECT COUNT(*) + COUNT(*) FROM t",
        )
        assert result == [(10,)]

    def test_having_references_unselected_aggregate(self, engine):
        result = rows(
            engine,
            "SELECT a FROM t GROUP BY a HAVING SUM(c) >= 50",
        )
        assert result == [(2,)]


class TestDistinct:
    def test_distinct(self, engine):
        assert sorted_rows(engine, "SELECT DISTINCT a FROM t WHERE a = 2") == [(2,)]

    def test_distinct_multiple_columns(self, engine):
        assert len(rows(engine, "SELECT DISTINCT a, b FROM t")) == 5

    def test_distinct_on_keeps_first_per_key(self, engine):
        result = rows(engine, "SELECT DISTINCT ON (a), t.b FROM t WHERE a = 2")
        assert result == [("y",)]

    def test_distinct_on_key_not_in_output(self, engine):
        result = rows(engine, "SELECT DISTINCT ON (b), t.a FROM t WHERE b = 'x'")
        assert result == [(1,)]


class TestSetOps:
    def test_union_distinct(self, engine):
        result = sorted_rows(
            engine, "SELECT a FROM t WHERE a IS NOT NULL UNION SELECT a FROM u"
        )
        assert result == [(1,), (2,), (3,), (4,)]

    def test_union_all_keeps_duplicates(self, engine):
        result = rows(engine, "SELECT a FROM u UNION ALL SELECT a FROM u")
        assert len(result) == 6

    def test_except(self, engine):
        result = sorted_rows(
            engine, "SELECT a FROM u EXCEPT SELECT a FROM t"
        )
        assert result == [(4,)]

    def test_intersect(self, engine):
        result = sorted_rows(
            engine, "SELECT a FROM u INTERSECT SELECT a FROM t"
        )
        assert result == [(1,), (2,)]

    def test_union_arity_mismatch(self, engine):
        with pytest.raises(BindError):
            engine.execute("SELECT a FROM t UNION SELECT a, b FROM t")


class TestOrderLimit:
    def test_order_by_asc(self, engine):
        result = rows(engine, "SELECT a FROM t WHERE a IS NOT NULL ORDER BY a")
        assert result == [(1,), (2,), (2,), (3,)]

    def test_order_by_desc_nulls_first(self, engine):
        result = rows(engine, "SELECT a FROM t ORDER BY a DESC")
        assert result[0] == (None,)

    def test_order_by_multiple_keys(self, engine):
        result = rows(
            engine, "SELECT a, b FROM t WHERE a = 2 ORDER BY a, b DESC"
        )
        assert result == [(2, "z"), (2, "y")]

    def test_order_by_alias(self, engine):
        result = rows(
            engine,
            "SELECT c * -1 AS neg FROM t WHERE c IS NOT NULL ORDER BY neg",
        )
        assert result == [(-40,), (-30,), (-20,), (-10,)]

    def test_limit(self, engine):
        assert len(rows(engine, "SELECT * FROM t LIMIT 2")) == 2

    def test_limit_zero(self, engine):
        assert rows(engine, "SELECT * FROM t LIMIT 0") == []

    def test_limit_larger_than_result(self, engine):
        assert len(rows(engine, "SELECT * FROM t LIMIT 99")) == 5

    def test_order_with_distinct_uses_output_columns(self, engine):
        result = rows(
            engine,
            "SELECT DISTINCT a FROM t WHERE a IS NOT NULL ORDER BY a DESC",
        )
        assert result == [(3,), (2,), (1,)]

    def test_order_by_grouped_aggregate(self, engine):
        result = rows(
            engine,
            "SELECT a, COUNT(*) AS n FROM t WHERE a IS NOT NULL "
            "GROUP BY a ORDER BY COUNT(*) DESC, a",
        )
        assert result == [(2, 2), (1, 1), (3, 1)]


class TestSubqueries:
    def test_from_subquery(self, engine):
        result = sorted_rows(
            engine,
            "SELECT x.a FROM (SELECT a FROM t WHERE a > 1) x",
        )
        assert result == [(2,), (2,), (3,)]

    def test_subquery_with_aggregation(self, engine):
        result = rows(
            engine,
            "SELECT s.n FROM (SELECT a, COUNT(*) AS n FROM t GROUP BY a) s "
            "WHERE s.a = 2",
        )
        assert result == [(2,)]

    def test_join_subquery_with_table(self, engine):
        result = sorted_rows(
            engine,
            "SELECT u.d FROM (SELECT DISTINCT a FROM t) x, u WHERE x.a = u.a",
        )
        assert result == [(100,), (200,)]

    def test_aggregate_over_subquery(self, engine):
        result = rows(
            engine,
            "SELECT COUNT(*) FROM (SELECT DISTINCT b FROM t) x",
        )
        assert result == [(4,)]


class TestErrors:
    def test_unknown_table(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("SELECT * FROM missing")

    def test_unknown_column(self, engine):
        with pytest.raises(BindError):
            engine.execute("SELECT zz FROM t")

    def test_ambiguous_column(self, engine):
        with pytest.raises(BindError):
            engine.execute("SELECT a FROM t, u")

    def test_duplicate_alias(self, engine):
        with pytest.raises(BindError):
            engine.execute("SELECT 1 FROM t x, u x")

    def test_unknown_function(self, engine):
        with pytest.raises(BindError):
            engine.execute("SELECT nosuchfn(a) FROM t")

    def test_aggregate_in_where_rejected(self, engine):
        with pytest.raises(BindError):
            engine.execute("SELECT a FROM t WHERE COUNT(*) > 1")


class TestResultHelpers:
    def test_scalar(self, engine):
        assert engine.execute("SELECT COUNT(*) FROM t").scalar() == 5
        assert engine.execute("SELECT a FROM t WHERE FALSE").scalar() is None

    def test_scalar_rejects_multi_row(self, engine):
        # Regression: scalar() used to return the first row's first cell
        # of a multi-row result, silently masking a malformed query.
        result = engine.execute("SELECT a FROM t WHERE a = 2")
        assert len(result.rows) == 2
        with pytest.raises(ValueError, match="2-row result"):
            result.scalar()

    def test_scalar_rejects_multi_column(self, engine):
        result = engine.execute("SELECT a, b FROM t WHERE a = 1")
        with pytest.raises(ValueError, match="2-column row"):
            result.scalar()

    def test_column(self, engine):
        result = engine.execute("SELECT a, b FROM t WHERE a = 1")
        assert result.column("b") == ["x"]

    def test_as_dicts(self, engine):
        result = engine.execute("SELECT a, b FROM t WHERE a = 1")
        assert result.as_dicts() == [{"a": 1, "b": "x"}]

    def test_bool_and_len(self, engine):
        assert engine.execute("SELECT 1")
        assert not engine.execute("SELECT 1 FROM t WHERE FALSE")
        assert len(engine.execute("SELECT * FROM t")) == 5

    def test_is_empty(self, engine):
        assert engine.is_empty("SELECT * FROM t WHERE a = 99")
        assert not engine.is_empty("SELECT * FROM t")

    def test_plan_cache_reuse(self, engine):
        plan1 = engine.plan("SELECT * FROM t")
        plan2 = engine.plan("SELECT * FROM t")
        assert plan1 is plan2
        engine.invalidate_plans()
        assert engine.plan("SELECT * FROM t") is not plan1


class TestIndexScanEquivalence:
    def test_index_scan_matches_filter_semantics(self, engine):
        # both paths (index probe vs scan+filter) must agree
        via_index = rows(engine, "SELECT * FROM t WHERE a = 2")
        via_scan = [r for r in rows(engine, "SELECT * FROM t") if r[0] == 2]
        assert via_index == via_scan

    def test_index_scan_with_residual_predicate(self, engine):
        result = rows(engine, "SELECT b FROM t WHERE a = 2 AND c > 25")
        assert result == [("z",)]

    def test_constant_expression_probe(self, engine):
        assert rows(engine, "SELECT b FROM t WHERE a = 1 + 0") == [("x",)]
