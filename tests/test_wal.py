"""Unit tests for the write-ahead log: framing, sequencing, scanning,
checkpoint/reset, and crash-free recovery equivalence."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.log import SimulatedClock, standard_registry
from repro.storage import (
    StorageError,
    WalError,
    WriteAheadLog,
    checkpoint,
    has_state,
    initialize_durability,
    read_wal,
    recover_enforcer,
    tear,
)

RATE_POLICY = (
    "SELECT DISTINCT 'too fast' FROM users u, groups g, clock c "
    "WHERE u.uid = g.uid AND g.gid = 'x' AND u.ts > c.ts - 100 "
    "HAVING COUNT(DISTINCT u.ts) > 3"
)


def make_enforcer(**options) -> Enforcer:
    db = Database()
    db.load_table(
        "items",
        ["iid", "owner"],
        [(f"i{i}", f"u{i % 2}") for i in range(4)],
    )
    db.load_table("groups", ["uid", "gid"], [("alice", "x"), ("bob", "x")])
    policy = Policy.from_sql("rate", RATE_POLICY, "rate limit")
    return Enforcer(
        db,
        [policy],
        registry=standard_registry(),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions(**options),
    )


QUERIES = [
    ("SELECT iid FROM items", "alice"),
    ("SELECT owner FROM items", "bob"),
    ("SELECT iid FROM items WHERE owner = 'u0'", "alice"),
    ("SELECT iid FROM items", "alice"),
    ("SELECT iid FROM items", "alice"),
    ("SELECT iid FROM items", "bob"),
]


def run_stream(enforcer, queries):
    return [
        (d.allowed, d.timestamp)
        for d in (enforcer.submit(q, uid=u) for q, u in queries)
    ]


class TestFraming:
    def test_records_roundtrip_with_sequence_numbers(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        assert wal.append({"type": "commit", "x": 1}) == 1
        assert wal.append({"type": "reject", "y": 2}) == 2
        assert wal.last_seq == 2
        wal.close()

        scan = read_wal(tmp_path / "wal.jsonl")
        assert not scan.torn
        assert [r["type"] for r in scan.records] == [
            "header", "commit", "reject",
        ]
        assert [r.get("seq") for r in scan.records] == [None, 1, 2]

    def test_reopen_resumes_sequence(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append({"type": "commit"})
        wal.close()
        resumed = WriteAheadLog(tmp_path / "wal.jsonl", start_seq=1)
        assert resumed.append({"type": "commit"}) == 2
        resumed.close()

    def test_corrupt_checksum_stops_the_scan(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"type": "commit", "n": 1})
        wal.append({"type": "commit", "n": 2})
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a payload byte of the middle record; its crc no longer
        # matches, so the scan must stop before it.
        corrupted = lines[1][:-2] + b"X" + lines[1][-1:]
        path.write_bytes(lines[0] + corrupted + lines[2])

        scan = read_wal(path)
        assert scan.torn
        assert [r.get("n") for r in scan.records] == [None]
        assert scan.valid_bytes == len(lines[0])

    def test_record_without_trailing_newline_is_accepted(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"type": "commit"})
        wal.close()
        tear(path, path.stat().st_size - 1)  # drop only the newline
        scan = read_wal(path)
        assert not scan.torn
        assert scan.records[-1]["type"] == "commit"

    def test_torn_mid_record_keeps_the_valid_prefix(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"type": "commit", "n": 1})
        wal.append({"type": "commit", "n": 2})
        wal.close()
        tear(path, path.stat().st_size - 7)
        scan = read_wal(path)
        assert scan.torn
        assert [r.get("n") for r in scan.records] == [None, 1]

    def test_missing_header_is_an_error(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        payload = json.dumps({"type": "commit", "seq": 1}).encode()
        path.write_bytes(b"%08x " % zlib.crc32(payload) + payload + b"\n")
        with pytest.raises(WalError, match="header"):
            read_wal(path)

    def test_unknown_version_is_an_error(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        payload = json.dumps(
            {"type": "header", "version": 99}, separators=(",", ":"),
            sort_keys=True,
        ).encode()
        path.write_bytes(b"%08x " % zlib.crc32(payload) + payload + b"\n")
        with pytest.raises(WalError, match="version"):
            read_wal(path)

    def test_reset_truncates_but_keeps_sequencing(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"type": "commit"})
        wal.append({"type": "commit"})
        wal.reset()
        assert wal.last_seq == 2
        assert wal.append({"type": "commit"}) == 3
        wal.close()
        scan = read_wal(path)
        assert [r.get("seq") for r in scan.records] == [None, 3]


class TestEnforcerJournal:
    def test_one_record_per_query(self, tmp_path):
        enforcer = make_enforcer()
        wal = initialize_durability(enforcer, tmp_path)
        decisions = run_stream(enforcer, QUERIES)
        wal.close()
        assert [d[0] for d in decisions] == [
            True, True, True, False, False, False,
        ]
        scan = read_wal(tmp_path / "wal.jsonl")
        kinds = [r["type"] for r in scan.records if r["type"] != "header"]
        assert kinds.count("commit") == 3
        assert kinds.count("reject") == 3
        assert wal.last_seq == len(QUERIES)

    def test_rejected_query_records_clock_and_tids(self, tmp_path):
        enforcer = make_enforcer()
        wal = initialize_durability(enforcer, tmp_path)
        run_stream(enforcer, QUERIES[:5])
        wal.close()
        scan = read_wal(tmp_path / "wal.jsonl")
        reject = next(r for r in scan.records if r["type"] == "reject")
        assert reject["ts"] > 0
        assert set(reject["next_tid"]) == {"users", "schema", "provenance"}

    def test_has_state_and_genesis_checkpoint(self, tmp_path):
        assert not has_state(tmp_path)
        enforcer = make_enforcer()
        wal = initialize_durability(enforcer, tmp_path)
        wal.close()
        assert has_state(tmp_path)
        assert (tmp_path / "checkpoint" / "manifest.json").exists()

    def test_recover_without_state_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no durable"):
            recover_enforcer(tmp_path)


class TestRecovery:
    @pytest.mark.parametrize(
        "options",
        [{}, {"log_compaction": True, "compaction_every": 2}],
        ids=["noopt", "compaction"],
    )
    def test_recovered_decisions_match_uncrashed_twin(
        self, tmp_path, options
    ):
        enforcer = make_enforcer(**options)
        wal = initialize_durability(enforcer, tmp_path)
        prefix = run_stream(enforcer, QUERIES[:4])
        wal.close()  # abandon the in-memory state: simulated crash

        twin = make_enforcer(**options)
        assert run_stream(twin, QUERIES[:4]) == prefix

        recovered, rwal, report = recover_enforcer(
            tmp_path, clock=SimulatedClock(default_step_ms=10)
        )
        assert report.last_seq == 4
        assert report.replayed == 4
        assert run_stream(recovered, QUERIES[4:]) == run_stream(
            twin, QUERIES[4:]
        )
        for name in ("users", "schema", "provenance"):
            assert (
                recovered.database.table(name).rows()
                == twin.database.table(name).rows()
            )
            assert (
                recovered.database.table(name).tids()
                == twin.database.table(name).tids()
            )
        rwal.close()

    def test_recovery_continues_the_journal(self, tmp_path):
        enforcer = make_enforcer()
        wal = initialize_durability(enforcer, tmp_path)
        run_stream(enforcer, QUERIES[:3])
        wal.close()
        recovered, rwal, report = recover_enforcer(
            tmp_path, clock=SimulatedClock(default_step_ms=10)
        )
        run_stream(recovered, QUERIES[3:])
        assert rwal.last_seq == len(QUERIES)
        rwal.close()
        # A second recovery sees every query, all from the same journal.
        again, awal, report2 = recover_enforcer(
            tmp_path, clock=SimulatedClock(default_step_ms=10)
        )
        assert report2.last_seq == len(QUERIES)
        awal.close()

    def test_checkpoint_truncates_and_replay_skips_covered(self, tmp_path):
        enforcer = make_enforcer()
        wal = initialize_durability(enforcer, tmp_path)
        run_stream(enforcer, QUERIES[:3])
        checkpoint(enforcer, tmp_path, wal)
        run_stream(enforcer, QUERIES[3:5])
        wal.close()

        recovered, rwal, report = recover_enforcer(
            tmp_path, clock=SimulatedClock(default_step_ms=10)
        )
        assert report.checkpoint_seq == 3
        assert report.replayed == 2
        assert report.skipped == 0
        twin = make_enforcer()
        run_stream(twin, QUERIES[:5])
        assert run_stream(recovered, QUERIES[5:]) == run_stream(
            twin, QUERIES[5:]
        )
        rwal.close()

    def test_explain_does_not_pollute_the_journal(self, tmp_path):
        from repro.core import explain_decision

        enforcer = make_enforcer()
        wal = initialize_durability(enforcer, tmp_path)
        decisions = [enforcer.submit(q, uid=u) for q, u in QUERIES[:4]]
        rejected = decisions[-1]
        assert not rejected.allowed
        explain_decision(enforcer, rejected)
        assert wal.last_seq == 4  # the diagnostic re-staging wrote nothing
        wal.close()
