"""The versioned surfaces: the ``/v1`` HTTP envelope, the legacy
aliases (with their ``Deprecation`` pointers), and the stable
``repro.api`` Python facade.
"""

from __future__ import annotations

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.api import EnforcerBuilder, connect
from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.log import SimulatedClock
from repro.obs import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.server import API_VERSION, ERROR_CODES, serve, versioned_envelope

NO_JOINS_SQL = (
    "SELECT DISTINCT 'no external joins' FROM schema p1, schema p2 "
    "WHERE p1.ts = p2.ts AND p1.irid = 'navteq' AND p2.irid <> 'navteq'"
)
JOIN_QUERY = "SELECT n.id FROM navteq n, other o WHERE n.id = o.id"


def make_database() -> Database:
    db = Database()
    db.load_table("navteq", ["id", "lat"], [(1, 47.0), (2, 40.0)])
    db.load_table("other", ["id"], [(1,)])
    return db


@pytest.fixture
def server():
    enforcer = Enforcer(
        make_database(),
        [Policy.from_sql("no-joins", NO_JOINS_SQL)],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    httpd = serve(enforcer, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


def raw_request(server, method, path, body=None, raw_body=None):
    connection = HTTPConnection(*server.server_address)
    payload = raw_body
    headers = {}
    if body is not None:
        payload = json.dumps(body).encode()
    if payload is not None:
        headers["Content-Type"] = "application/json"
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    data = response.read()
    header_map = dict(response.getheaders())
    connection.close()
    return response.status, data, header_map


def json_request(server, method, path, body=None, raw_body=None):
    status, data, headers = raw_request(
        server, method, path, body=body, raw_body=raw_body
    )
    return status, json.loads(data.decode()), headers


class TestEnvelopeUnit:
    def test_success_body_goes_under_data(self):
        assert versioned_envelope(200, {"allowed": True}) == {
            "api_version": API_VERSION,
            "data": {"allowed": True},
        }

    def test_denial_is_data_not_error(self):
        wrapped = versioned_envelope(403, {"allowed": False, "violations": []})
        assert "error" not in wrapped
        assert wrapped["data"]["allowed"] is False

    def test_error_string_becomes_coded_object(self):
        wrapped = versioned_envelope(
            429,
            {"error": "shard admission queue is full", "shard": 0,
             "retry_after": 1.5},
        )
        assert wrapped == {
            "api_version": API_VERSION,
            "error": {
                "code": "overloaded",
                "message": "shard admission queue is full",
                "shard": 0,
                "retry_after": 1.5,
            },
        }

    def test_every_mapped_status_has_a_stable_code(self):
        assert ERROR_CODES == {
            400: "invalid_request",
            404: "not_found",
            409: "conflict",
            429: "overloaded",
            503: "draining",
        }


class TestV1Surface:
    def test_allowed_query(self, server):
        status, body, headers = json_request(
            server, "POST", "/v1/query",
            {"sql": "SELECT id FROM navteq", "uid": 3},
        )
        assert status == 200
        assert body["api_version"] == API_VERSION
        data = body["data"]
        assert data["allowed"] is True
        assert sorted(data["rows"]) == [[1], [2]]
        assert "Deprecation" not in headers

    def test_denied_query_arrives_under_data(self, server):
        status, body, _ = json_request(
            server, "POST", "/v1/query", {"sql": JOIN_QUERY, "uid": 3}
        )
        assert status == 403
        assert "error" not in body
        data = body["data"]
        assert data["allowed"] is False
        assert data["violations"][0]["policy"] == "no-joins"

    def test_missing_sql_is_invalid_request(self, server):
        status, body, _ = json_request(
            server, "POST", "/v1/query", {"uid": 3}
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"
        assert "sql" in body["error"]["message"]

    def test_unparseable_body_is_invalid_request(self, server):
        status, body, _ = json_request(
            server, "POST", "/v1/query", raw_body=b"not json"
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_policy_lifecycle_and_conflict(self, server):
        status, body, _ = json_request(
            server, "POST", "/v1/policies",
            {"name": "extra", "sql": NO_JOINS_SQL},
        )
        assert status == 201
        assert body["data"]["registered"] == "extra"

        status, body, _ = json_request(
            server, "POST", "/v1/policies",
            {"name": "extra", "sql": NO_JOINS_SQL},
        )
        assert status == 409
        assert body["error"]["code"] == "conflict"

        status, body, _ = json_request(
            server, "DELETE", "/v1/policies/extra"
        )
        assert status == 200
        assert body["data"]["removed"] == "extra"

    def test_removing_unknown_policy_is_not_found(self, server):
        status, body, _ = json_request(
            server, "DELETE", "/v1/policies/ghost"
        )
        assert status == 404
        assert body["error"]["code"] == "not_found"

    def test_reads_are_enveloped(self, server):
        for path, key in (
            ("/v1/health", "status"),
            ("/v1/policies", "policies"),
            ("/v1/stats", "shards"),
            ("/v1/log", "log"),
        ):
            status, body, _ = json_request(server, "GET", path)
            assert status == 200
            assert body["api_version"] == API_VERSION
            assert key in body["data"]

    def test_metrics_stays_prometheus_text(self, server):
        status, data, headers = raw_request(server, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"] == METRICS_CONTENT_TYPE
        assert b"repro_shards" in data
        assert not data.lstrip().startswith(b"{")
        assert "Deprecation" not in headers

    def test_unknown_v1_path_is_enveloped_without_deprecation(self, server):
        status, body, headers = json_request(server, "GET", "/v1/nope")
        assert status == 404
        assert body["error"]["code"] == "not_found"
        assert "Deprecation" not in headers


class TestLegacyAliases:
    def test_legacy_query_keeps_shape_and_is_deprecated(self, server):
        status, body, headers = json_request(
            server, "POST", "/query", {"sql": "SELECT id FROM navteq", "uid": 3}
        )
        assert status == 200
        assert "api_version" not in body
        assert body["allowed"] is True
        assert headers["Deprecation"] == "true"
        assert headers["Link"] == '</v1/query>; rel="successor-version"'

    def test_legacy_error_keeps_flat_shape(self, server):
        status, body, headers = json_request(
            server, "POST", "/query", {"uid": 3}
        )
        assert status == 400
        assert body == {"error": "missing 'sql'"}
        assert headers["Deprecation"] == "true"

    def test_legacy_metrics_is_deprecated_text(self, server):
        status, data, headers = raw_request(server, "GET", "/metrics")
        assert status == 200
        assert b"repro_shards" in data
        assert headers["Deprecation"] == "true"
        assert headers["Link"] == '</v1/metrics>; rel="successor-version"'

    def test_legacy_reads_are_deprecated(self, server):
        for path in ("/health", "/policies", "/stats", "/log", "/slowlog"):
            status, body, headers = json_request(server, "GET", path)
            assert status == 200
            assert "api_version" not in body
            assert headers["Deprecation"] == "true"
            assert headers["Link"] == f'</v1{path}>; rel="successor-version"'

    def test_unknown_legacy_path_has_no_deprecation(self, server):
        status, body, headers = json_request(server, "GET", "/nope")
        assert status == 404
        assert body == {"error": "not found"}
        assert "Deprecation" not in headers


class TestPythonFacade:
    def test_connect_is_keyword_only(self):
        with pytest.raises(TypeError):
            connect(make_database())  # noqa: E501 - positional must be rejected

    def test_connect_builds_a_working_enforcer(self):
        enforcer = connect(
            database=make_database(),
            policies=[Policy.from_sql("no-joins", NO_JOINS_SQL)],
            clock=SimulatedClock(default_step_ms=10),
        )
        assert enforcer.submit("SELECT id FROM navteq", uid=1).allowed
        assert not enforcer.submit(JOIN_QUERY, uid=1).allowed

    def test_connect_profiles_match_the_option_factories(self):
        db = make_database()
        assert (
            connect(database=db).options == EnforcerOptions.datalawyer()
        )
        assert (
            connect(database=db, profile="noopt").options
            == EnforcerOptions.noopt()
        )

    def test_connect_rejects_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown profile"):
            connect(database=make_database(), profile="turbo")

    def test_connect_rejects_unknown_option(self):
        with pytest.raises(TypeError):
            connect(database=make_database(), warp_speed=True)

    def test_connect_layers_overrides_over_the_profile(self):
        enforcer = connect(database=make_database(), decision_cache=True)
        assert enforcer.options.decision_cache is True
        assert enforcer.options == EnforcerOptions.datalawyer(
            decision_cache=True
        )

    def test_builder_chains_and_builds(self):
        enforcer = (
            EnforcerBuilder(make_database())
            .policy("no-joins", NO_JOINS_SQL)
            .clock(SimulatedClock(default_step_ms=10))
            .options(decision_cache=True)
            .build()
        )
        assert not enforcer.submit(JOIN_QUERY, uid=1).allowed
        enforcer.submit("SELECT id FROM navteq", uid=1)
        enforcer.submit("SELECT id FROM navteq", uid=1)
        assert enforcer.decision_cache.stats.hits == 1

    def test_builder_accepts_prebuilt_policies(self):
        policy = Policy.from_sql("no-joins", NO_JOINS_SQL)
        enforcer = EnforcerBuilder(make_database()).policies(policy).build()
        assert [p.name for p in enforcer.policies] == ["no-joins"]

    def test_builder_validates_profile_at_build_time(self):
        builder = EnforcerBuilder(make_database()).profile("turbo")
        with pytest.raises(ValueError, match="unknown profile"):
            builder.build()

    def test_builder_is_reusable(self):
        builder = EnforcerBuilder(make_database()).policy(
            "no-joins", NO_JOINS_SQL
        )
        first, second = builder.build(), builder.build()
        assert first is not second
        assert first.database is second.database
