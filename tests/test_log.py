"""Usage-log tests: clock, schema analysis, log functions, registry, store."""

import pytest

from repro.engine import Database, Engine
from repro.errors import PolicyError, UnknownLogRelationError
from repro.log import (
    PROVENANCE,
    SCHEMA,
    USERS,
    LogFunction,
    LogicalClock,
    LogRegistry,
    LogStore,
    QueryContext,
    SchemaAnalyzer,
    SimulatedClock,
    standard_registry,
)


@pytest.fixture
def db():
    db = Database()
    db.load_table("t", ["a", "b", "c"], [(1, 2, 3), (4, 5, 6)])
    db.load_table("navteq", ["id", "lat"], [(1, 47.0)])
    return db


@pytest.fixture
def engine(db):
    return Engine(db)


def ctx(engine, sql, uid=0, ts=1):
    return QueryContext.create(sql, uid, ts, engine)


class TestClocks:
    def test_logical_clock_advances_by_step(self):
        clock = LogicalClock(start=5, step=2)
        assert clock.now() == 5
        assert clock.advance() == 7
        assert clock.advance() == 9

    def test_logical_clock_rejects_bad_step(self):
        with pytest.raises(ValueError):
            LogicalClock(step=0)

    def test_simulated_clock_sleep(self):
        clock = SimulatedClock(start_ms=100, default_step_ms=10)
        clock.advance()
        clock.sleep(500)
        assert clock.now() == 610

    def test_simulated_clock_rejects_negative_sleep(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.sleep(-1)


class TestSchemaAnalysis:
    """fSchema static analysis (Example 3.3)."""

    def test_paper_example(self, db):
        # SELECT T.A AS K, (T.B + T.C) AS L FROM T → three rows
        from repro.sql import parse

        rows = SchemaAnalyzer(db).analyze(parse("SELECT t.a AS k, t.b + t.c AS l FROM t"))
        assert ("k", "t", "a", False) in rows
        assert ("l", "t", "b", False) in rows
        assert ("l", "t", "c", False) in rows

    def test_star_expansion(self, db):
        from repro.sql import parse

        rows = SchemaAnalyzer(db).analyze(parse("SELECT * FROM t"))
        output = {(r[0], r[2]) for r in rows if r[0] is not None}
        assert output == {("a", "a"), ("b", "b"), ("c", "c")}

    def test_aggregate_flag(self, db):
        from repro.sql import parse

        rows = SchemaAnalyzer(db).analyze(
            parse("SELECT COUNT(t.a) AS n FROM t GROUP BY t.b")
        )
        assert ("n", "t", "a", True) in rows

    def test_where_columns_recorded_with_null_ocid(self, db):
        from repro.sql import parse

        rows = SchemaAnalyzer(db).analyze(parse("SELECT t.a FROM t WHERE t.c > 0"))
        assert (None, "t", "c", False) in rows

    def test_join_touches_both_relations(self, db):
        from repro.sql import parse

        rows = SchemaAnalyzer(db).analyze(
            parse("SELECT t.a FROM t, navteq n WHERE t.a = n.id")
        )
        relations = {r[1] for r in rows}
        assert relations == {"t", "navteq"}

    def test_subquery_derivation_chases_to_base(self, db):
        from repro.sql import parse

        rows = SchemaAnalyzer(db).analyze(
            parse("SELECT x.k FROM (SELECT a AS k FROM t) x")
        )
        assert ("k", "t", "a", False) in rows

    def test_union_merges_derivations(self, db):
        from repro.sql import parse

        rows = SchemaAnalyzer(db).analyze(
            parse("SELECT a FROM t UNION SELECT id FROM navteq")
        )
        relations = {r[1] for r in rows}
        assert relations == {"t", "navteq"}


class TestLogFunctions:
    def test_users_row(self, engine):
        rows = USERS.generate(ctx(engine, "SELECT * FROM t", uid=42))
        assert rows == [(42,)]

    def test_schema_rows(self, engine):
        rows = SCHEMA.generate(ctx(engine, "SELECT t.a FROM t"))
        assert ("a", "t", "a", False) in rows

    def test_provenance_rows(self, engine):
        rows = PROVENANCE.generate(ctx(engine, "SELECT a FROM t WHERE a = 1"))
        assert rows == [(0, "t", 0)]

    def test_provenance_multiple_outputs(self, engine):
        rows = PROVENANCE.generate(ctx(engine, "SELECT a FROM t"))
        assert rows == [(0, "t", 0), (1, "t", 1)]

    def test_lineage_result_is_cached(self, engine):
        context = ctx(engine, "SELECT a FROM t")
        assert context.lineage_result() is context.lineage_result()

    def test_full_columns_include_ts(self):
        assert USERS.full_columns == ["ts", "uid"]
        assert SCHEMA.full_columns[0] == "ts"


class TestRegistry:
    def test_standard_order_is_cost_order(self):
        registry = standard_registry()
        assert registry.names() == ["users", "schema", "provenance"]

    def test_lookup_and_membership(self):
        registry = standard_registry()
        assert registry.get("USERS").name == "users"
        assert registry.is_log_relation("schema")
        assert not registry.is_log_relation("d_patients")

    def test_unknown_relation(self):
        with pytest.raises(UnknownLogRelationError):
            standard_registry().get("nope")

    def test_duplicate_registration_rejected(self):
        registry = standard_registry()
        with pytest.raises(ValueError):
            registry.register(USERS)

    def test_custom_function(self, engine):
        device = LogFunction(
            name="devices",
            columns=("device",),
            generate=lambda c: [(c.attributes.get("device", "unknown"),)],
            cost_rank=0,
        )
        registry = LogRegistry([device, USERS])
        assert set(registry.names()) == {"devices", "users"}
        context = ctx(engine, "SELECT 1", uid=1)
        context.attributes["device"] = "mobile"
        assert device.generate(context) == [("mobile",)]

    def test_subset(self):
        registry = standard_registry().subset(["users"])
        assert registry.names() == ["users"]


class TestLogStore:
    @pytest.fixture
    def store(self, db):
        return LogStore(db, standard_registry())

    def test_creates_log_tables_and_clock(self, db, store):
        for name in ("users", "schema", "provenance", "clock"):
            assert db.has_table(name)

    def test_set_time(self, db, store):
        store.set_time(99)
        assert store.current_time() == 99
        store.set_time(100)
        assert len(db.table("clock")) == 1

    def test_stage_prepends_timestamp(self, db, store):
        store.stage("users", [(7,)], timestamp=5)
        assert db.table("users").rows() == [(5, 7)]
        assert store.staged_tids("users") == [0]

    def test_stage_unknown_relation(self, store):
        with pytest.raises(PolicyError):
            store.stage("nope", [(1,)], 1)

    def test_discard_staged_reverts(self, db, store):
        store.stage("users", [(7,), (8,)], 5)
        dropped = store.discard_staged()
        assert dropped == 2
        assert len(db.table("users")) == 0
        assert not store.staged_relations()

    def test_commit_without_marks_persists_everything(self, db, store):
        store.stage("users", [(7,)], 5)
        stats = store.commit(None)
        assert stats.tuples_inserted == 1
        assert store.disk_size("users") == 1
        assert db.table("users").rows() == [(5, 7)]

    def test_commit_with_marks_filters_increment(self, db, store):
        store.stage("users", [(7,), (8,)], 5)
        tids = store.staged_tids("users")
        stats = store.commit({"users": {tids[0]}}, persist_relations=["users"])
        assert stats.tuples_inserted == 1
        assert stats.tuples_deleted == 1
        assert db.table("users").rows() == [(5, 7)]

    def test_commit_compacts_disk_tuples(self, db, store):
        store.stage("users", [(7,)], 1)
        store.commit(None)
        store.stage("users", [(8,)], 2)
        keep = set(store.staged_tids("users"))
        store.commit({"users": keep}, persist_relations=["users"])
        assert db.table("users").rows() == [(2, 8)]
        assert store.disk_size("users") == 1

    def test_unpersisted_relations_discard_increment(self, db, store):
        store.stage("schema", [("o", "t", "a", False)], 5)
        stats = store.commit(None, persist_relations=["users"])
        assert stats.tuples_discarded == 1
        assert len(db.table("schema")) == 0

    def test_live_vs_disk_size(self, store):
        store.stage("users", [(7,)], 5)
        assert store.live_size("users") == 1
        assert store.disk_size("users") == 0
        store.commit(None)
        assert store.disk_size("users") == 1

    def test_empty_marks_delete_all(self, db, store):
        store.stage("users", [(7,)], 1)
        store.commit(None)
        store.commit({"users": set()}, persist_relations=["users"])
        assert len(db.table("users")) == 0
