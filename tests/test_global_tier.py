"""Global policy tier: cross-shard enforcement of cross-user policies.

The tentpole properties:

1. ``classify_policy`` refines "global" into a three-way verdict —
   ``local`` / ``global-async`` (monotone aggregate, incrementally
   maintainable) / ``global-strict`` (everything else);
2. the async tier is *sound up to the documented staleness window*: the
   one query whose own increment crosses a threshold may be admitted,
   and every later query is denied once its delta has folded;
3. the strict tier is bit-identical to a single-shard oracle over
   interleaved multi-uid streams — including across worker crashes and
   aggregator restarts;
4. the tier's state is durable: aggregate state rebuilds exactly from
   the shards' WAL-recovered disk images, runtime-added policies keep
   their history floors, and the checkpointed global set is
   authoritative across restarts.
"""

import multiprocessing
import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Enforcer, Policy
from repro.errors import (
    PolicyPlacementError,
    ServiceError,
    WorkerCrashError,
)
from repro.log import SimulatedClock
from repro.service import (
    GLOBAL_SCOPES,
    SCOPE_GLOBAL_ASYNC,
    SCOPE_GLOBAL_STRICT,
    SCOPE_LOCAL,
    ProcessShard,
    ServiceConfig,
    ShardedEnforcerService,
    classify_policy,
)
from repro.workloads import (
    MarketplaceConfig,
    MimicConfig,
    build_marketplace_database,
    build_mimic_database,
    standard_contract,
)
from repro.workloads.policies import (
    PolicyParams,
    make_all_policies,
    make_p1,
    monthly_quota,
)

MIMIC_CONFIG = MimicConfig(n_patients=80)
#: Tight P1 so four distinct group-X users cross the cap quickly; the
#: huge window keeps every submit inside it.
MIMIC_PARAMS = PolicyParams.for_config(
    MIMIC_CONFIG, p1_max_users=3, p1_window=10_000_000
)
#: Aggregate shape so no local mimic policy (P4's support floor) fires.
HR_COUNT = "SELECT COUNT(value1num) FROM chartevents WHERE itemid = 211"
#: uids 2..5 sit in group X alongside uid 1; uid 1 is the restricted
#: user P2–P4 target, so streams avoid it unless a test wants P4.
GROUP_X = [2, 3, 4, 5]


def mimic_enforcer():
    return Enforcer(
        build_mimic_database(MIMIC_CONFIG),
        make_all_policies(MIMIC_PARAMS),
        clock=SimulatedClock(default_step_ms=10),
    )


def marketplace_enforcer(config=None):
    config = config or MarketplaceConfig(
        free_tier_tuples=1500, free_tier_window=10_000_000
    )
    return Enforcer(
        build_marketplace_database(config),
        standard_contract(config),
        clock=SimulatedClock(default_step_ms=10),
    )


def make_service(enforcer, shards, tier, **overrides):
    defaults = dict(shards=shards, routing="modulo", global_tier=tier)
    defaults.update(overrides)
    return ShardedEnforcerService(enforcer, ServiceConfig(**defaults))


def decisions_of(service, stream):
    out = []
    for sql, uid in stream:
        d = service.submit(sql, uid=uid)
        out.append(
            (d.allowed, d.timestamp,
             tuple(sorted(v.policy_name for v in d.violations)))
        )
    return out


def submit_retrying(service, sql, uid, deadline=30.0):
    end = time.monotonic() + deadline
    while True:
        try:
            return service.submit(sql, uid=uid)
        except (ServiceError, WorkerCrashError):
            if time.monotonic() > end:
                raise
            time.sleep(0.05)


class TestThreeWayPlacement:
    def test_monotone_cross_user_aggregate_is_async(self):
        enforcer = mimic_enforcer()
        placement = classify_policy(
            make_p1(MIMIC_PARAMS), enforcer.registry, enforcer.database
        )
        assert placement.is_global
        assert placement.scope == SCOPE_GLOBAL_ASYNC

    def test_verdict_is_always_refined(self):
        # The umbrella "global" scope never comes back from the
        # classifier any more — every global verdict is async or strict.
        enforcer = mimic_enforcer()
        placement = classify_policy(make_p1(MIMIC_PARAMS), enforcer.registry)
        assert placement.is_global
        assert placement.scope in GLOBAL_SCOPES

    def test_non_monotone_global_is_strict(self):
        # An expanding window can *un*-violate as the clock advances —
        # not answerable from monotone folded state, so: strict.
        enforcer = mimic_enforcer()
        policy = Policy.from_sql(
            "aging",
            "SELECT DISTINCT 'stale' FROM users u, clock c "
            "WHERE u.uid = 3 AND u.ts < c.ts - 1000",
        )
        placement = classify_policy(
            policy, enforcer.registry, enforcer.database
        )
        assert placement.scope == SCOPE_GLOBAL_STRICT

    def test_uid_pinned_policies_stay_local(self):
        enforcer = mimic_enforcer()
        for policy in enforcer.policies:
            placement = classify_policy(
                policy, enforcer.registry, enforcer.database
            )
            if policy.name == "P1":
                assert placement.scope in GLOBAL_SCOPES
            else:
                assert placement.scope == SCOPE_LOCAL

    def test_config_rejects_unknown_mode_and_multiworker(self):
        with pytest.raises(ServiceError):
            ServiceConfig(shards=2, global_tier="sometimes")
        with pytest.raises(ServiceError):
            ServiceConfig(shards=2, workers=2, global_tier="async")

    def test_async_tier_refuses_strict_policies(self):
        # An expanding-window policy cannot be maintained from monotone
        # state; the async tier must refuse it with a pointer at strict.
        enforcer = mimic_enforcer()
        enforcer.add_policy(Policy.from_sql(
            "aging",
            "SELECT DISTINCT 'stale' FROM users u, clock c "
            "WHERE u.uid = 3 AND u.ts < c.ts - 1000",
        ))
        with pytest.raises(PolicyPlacementError, match="global-tier strict"):
            make_service(enforcer, 2, "async")

    def test_off_keeps_the_old_refusal(self):
        with pytest.raises(PolicyPlacementError, match="--shards 1"):
            make_service(mimic_enforcer(), 2, "off")


@pytest.mark.slow
class TestAsyncTier:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_p1_cross_user_cap_enforced_at_four_shards(self, mode):
        service = make_service(
            mimic_enforcer(), 4, "async", workers_mode=mode
        )
        try:
            results = []
            for i in range(10):
                d = service.submit(HR_COUNT, uid=GROUP_X[i % 4])
                service.flush_global()
                results.append(d)
            # Three distinct users fit; the fourth crosses the cap. Its
            # own increment is invisible to its own check (documented
            # staleness bound: exactly the submitting query), so the
            # crossing query is admitted once and everything after —
            # folded state now proves the violation — is denied.
            allowed = [d.allowed for d in results]
            assert allowed == [True] * 4 + [False] * 6
            assert all(
                v.policy_name == "P1"
                for d in results[4:] for v in d.violations
            )
            stats = service.stats()["global"]
            assert stats["policies"]["P1"]["scope"] == SCOPE_GLOBAL_ASYNC
            assert stats["denials"]["async"] == 6
            assert stats["delta_frames"] == 4  # denied queries commit no log
        finally:
            service.drain()

    def test_local_policies_still_enforced_on_shards(self):
        service = make_service(mimic_enforcer(), 4, "async")
        try:
            # P4 (local, pinned to uid 1) fires on a low-support output.
            denied = service.submit(
                "SELECT value1num FROM chartevents WHERE itemid = 211",
                uid=1,
            )
            assert not denied.allowed
            assert any(v.policy_name == "P4" for v in denied.violations)
        finally:
            service.drain()

    def test_metrics_families_render(self):
        service = make_service(mimic_enforcer(), 2, "async")
        try:
            service.submit(HR_COUNT, uid=2)
            service.flush_global()
            text = service.render_metrics()
            for family in (
                "repro_global_checks_total",
                "repro_global_denials_total",
                "repro_global_reservations_total",
                "repro_global_reservations_active",
                "repro_global_delta_frames_total",
                "repro_global_folds_total",
                "repro_global_delta_lag",
                "repro_global_staleness_seconds",
                'repro_global_policy_entries{policy="P1"}',
            ):
                assert family in text
        finally:
            service.drain()

    def test_policy_snapshot_carries_tier_placement(self):
        service = make_service(mimic_enforcer(), 2, "async")
        try:
            entries = {e["name"]: e for e in service.policies()}
            assert entries["P1"]["placement"] == SCOPE_GLOBAL_ASYNC
            assert entries["P1"]["classification"]["incrementalizable"]
            assert entries["P2"]["placement"] == SCOPE_LOCAL
        finally:
            service.drain()


@pytest.mark.slow
class TestStrictOracleEquivalence:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_interleaved_stream_matches_single_shard(self, mode):
        stream = [(HR_COUNT, GROUP_X[i % 4]) for i in range(12)]
        oracle = make_service(mimic_enforcer(), 1, "off")
        try:
            want = decisions_of(oracle, stream)
        finally:
            oracle.drain()
        service = make_service(
            mimic_enforcer(), 4, "strict", workers_mode=mode
        )
        try:
            assert decisions_of(service, stream) == want
            stats = service.stats()["global"]
            assert stats["checks"]["strict"] == len(stream)
            assert stats["checks"]["async"] == 0  # strict mode: no folding
        finally:
            service.drain()

    @settings(max_examples=6, deadline=None)
    @given(st.lists(st.integers(min_value=2, max_value=6),
                    min_size=1, max_size=16))
    def test_property_any_uid_stream_matches_oracle(self, uids):
        stream = [(HR_COUNT, uid) for uid in uids]
        oracle = make_service(mimic_enforcer(), 1, "off")
        try:
            want = decisions_of(oracle, stream)
        finally:
            oracle.drain()
        service = make_service(mimic_enforcer(), 3, "strict")
        try:
            assert decisions_of(service, stream) == want
        finally:
            service.drain()

    def test_marketplace_quota_matches_oracle(self):
        # The free-tier volume quota ranges over every user's provenance
        # — the cross-user aggregate the single-shard oracle enforces.
        stream = [("SELECT * FROM listings", i % 5 + 1) for i in range(24)]
        oracle = make_service(marketplace_enforcer(), 1, "off")
        try:
            want = decisions_of(oracle, stream)
        finally:
            oracle.drain()
        assert any(not allowed for allowed, _, _ in want)
        service = make_service(marketplace_enforcer(), 2, "strict")
        try:
            assert decisions_of(service, stream) == want
        finally:
            service.drain()

    def test_survives_worker_crash(self, tmp_path):
        """SIGKILL one shard at a quiescent point: the respawned worker
        recovers by WAL replay and the allow/deny stream stays identical
        to the oracle's (timestamps may diverge — a crash-window retry
        legitimately burns tier timestamps)."""
        stream = [(HR_COUNT, GROUP_X[i % 4]) for i in range(12)]
        oracle = make_service(mimic_enforcer(), 1, "off")
        try:
            want = [d[0] for d in decisions_of(oracle, stream)]
        finally:
            oracle.drain()

        service = make_service(
            mimic_enforcer(), 2, "strict",
            workers_mode="process", data_dir=str(tmp_path), wal_sync=True,
        )
        try:
            got = []
            for i, (sql, uid) in enumerate(stream):
                if i == 5:
                    shard = service.shards[0]
                    old_pid = shard.process_state()["pid"]
                    os.kill(old_pid, signal.SIGKILL)
                decision = submit_retrying(service, sql, uid)
                got.append(decision.allowed)
            assert got == want
        finally:
            service.drain()


@pytest.mark.slow
class TestTierDurability:
    def make(self, tmp_path, tier="async"):
        return make_service(
            mimic_enforcer(), 4, tier, data_dir=str(tmp_path), wal_sync=True
        )

    def test_aggregate_state_rebuilds_exactly(self, tmp_path):
        service = self.make(tmp_path)
        try:
            for uid in GROUP_X[:3]:
                assert service.submit(HR_COUNT, uid=uid).allowed
            service.flush_global()
            entries = service.stats()["global"]["policies"]["P1"]["entries"]
            last_ts = service.stats()["global"]
        finally:
            service.drain()

        service = self.make(tmp_path)
        try:
            stats = service.stats()["global"]
            assert stats["policies"]["P1"]["entries"] == entries
            # The fourth distinct user crosses the cap; async staleness
            # admits the crossing query once, then denies.
            crossing = service.submit(HR_COUNT, uid=GROUP_X[3])
            service.flush_global()
            assert crossing.allowed
            denied = service.submit(HR_COUNT, uid=2)
            assert not denied.allowed
            assert [v.policy_name for v in denied.violations] == ["P1"]
            # Coordinator timestamps resume after the recovered clock.
            assert crossing.timestamp > 0
            assert denied.timestamp > crossing.timestamp
        finally:
            service.drain()
        del last_ts

    def test_runtime_added_policy_history_starts_now(self, tmp_path):
        service = self.make(tmp_path)
        try:
            for _ in range(3):
                assert service.submit(HR_COUNT, uid=2).allowed
            service.flush_global()
            # Allow two more chartevents queries *from now on*; the
            # three already logged must not count against the floor.
            service.add_policy(monthly_quota("chartevents", 1, 10_000_000))
            first = service.submit(HR_COUNT, uid=3)
            service.flush_global()
            assert first.allowed
            second = service.submit(HR_COUNT, uid=4)
            service.flush_global()
            assert second.allowed  # crossing query: staleness bound
            third = service.submit(HR_COUNT, uid=5)
            assert not third.allowed
            assert any(
                v.policy_name == "quota-chartevents"
                for v in third.violations
            )
        finally:
            service.drain()

        # The checkpointed global set (P1 + the runtime add, with its
        # floor) is authoritative for the next incarnation.
        service = self.make(tmp_path)
        try:
            stats = service.stats()["global"]["policies"]
            assert set(stats) == {"P1", "quota-chartevents"}
            still = service.submit(HR_COUNT, uid=6)
            assert not still.allowed
        finally:
            service.drain()


@pytest.mark.slow
class TestStartupAbort:
    def test_placement_failure_leaves_no_live_workers(self):
        with pytest.raises(PolicyPlacementError, match="--shards 1"):
            make_service(
                mimic_enforcer(), 2, "off", workers_mode="process"
            )
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not multiprocessing.active_children():
                break
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_wedged_drain_still_terminates_workers(self, monkeypatch):
        """A shard that ignores drain (wedged worker) must still be
        terminated before the startup error propagates."""
        monkeypatch.setattr(
            ProcessShard, "drain", lambda self, timeout=None: None
        )
        with pytest.raises(PolicyPlacementError, match="--shards 1"):
            make_service(
                mimic_enforcer(), 2, "off", workers_mode="process"
            )
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not multiprocessing.active_children():
                break
            time.sleep(0.05)
        assert not multiprocessing.active_children()
