"""HTTP middleware tests (stdlib client against an in-process server)."""

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database
from repro.log import SimulatedClock
from repro.server import serve
from repro.service import ServiceConfig


@pytest.fixture
def server():
    db = Database()
    db.load_table("navteq", ["id", "lat"], [(1, 47.0), (2, 40.0)])
    db.load_table("other", ["id"], [(1,)])
    policy = Policy.from_sql(
        "no-joins",
        "SELECT DISTINCT 'no external joins' FROM schema p1, schema p2 "
        "WHERE p1.ts = p2.ts AND p1.irid = 'navteq' AND p2.irid <> 'navteq'",
    )
    enforcer = Enforcer(
        db,
        [policy],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    httpd = serve(enforcer, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


def request(server, method, path, body=None):
    connection = HTTPConnection(*server.server_address)
    payload = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    data = json.loads(response.read().decode())
    connection.close()
    return response.status, data


class TestQueryEndpoint:
    def test_allowed_query_returns_rows(self, server):
        status, body = request(
            server, "POST", "/query", {"sql": "SELECT id FROM navteq", "uid": 3}
        )
        assert status == 200
        assert body["allowed"] is True
        assert body["columns"] == ["id"]
        assert sorted(body["rows"]) == [[1], [2]]

    def test_rejected_query_returns_403_with_violations(self, server):
        status, body = request(
            server,
            "POST",
            "/query",
            {
                "sql": "SELECT n.id FROM navteq n, other o WHERE n.id = o.id",
                "uid": 3,
            },
        )
        assert status == 403
        assert body["allowed"] is False
        assert body["violations"][0]["policy"] == "no-joins"

    def test_explain_flag_adds_evidence(self, server):
        status, body = request(
            server,
            "POST",
            "/query",
            {
                "sql": "SELECT n.id FROM navteq n, other o WHERE n.id = o.id",
                "uid": 3,
                "explain": True,
            },
        )
        assert status == 403
        evidence = body["evidence"][0]["tuples"]
        assert any(t["from_current_query"] for t in evidence)

    def test_missing_sql(self, server):
        status, body = request(server, "POST", "/query", {"uid": 1})
        assert status == 400

    def test_bad_uid_type(self, server):
        status, _ = request(
            server, "POST", "/query", {"sql": "SELECT 1", "uid": "x"}
        )
        assert status == 400

    def test_boolean_uid_is_rejected(self, server):
        # bool subclasses int; JSON true must not silently become uid 1.
        status, body = request(
            server, "POST", "/query", {"sql": "SELECT 1", "uid": True}
        )
        assert status == 400
        assert "uid" in body["error"]

    def test_sql_error_is_400(self, server):
        status, body = request(
            server, "POST", "/query", {"sql": "SELEKT broken"}
        )
        assert status == 400
        assert "error" in body

    def test_invalid_json_body(self, server):
        connection = HTTPConnection(*server.server_address)
        connection.request(
            "POST", "/query", body=b"not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 400
        connection.close()

    @pytest.mark.parametrize("length", ["abc", "-5", "12; DROP"])
    def test_malformed_content_length_is_400(self, server, length):
        connection = HTTPConnection(*server.server_address)
        connection.putrequest("POST", "/query")
        connection.putheader("Content-Type", "application/json")
        connection.putheader("Content-Length", length)
        connection.endheaders()
        response = connection.getresponse()
        body = json.loads(response.read().decode())
        connection.close()
        assert response.status == 400
        assert "Content-Length" in body["error"]


class TestPolicyEndpoints:
    def test_list_policies(self, server):
        status, body = request(server, "GET", "/policies")
        assert status == 200
        assert body["policies"][0]["name"] == "no-joins"

    def test_add_policy_enforced_immediately(self, server):
        status, _ = request(
            server,
            "POST",
            "/policies",
            {
                "name": "no-other",
                "sql": "SELECT DISTINCT 'other is off-limits' FROM schema s "
                "WHERE s.irid = 'other'",
            },
        )
        assert status == 201
        status, body = request(
            server, "POST", "/query", {"sql": "SELECT * FROM other", "uid": 1}
        )
        assert status == 403
        assert any(
            v["message"] == "other is off-limits" for v in body["violations"]
        )

    def test_duplicate_policy_conflict(self, server):
        status, _ = request(
            server,
            "POST",
            "/policies",
            {"name": "no-joins", "sql": "SELECT 'x' FROM users u"},
        )
        assert status == 409

    def test_invalid_policy_sql(self, server):
        status, _ = request(
            server,
            "POST",
            "/policies",
            {"name": "bad", "sql": "SELECT 'a', 'b' FROM users"},
        )
        assert status == 400

    def test_remove_policy(self, server):
        status, _ = request(server, "DELETE", "/policies/no-joins")
        assert status == 200
        status, body = request(
            server,
            "POST",
            "/query",
            {"sql": "SELECT n.id FROM navteq n, other o WHERE n.id = o.id"},
        )
        assert status == 200

    def test_remove_unknown_policy(self, server):
        status, _ = request(server, "DELETE", "/policies/ghost")
        assert status == 404


class TestMisc:
    def test_health(self, server):
        status, body = request(server, "GET", "/health")
        assert status == 200 and body["status"] == "ok"

    def test_log_endpoint(self, server):
        request(server, "POST", "/query", {"sql": "SELECT id FROM navteq"})
        status, body = request(server, "GET", "/log")
        assert status == 200
        assert set(body["log"]) == {"users", "schema", "provenance"}

    def test_unknown_path(self, server):
        status, _ = request(server, "GET", "/nope")
        assert status == 404

    def test_stats_endpoint(self, server):
        request(server, "POST", "/query", {"sql": "SELECT id FROM navteq"})
        status, body = request(server, "GET", "/stats")
        assert status == 200
        assert body["shards"] == 1
        assert body["totals"]["admitted"] >= 1
        entry = body["per_shard"][0]
        assert {"p50_ms", "p95_ms", "queue_depth"} <= set(entry)

    def test_concurrent_submissions_serialize(self, server):
        errors = []

        def worker():
            try:
                for _ in range(5):
                    status, _ = request(
                        server,
                        "POST",
                        "/query",
                        {"sql": "SELECT id FROM navteq", "uid": 1},
                    )
                    assert status == 200
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors


def make_sharded_server(config):
    db = Database()
    db.load_table("navteq", ["id", "lat"], [(1, 47.0), (2, 40.0)])
    enforcer = Enforcer(
        db,
        [],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    httpd = serve(enforcer, port=0, config=config)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return httpd, thread


class TestShardedGateway:
    @pytest.fixture
    def sharded(self):
        httpd, thread = make_sharded_server(
            ServiceConfig(shards=4, routing="modulo")
        )
        yield httpd
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)

    def test_response_carries_shard(self, sharded):
        status, body = request(
            sharded, "POST", "/query",
            {"sql": "SELECT id FROM navteq", "uid": 6},
        )
        assert status == 200
        assert body["shard"] == 2  # 6 % 4 under modulo routing

    def test_log_endpoint_reports_per_shard(self, sharded):
        status, body = request(sharded, "GET", "/log")
        assert status == 200
        assert len(body["per_shard"]) == 4

    def test_global_policy_install_rejected(self, sharded):
        status, body = request(
            sharded, "POST", "/policies",
            {
                "name": "global-quota",
                "sql": "SELECT DISTINCT 'quota' FROM provenance p, clock c "
                "WHERE p.irid = 'navteq' AND p.ts > c.ts - 1000 "
                "HAVING COUNT(DISTINCT p.itid) > 5",
            },
        )
        assert status == 400
        assert "shard" in body["error"]


class TestOverloadedGateway:
    @pytest.fixture
    def slow(self):
        httpd, thread = make_sharded_server(
            ServiceConfig(
                shards=1, workers=1, queue_depth=1, dispatch_seconds=0.3
            )
        )
        yield httpd
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)

    def test_429_with_retry_after_under_load(self, slow):
        statuses = []
        headers_seen = []
        tally = threading.Lock()

        def client():
            connection = HTTPConnection(*slow.server_address)
            payload = json.dumps(
                {"sql": "SELECT id FROM navteq", "uid": 1}
            ).encode()
            connection.request(
                "POST", "/query", body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            with tally:
                statuses.append(response.status)
                headers_seen.append(response.getheader("Retry-After"))
            connection.close()

        threads = [threading.Thread(target=client) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert len(statuses) == 6
        assert 500 not in statuses  # overload is never an unhandled error
        assert statuses.count(429) >= 1
        assert statuses.count(200) >= 2
        retry_hints = [
            header
            for status, header in zip(statuses, headers_seen)
            if status == 429
        ]
        assert all(
            header is not None and int(header) >= 1 for header in retry_hints
        )

    def test_retry_after_header_ceils_fractional_hints(self):
        """The integer Retry-After header must never under-wait the
        precise JSON hint: 2.5 s must become "3", not banker's-round
        to "2" (regression: round() sent clients back too early)."""
        from repro.errors import ServiceOverloadedError

        httpd, thread = make_sharded_server(ServiceConfig(shards=1))
        try:
            def overloaded(sql, uid=0, **kwargs):
                raise ServiceOverloadedError(shard=0, retry_after=2.5)

            httpd.service.submit = overloaded
            connection = HTTPConnection(*httpd.server_address)
            connection.request(
                "POST", "/query",
                body=json.dumps({"sql": "SELECT id FROM navteq"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read().decode())
            connection.close()
            assert response.status == 429
            assert response.getheader("Retry-After") == "3"
            assert body["retry_after"] == 2.5  # JSON keeps the precise hint
        finally:
            httpd.shutdown()
            httpd.server_close()
            thread.join(timeout=5)
