"""Policy templates (§6 usability direction)."""

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.core.templates import (
    BUILTIN_TEMPLATES,
    PolicyTemplate,
    Slot,
    TemplateRegistry,
)
from repro.engine import Database
from repro.errors import PolicyError
from repro.log import SimulatedClock


class TestSlotValidation:
    def test_int_slot(self):
        slot = Slot("n", "a count", "int")
        assert slot.validate(5) == 5
        with pytest.raises(PolicyError):
            slot.validate("five")
        with pytest.raises(PolicyError):
            slot.validate(True)

    def test_float_slot(self):
        slot = Slot("x", "a number", "float")
        assert slot.validate(2.5) == 2.5
        assert slot.validate(2) == 2

    def test_identifier_slot(self):
        slot = Slot("rel", "a relation", "identifier")
        assert slot.validate("My_Table") == "my_table"
        with pytest.raises(PolicyError):
            slot.validate("bad-name")
        with pytest.raises(PolicyError):
            slot.validate("x; DROP TABLE t")

    def test_string_slot_escapes_quotes(self):
        slot = Slot("s", "a string")
        assert slot.validate("it's") == "it''s"


class TestInstantiation:
    def test_builtin_names(self):
        assert "rate-limit" in BUILTIN_TEMPLATES.names()
        assert "k-anonymity" in BUILTIN_TEMPLATES.names()

    def test_rate_limit_instantiates(self):
        policy = BUILTIN_TEMPLATES.instantiate(
            "rate-limit", uid=7, max_requests=10, window=1000
        )
        assert isinstance(policy, Policy)
        assert "u.uid = 7" in policy.sql

    def test_default_name_from_values(self):
        policy = BUILTIN_TEMPLATES.instantiate(
            "no-joins", relation="navteq"
        )
        assert policy.name == "no-joins-navteq"

    def test_explicit_name(self):
        policy = BUILTIN_TEMPLATES.instantiate(
            "no-joins", policy_name="p1", relation="navteq"
        )
        assert policy.name == "p1"

    def test_missing_slot(self):
        with pytest.raises(PolicyError):
            BUILTIN_TEMPLATES.instantiate("rate-limit", uid=1, window=10)

    def test_unknown_slot(self):
        with pytest.raises(PolicyError):
            BUILTIN_TEMPLATES.instantiate(
                "no-joins", relation="x", bogus=True
            )

    def test_unknown_template(self):
        with pytest.raises(PolicyError):
            BUILTIN_TEMPLATES.get("nope")

    def test_slot_default(self):
        template = PolicyTemplate(
            "t",
            "test",
            "SELECT DISTINCT 'x' FROM users u WHERE u.uid = {uid}",
            (Slot("uid", "user", "int", default=0),),
        )
        policy = template.instantiate()
        assert "u.uid = 0" in policy.sql

    def test_registry_rejects_duplicates(self):
        registry = TemplateRegistry()
        template = PolicyTemplate("t", "d", "SELECT 'x' FROM users u")
        registry.register(template)
        with pytest.raises(PolicyError):
            registry.register(template)


class TestTemplatesEndToEnd:
    def test_instances_unify_and_enforce(self):
        db = Database()
        db.load_table("items", ["k"], [(1,), (2,)])
        policies = [
            BUILTIN_TEMPLATES.instantiate(
                "rate-limit", uid=uid, max_requests=2, window=1000
            )
            for uid in (1, 2, 3)
        ]
        enforcer = Enforcer(
            db,
            policies,
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(),
        )
        # Same skeleton → one unified runtime policy for all three users.
        unified = [r for r in enforcer.runtime_policies() if r.member_names]
        assert len(unified) == 1
        assert len(unified[0].member_names) == 3

        for _ in range(2):
            assert enforcer.submit("SELECT * FROM items", uid=1).allowed
        decision = enforcer.submit("SELECT * FROM items", uid=1)
        assert not decision.allowed
        assert "user 1" in decision.violations[0].message
        # other users unaffected
        assert enforcer.submit("SELECT * FROM items", uid=2).allowed

    def test_every_builtin_parses_and_classifies(self):
        sample_params = {
            "no-joins": dict(relation="alpha"),
            "rate-limit": dict(uid=1, max_requests=5, window=100),
            "k-anonymity": dict(relation="alpha", k=4),
            "no-aggregation": dict(relation="alpha"),
            "volume-quota": dict(relation="alpha", max_tuples=10, window=100),
            "user-volume-quota": dict(
                relation="alpha", uid=1, max_tuples=10, window=100
            ),
            "group-access-window": dict(
                relation="alpha", group="students", max_users=3, window=100
            ),
        }
        from repro.analysis import is_time_independent
        from repro.log import standard_registry

        registry = standard_registry()
        expected_ti = {
            "no-joins": True,
            "rate-limit": False,
            "k-anonymity": True,
            "no-aggregation": True,
            "volume-quota": False,
            "user-volume-quota": False,
            "group-access-window": False,
        }
        for name in BUILTIN_TEMPLATES.names():
            policy = BUILTIN_TEMPLATES.instantiate(name, **sample_params[name])
            assert (
                is_time_independent(policy.select, registry)
                is expected_ti[name]
            ), name
