"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.engine import Database, Engine
from repro.workloads import MimicConfig, build_mimic_database


@pytest.fixture
def small_db() -> Database:
    """A tiny two-table database used across engine tests."""
    db = Database()
    db.load_table(
        "t",
        ["a", "b", "c"],
        [
            (1, "x", 10),
            (2, "y", 20),
            (2, "z", 30),
            (3, "x", None),
            (None, "w", 40),
        ],
    )
    db.load_table(
        "u",
        ["a", "d"],
        [(1, 100), (2, 200), (4, 400)],
    )
    return db


@pytest.fixture
def engine(small_db: Database) -> Engine:
    return Engine(small_db)


@pytest.fixture(scope="session")
def tiny_mimic_config() -> MimicConfig:
    """A very small MIMIC scale for fast enforcement tests."""
    return MimicConfig(n_patients=60)


@pytest.fixture(scope="session")
def _mimic_template(tiny_mimic_config: MimicConfig) -> Database:
    return build_mimic_database(tiny_mimic_config)


@pytest.fixture
def mimic_db(_mimic_template: Database) -> Database:
    """A fresh (cloned) small MIMIC database per test."""
    return _mimic_template.clone()
