"""Observability layer: trace spans, Prometheus export, EXPLAIN ANALYZE.

Covers the span-tree contract end to end — a submitted query's root span
has exactly one child per evaluated policy and per engine operator, and
the span totals reconcile with ``QueryMetrics.seconds`` — plus the
``GET /metrics`` exposition (parsed for validity), the ``/slowlog``
surface, and ``explain=analyze`` over HTTP and the CLI.
"""

import io
import json
import re
import threading
from http.client import HTTPConnection

import pytest

from repro.cli import make_parser
from repro.core import Enforcer, EnforcerOptions, Policy
from repro.core.metrics import PHASE_POLICY, PHASE_QUERY
from repro.engine import Database
from repro.engine.explain import describe, operator_children
from repro.log import SimulatedClock
from repro.obs import (
    Histogram,
    HistogramSnapshot,
    MetricFamily,
    Registry,
    Span,
    TraceContext,
)
from repro.server import serve
from repro.service import ServiceConfig, ShardedEnforcerService
from repro.workloads import PolicyParams, make_policy, make_workload


# ---------------------------------------------------------------------------
# span / trace-context units
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_push_pop_builds_tree(self):
        trace = TraceContext("root")
        outer = trace.push("outer")
        inner = trace.push("inner")
        trace.pop(inner, 0.25)
        trace.pop(outer, 1.0)
        root = trace.finish()
        assert [c.name for c in root.children] == ["outer"]
        assert outer.children == [inner]
        assert inner.seconds == 0.25
        assert outer.seconds == 1.0
        assert root.seconds > 0

    def test_merge_reuses_same_name_child(self):
        trace = TraceContext("root")
        for _ in range(3):
            span = trace.push("policy:P1", merge=True)
            trace.pop(span, 0.1)
        assert len(trace.root.children) == 1
        assert trace.root.children[0].seconds == pytest.approx(0.3)

    def test_record_attaches_premeasured_leaf(self):
        trace = TraceContext("root")
        trace.record("compact_delete", 0.5)
        trace.record("compact_delete", 0.25)
        child = trace.root.child("compact_delete")
        assert child is not None and child.seconds == pytest.approx(0.75)

    def test_max_children_cap_tallies_drops(self):
        trace = TraceContext("root", max_children=2)
        for index in range(4):
            trace.record(f"c{index}", 0.1)
        assert len(trace.root.children) == 2
        assert trace.root.dropped == 2
        assert "dropped=2" in trace.root.render()

    def test_max_depth_drops_descendants_too(self):
        trace = TraceContext("root", max_depth=2)
        a = trace.push("a")  # depth 1: kept
        b = trace.push("b")  # depth 2: dropped
        assert a is not None and b is None
        # Inside a dropped frame nothing below is recorded either.
        c = trace.push("c")
        assert c is None and trace.current is None
        trace.pop(c, 0.1)
        trace.pop(b, 0.1)
        trace.pop(a, 0.1)
        assert trace.root.span_count() == 2  # root + a
        assert a.dropped == 1

    def test_max_spans_budget(self):
        trace = TraceContext("root", max_spans=3)
        kept = [trace.record(f"s{i}", 0.1) for i in range(5)]
        assert sum(span is not None for span in kept) == 2  # root is #1
        assert trace.root.dropped == 3

    def test_finish_is_idempotent(self):
        trace = TraceContext("root")
        first = trace.finish().seconds
        assert trace.finish().seconds == first

    def test_span_walk_and_render(self):
        root = Span("submit")
        child = Span("query", seconds=0.001, depth=1)
        child.add_count("rows", 7)
        root.children.append(child)
        assert [s.name for s in root.walk()] == ["submit", "query"]
        assert "rows=7" in root.render()


# ---------------------------------------------------------------------------
# prometheus primitives
# ---------------------------------------------------------------------------


class TestPromPrimitives:
    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap.cumulative == (1, 2, 3)
        assert snap.count == 4  # +Inf picks up the overflow sample
        assert snap.sum == pytest.approx(5.555)

    def test_histogram_snapshot_merge(self):
        a, b = Histogram(buckets=(1.0,)), Histogram(buckets=(1.0,))
        a.observe(0.5)
        b.observe(0.5)
        b.observe(2.0)
        merged = HistogramSnapshot.merge([a.snapshot(), b.snapshot()])
        assert merged.cumulative == (2,)
        assert merged.count == 3

    def test_family_render_and_label_escaping(self):
        family = MetricFamily("x_total", "counter", "Help.")
        family.add({"q": 'a"b\\c\nd'}, 3)
        text = family.render()
        assert "# HELP x_total Help." in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{q="a\\"b\\\\c\\nd"} 3' in text

    def test_histogram_family_exposition(self):
        family = MetricFamily("lat_seconds", "histogram", "Latency.")
        hist = Histogram(buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        family.add_histogram({"shard": "0"}, hist.snapshot())
        text = family.render()
        assert 'lat_seconds_bucket{shard="0",le="0.1"} 1' in text
        assert 'lat_seconds_bucket{shard="0",le="+Inf"} 2' in text
        assert 'lat_seconds_count{shard="0"} 2' in text

    def test_registry_collects_on_render(self):
        registry = Registry()
        calls = []

        def collector():
            calls.append(1)
            return [MetricFamily("g", "gauge", "G.").add(None, 1)]

        registry.register(collector)
        assert registry.render().endswith("g 1\n")
        registry.render()
        assert len(calls) == 2  # scrape-time, not cached


# ---------------------------------------------------------------------------
# enforcer tracing (the tentpole contract)
# ---------------------------------------------------------------------------


@pytest.fixture
def traced_setup(mimic_db, tiny_mimic_config):
    params = PolicyParams.for_config(tiny_mimic_config)
    policies = [make_policy("P2", params), make_policy("P4", params)]
    enforcer = Enforcer(
        mimic_db,
        policies,
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )
    return enforcer, make_workload(tiny_mimic_config)


def plan_shape(op):
    """(name, children) tree of a physical plan, via the shared helpers."""
    return (describe(op), [plan_shape(c) for c in operator_children(op)])


def span_shape(span):
    return (span.name, [span_shape(c) for c in span.children])


class TestEnforcerTracing:
    def test_root_span_has_one_child_per_policy(self, traced_setup):
        enforcer, workload = traced_setup
        decision = enforcer.submit(workload["W1"], uid=1)
        assert decision.allowed and decision.span is not None
        policy_children = [
            c for c in decision.span.children if c.name.startswith("policy:")
        ]
        assert sorted(c.name for c in policy_children) == [
            "policy:P2", "policy:P4"
        ]
        # Exactly one each, even though interleaved evaluation touches a
        # policy at several stages (merge semantics).
        assert len(policy_children) == len(enforcer.policies)

    def test_query_span_mirrors_the_physical_plan(self, traced_setup):
        enforcer, workload = traced_setup
        sql = workload["W1"]
        decision = enforcer.submit(sql, uid=1)
        query_span = decision.span.child(PHASE_QUERY)
        assert query_span is not None
        plan = enforcer.engine.plan(sql)
        # One operator span per plan node, same names, same tree shape.
        assert [span_shape(c) for c in query_span.children] == [
            plan_shape(plan.op)
        ]
        for span in query_span.children[0].walk():
            assert "rows" in span.counters

    def test_span_totals_reconcile_with_metrics(self, traced_setup):
        enforcer, workload = traced_setup
        decision = enforcer.submit(workload["W1"], uid=1)
        metrics = decision.metrics
        by_name = {c.name: c.seconds for c in decision.span.children}
        policy_total = sum(
            seconds
            for name, seconds in by_name.items()
            if name.startswith("policy:")
        )
        assert policy_total == pytest.approx(
            metrics.seconds[PHASE_POLICY], rel=1e-9, abs=1e-12
        )
        for phase, value in metrics.seconds.items():
            if phase == PHASE_POLICY:
                continue
            assert by_name[phase] == pytest.approx(
                value, rel=1e-9, abs=1e-12
            ), phase
        # Children are disjoint intervals inside the root's wall time.
        assert sum(by_name.values()) <= decision.span.seconds + 1e-6
        assert decision.span.seconds == pytest.approx(
            metrics.total_seconds, rel=0.5, abs=0.05
        )

    def test_rejected_query_is_traced_without_execution(self, traced_setup):
        enforcer, _ = traced_setup
        decision = enforcer.submit(
            "SELECT o.poe_id FROM poe_order o, d_patients p "
            "WHERE o.subject_id = p.subject_id",
            uid=1,
        )
        assert not decision.allowed
        root = decision.span
        assert root is not None
        assert root.counters["allowed"] == 0
        assert root.counters["violations"] == len(decision.violations)
        assert root.child(PHASE_QUERY) is None  # never executed
        assert any(c.name.startswith("policy:") for c in root.children)
        # The rejected path reconciles too.
        by_name = {c.name: c.seconds for c in root.children}
        policy_total = sum(
            s for n, s in by_name.items() if n.startswith("policy:")
        )
        assert policy_total == pytest.approx(
            decision.metrics.seconds[PHASE_POLICY], rel=1e-9, abs=1e-12
        )

    def test_tracing_can_be_disabled(self, mimic_db, tiny_mimic_config):
        params = PolicyParams.for_config(tiny_mimic_config)
        enforcer = Enforcer(
            mimic_db,
            [make_policy("P2", params)],
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(tracing=False),
        )
        decision = enforcer.submit(
            make_workload(tiny_mimic_config)["W1"], uid=1
        )
        assert decision.span is None
        assert decision.metrics.seconds  # metrics still populated

    def test_explain_analyze_annotates_every_node(self, traced_setup):
        enforcer, workload = traced_setup
        text = enforcer.engine.explain(workload["W1"], analyze=True)
        plain = enforcer.engine.explain(workload["W1"])
        # Same tree, every operator line annotated.
        assert len(text.splitlines()) == len(plain.splitlines())
        for line in text.splitlines()[1:]:
            assert re.search(r"\(rows=\d+ time=\d+\.\d+ ms\)", line), line


# ---------------------------------------------------------------------------
# exposition validity (parsed, not pattern-matched)
# ---------------------------------------------------------------------------

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[0-9eE+.\-]+|\+Inf|-Inf|NaN)$"
)


def parse_exposition(text):
    """Parse 0.0.4 text format; raise on any malformed line."""
    families = {}
    current = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            current = line.split(" ", 3)[2]
            families.setdefault(current, {"type": None, "samples": []})
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name == current, f"TYPE for {name} outside its family"
            assert kind in ("counter", "gauge", "histogram")
            families[name]["type"] = kind
        else:
            match = SAMPLE_RE.match(line)
            assert match, f"malformed sample line: {line!r}"
            base = match.group("name")
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base[: -len(suffix)] in families:
                    base = base[: -len(suffix)]
                    break
            assert base in families, f"sample {line!r} missing HELP/TYPE"
            families[base]["samples"].append(
                (match.group("name"), match.group("labels"), match.group("value"))
            )
    return families


class TestServiceExport:
    @pytest.fixture
    def service(self, traced_setup):
        enforcer, workload = traced_setup
        service = ShardedEnforcerService(
            enforcer, ServiceConfig(shards=2, routing="modulo")
        )
        for uid in (1, 2, 3):
            service.submit(workload["W1"], uid=uid)
        service.submit(
            "SELECT o.poe_id FROM poe_order o, d_patients p "
            "WHERE o.subject_id = p.subject_id",
            uid=1,
        )
        yield service
        service.drain()

    def test_exposition_parses_and_counts_match(self, service):
        families = parse_exposition(service.render_metrics())
        assert families["repro_shards"]["type"] == "gauge"
        completed = {
            (labels, value)
            for _, labels, value in families["repro_shard_completed_total"][
                "samples"
            ]
        }
        assert ('shard="1",outcome="allowed"', "2") in completed
        assert ('shard="1",outcome="denied"', "1") in completed
        # Histograms: one series set per shard, buckets non-decreasing,
        # +Inf equals _count.
        check = families["repro_check_seconds"]
        assert check["type"] == "histogram"
        for shard in ("0", "1"):
            buckets = [
                float(value)
                for name, labels, value in check["samples"]
                if name.endswith("_bucket") and f'shard="{shard}"' in labels
            ]
            assert buckets == sorted(buckets) and buckets, shard
            count = [
                float(value)
                for name, labels, value in check["samples"]
                if name.endswith("_count") and labels == f'shard="{shard}"'
            ]
            assert count == [buckets[-1]]

    def test_per_policy_families(self, service):
        families = parse_exposition(service.render_metrics())
        eval_labels = {
            labels
            for name, labels, _ in families["repro_policy_eval_seconds"][
                "samples"
            ]
            if name.endswith("_count")
        }
        assert 'shard="1",policy="P2"' in eval_labels
        assert 'shard="1",policy="P4"' in eval_labels
        violations = {
            labels: value
            for _, labels, value in families["repro_policy_violations_total"][
                "samples"
            ]
        }
        assert violations.get('shard="1",policy="P2"') == "1"

    def test_phase_totals_exported(self, service):
        families = parse_exposition(service.render_metrics())
        phases = {
            labels
            for _, labels, _ in families["repro_phase_seconds_total"]["samples"]
        }
        assert any('phase="query"' in labels for labels in phases)
        assert any('phase="policy_eval"' in labels for labels in phases)


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------


def make_enforcer_for_http():
    db = Database()
    db.load_table("navteq", ["id", "lat"], [(1, 47.0), (2, 40.0)])
    db.load_table("other", ["id"], [(1,)])
    policy = Policy.from_sql(
        "no-joins",
        "SELECT DISTINCT 'no external joins' FROM schema p1, schema p2 "
        "WHERE p1.ts = p2.ts AND p1.irid = 'navteq' AND p2.irid <> 'navteq'",
    )
    return Enforcer(
        db,
        [policy],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


@pytest.fixture
def http_server(request):
    config = getattr(request, "param", None) or ServiceConfig(
        slow_query_seconds=1e-9
    )
    httpd = serve(make_enforcer_for_http(), port=0, config=config)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


def http_json(server, method, path, body=None):
    connection = HTTPConnection(*server.server_address)
    payload = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    data = json.loads(response.read().decode())
    connection.close()
    return response.status, data


def http_text(server, path):
    connection = HTTPConnection(*server.server_address)
    connection.request("GET", path)
    response = connection.getresponse()
    data = response.read().decode()
    content_type = response.getheader("Content-Type")
    connection.close()
    return response.status, content_type, data


class TestHTTPSurface:
    def test_metrics_endpoint_serves_valid_exposition(self, http_server):
        http_json(
            http_server, "POST", "/query",
            {"sql": "SELECT id FROM navteq", "uid": 3},
        )
        status, content_type, text = http_text(http_server, "/metrics")
        assert status == 200
        assert content_type == "text/plain; version=0.0.4; charset=utf-8"
        families = parse_exposition(text)
        samples = {
            value
            for _, _, value in families["repro_shard_admitted_total"]["samples"]
        }
        assert samples == {"1"}

    def test_query_explain_analyze_returns_plan(self, http_server):
        status, body = http_json(
            http_server, "POST", "/query",
            {"sql": "SELECT id FROM navteq", "uid": 3, "explain": "analyze"},
        )
        assert status == 200
        assert "plan" in body
        for line in body["plan"].splitlines():
            assert re.search(r"\(rows=\d+ time=\d+\.\d+ ms\)", line), line

    @pytest.mark.parametrize(
        "http_server",
        [ServiceConfig(tracing=False)],
        indirect=True,
    )
    def test_explain_analyze_falls_back_when_tracing_off(self, http_server):
        status, body = http_json(
            http_server, "POST", "/query",
            {"sql": "SELECT id FROM navteq", "uid": 3, "explain": "analyze"},
        )
        assert status == 200
        assert "rows=" in body["plan"] and "time=" in body["plan"]

    def test_rejected_analyze_behaves_like_explain(self, http_server):
        status, body = http_json(
            http_server, "POST", "/query",
            {
                "sql": "SELECT n.id FROM navteq n, other o WHERE n.id = o.id",
                "uid": 3,
                "explain": "analyze",
            },
        )
        assert status == 403
        assert "plan" not in body  # the query never executed
        assert "evidence" in body

    def test_slowlog_captures_traces(self, http_server):
        http_json(
            http_server, "POST", "/query",
            {"sql": "SELECT id FROM navteq", "uid": 3},
        )
        status, body = http_json(http_server, "GET", "/slowlog")
        assert status == 200
        assert body["slow_queries"], "threshold of 1ns must catch everything"
        entry = body["slow_queries"][0]
        assert entry["trace"] and "policy:no-joins" in entry["trace"]
        # /stats counts them too.
        _, stats = http_json(http_server, "GET", "/stats")
        assert stats["totals"]["slow"] >= 1


# ---------------------------------------------------------------------------
# durability path: recovered shards keep tracing and export WAL counters
# ---------------------------------------------------------------------------


class TestDurableTracing:
    def test_recovered_service_traces_and_exports_wal(self, tmp_path):
        config = ServiceConfig(data_dir=str(tmp_path), checkpoint_every=0)
        first = ShardedEnforcerService(make_enforcer_for_http(), config)
        first.submit("SELECT id FROM navteq", uid=3)
        first.drain()

        second = ShardedEnforcerService(make_enforcer_for_http(), config)
        try:
            assert second.recovery_reports  # state actually recovered
            decision = second.submit("SELECT lat FROM navteq", uid=3)
            assert decision.span is not None  # tracing survives recovery
            families = parse_exposition(second.render_metrics())
            appends = [
                float(value)
                for _, _, value in families["repro_wal_appends_total"][
                    "samples"
                ]
            ]
            assert sum(appends) >= 1
            assert "repro_wal_fsyncs_total" in families
            assert "repro_wal_last_seq" in families
        finally:
            second.drain()

    def test_non_durable_service_omits_wal_families(self, traced_setup):
        enforcer, _ = traced_setup
        service = ShardedEnforcerService(enforcer, ServiceConfig())
        try:
            families = parse_exposition(service.render_metrics())
            assert "repro_wal_appends_total" not in families
        finally:
            service.drain()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCliExplain:
    def test_explain_analyze_prints_rows_and_time(self):
        out = io.StringIO()
        args = make_parser().parse_args(
            [
                "explain", "--demo", "--patients", "50",
                "--query",
                "SELECT subject_id FROM d_patients WHERE subject_id < 5",
                "--analyze",
            ]
        )
        assert args.func(args, out=out) == 0
        text = out.getvalue()
        assert text.startswith("Output [subject_id]")
        assert re.search(r"Scan d_patients \(rows=\d+ time=\d+\.\d+ ms\)", text)

    def test_explain_without_analyze_has_no_timings(self):
        out = io.StringIO()
        args = make_parser().parse_args(
            [
                "explain", "--demo", "--patients", "50",
                "--query", "SELECT subject_id FROM d_patients",
            ]
        )
        assert args.func(args, out=out) == 0
        assert "time=" not in out.getvalue()
