"""The cross-query decision cache: offline profiling, the LRU itself,
enforcer integration (hits, epoch/version invalidation, recovery), the
canonical-form plan cache, and a cached-vs-uncached equivalence property.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.core.decision_cache import (
    CachePolicyProfile,
    CheckCachePlan,
    DecisionCache,
    merge_profiles,
    profile_policy,
    touches_log_state,
)
from repro.engine import Database, Engine
from repro.errors import ReproError
from repro.log import SimulatedClock, standard_registry
from repro.sql import canonical_sql, parse
from repro.storage.wal import initialize_durability, recover_enforcer
from repro.workloads import (
    MimicConfig,
    PolicyParams,
    build_mimic_database,
    make_policy,
    make_workload,
)

DENY_UID9_SQL = (
    "SELECT DISTINCT 'uid 9 blocked' FROM users u WHERE u.uid = 9"
)


def make_items_db() -> Database:
    db = Database()
    db.load_table("items", ["iid"], [(1,), (2,), (3,)])
    return db


def deny_uid9() -> Policy:
    return Policy.from_sql("deny-9", DENY_UID9_SQL, "uid 9 may not query")


def cached_enforcer(db=None, policies=None, **overrides) -> Enforcer:
    return Enforcer(
        db if db is not None else make_items_db(),
        policies if policies is not None else [deny_uid9()],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(decision_cache=True, **overrides),
    )


# ---------------------------------------------------------------------------
# Offline profiling
# ---------------------------------------------------------------------------


class TestProfilePolicy:
    @pytest.fixture
    def registry(self):
        return standard_registry()

    def profile(self, sql, registry, stable, database=None):
        return profile_policy(parse(sql), registry, database, stable=stable)

    def test_time_independent_policy_is_stable(self, registry):
        profile = self.profile(DENY_UID9_SQL, registry, stable=True)
        assert profile.kind == "stable"

    def test_time_dependent_shift_safe_policy_is_versioned(self, registry):
        profile = self.profile(DENY_UID9_SQL, registry, stable=False)
        assert profile.kind == "versioned"
        assert profile.relations == frozenset({"users"})

    def test_bare_ts_comparison_is_shift_safe(self, registry):
        profile = self.profile(
            "SELECT DISTINCT 'dup' FROM users u1, users u2 "
            "WHERE u1.ts = u2.ts AND u1.uid <> u2.uid",
            registry,
            stable=False,
        )
        assert profile.kind == "versioned"

    def test_clock_reference_uncacheable_when_time_dependent(self, registry):
        profile = self.profile(
            "SELECT DISTINCT 'fast' FROM users u, clock c "
            "WHERE u.ts = c.ts",
            registry,
            stable=False,
        )
        assert profile.kind == "uncacheable"
        assert "clock" in profile.reason

    def test_clock_reference_fine_once_rewritten_stable(self, registry):
        profile = self.profile(
            "SELECT DISTINCT 'fast' FROM users u, clock c "
            "WHERE u.ts = c.ts",
            registry,
            stable=True,
        )
        assert profile.kind == "stable"

    def test_ts_vs_literal_sets_storability_bound(self, registry):
        profile = self.profile(
            "SELECT DISTINCT 'old' FROM users u WHERE u.ts > 100",
            registry,
            stable=True,
        )
        assert profile.kind == "stable"
        assert profile.min_ts_bound == 100.0

    def test_ts_arithmetic_is_uncacheable(self, registry):
        profile = self.profile(
            "SELECT DISTINCT 'x' FROM users u WHERE u.ts + 1 > 100",
            registry,
            stable=True,
        )
        assert profile.kind == "uncacheable"

    def test_non_timestamp_alias_named_ts_is_uncacheable(self, registry):
        profile = self.profile(
            "SELECT u.uid AS ts FROM users u",
            registry,
            stable=True,
        )
        assert profile.kind == "uncacheable"

    def test_base_table_with_ts_column_is_uncacheable(self, registry):
        db = Database()
        db.load_table("events", ["id", "ts"], [(1, 5)])
        profile = self.profile(
            "SELECT DISTINCT 'x' FROM events e WHERE e.id = 1",
            registry,
            stable=True,
            database=db,
        )
        assert profile.kind == "uncacheable"
        assert "events" in profile.reason

    def test_merge_requires_every_policy_cacheable(self):
        stable = CachePolicyProfile(kind="stable")
        bad = CachePolicyProfile(kind="uncacheable", reason="why")
        assert merge_profiles([stable, bad]) is None
        assert merge_profiles([stable, None]) is None

    def test_merge_unions_relations_and_maxes_bound(self):
        a = CachePolicyProfile(
            kind="versioned",
            relations=frozenset({"users"}),
            min_ts_bound=10.0,
        )
        b = CachePolicyProfile(
            kind="versioned",
            relations=frozenset({"provenance"}),
            min_ts_bound=50.0,
        )
        plan = merge_profiles([a, b])
        assert plan == CheckCachePlan(
            relations=frozenset({"users", "provenance"}), min_ts_bound=50.0
        )
        assert not plan.storable_at(50)
        assert plan.storable_at(51)

    def test_touches_log_state(self, registry):
        assert touches_log_state(parse("SELECT uid FROM users"), registry)
        assert touches_log_state(parse("SELECT now FROM clock"), registry)
        assert not touches_log_state(
            parse("SELECT iid FROM items"), registry
        )


# ---------------------------------------------------------------------------
# The LRU itself
# ---------------------------------------------------------------------------


class _FakeStore:
    def __init__(self, versions=None):
        self.versions = dict(versions or {})

    def version(self, name):
        return self.versions.get(name, 0)


class TestDecisionCacheUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            DecisionCache(capacity=0)

    def test_key_ignores_sql_formatting(self):
        a = DecisionCache.key_for("SELECT iid FROM items", 1, None)
        b = DecisionCache.key_for("select   iid\nfrom ITEMS", 1, None)
        assert a == b

    def test_key_distinguishes_uid_and_literals(self):
        base = DecisionCache.key_for("SELECT iid FROM items", 1, None)
        assert DecisionCache.key_for("SELECT iid FROM items", 2, None) != base
        assert (
            DecisionCache.key_for("SELECT iid FROM items WHERE iid = 1", 1, None)
            != base
        )

    def test_key_attributes_order_insensitive_type_sensitive(self):
        a = DecisionCache.key_for("SELECT 1", 1, {"x": 1, "y": 2})
        b = DecisionCache.key_for("SELECT 1", 1, {"y": 2, "x": 1})
        c = DecisionCache.key_for("SELECT 1", 1, {"x": "1", "y": 2})
        assert a == b
        assert a != c

    def test_unlexable_sql_has_no_key(self):
        assert DecisionCache.key_for("SELECT \0", 1, None) is None

    def test_store_then_hit(self):
        cache = DecisionCache()
        store = _FakeStore({"users": 3})
        key = cache.key_for("SELECT 1", 1, None)
        assert cache.lookup(key, store) is None
        cache.store(key, [], ("users",), {"users": 3})
        entry = cache.lookup(key, store)
        assert entry is not None
        assert entry.generated == ("users",)
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "invalidations": 0,
            "stores": 1,
            "evictions": 0,
            "entries": 1,
        }

    def test_version_bump_invalidates(self):
        cache = DecisionCache()
        store = _FakeStore({"users": 3})
        key = cache.key_for("SELECT 1", 1, None)
        cache.store(key, [], (), {"users": 3})
        store.versions["users"] = 4
        assert cache.lookup(key, store) is None
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 1
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = DecisionCache(capacity=2)
        store = _FakeStore()
        keys = [cache.key_for(f"SELECT {i}", 1, None) for i in range(3)]
        for key in keys[:2]:
            cache.store(key, [], (), {})
        assert cache.lookup(keys[0], store) is not None  # now most recent
        cache.store(keys[2], [], (), {})  # evicts keys[1]
        assert cache.stats.evictions == 1
        assert cache.lookup(keys[1], store) is None
        assert cache.lookup(keys[0], store) is not None

    def test_clear_counts_invalidations(self):
        cache = DecisionCache()
        cache.store(cache.key_for("SELECT 1", 1, None), [], (), {})
        cache.store(cache.key_for("SELECT 2", 1, None), [], (), {})
        cache.clear()
        assert cache.stats.invalidations == 2
        assert cache.stats.entries == 0


# ---------------------------------------------------------------------------
# Enforcer integration
# ---------------------------------------------------------------------------


class TestEnforcerIntegration:
    QUERY = "SELECT iid FROM items"

    def test_disabled_by_default(self):
        enforcer = Enforcer(
            make_items_db(),
            [deny_uid9()],
            clock=SimulatedClock(default_step_ms=10),
            options=EnforcerOptions.datalawyer(),
        )
        enforcer.submit(self.QUERY, uid=1)
        enforcer.submit(self.QUERY, uid=1)
        assert enforcer.decision_cache is None

    def test_repeat_query_hits(self):
        enforcer = cached_enforcer()
        first = enforcer.submit(self.QUERY, uid=1)
        second = enforcer.submit(self.QUERY, uid=1)
        cache = enforcer.decision_cache
        assert cache is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert first.allowed and second.allowed
        assert first.result.rows == second.result.rows

    def test_textual_variants_share_one_entry(self):
        enforcer = cached_enforcer()
        enforcer.submit(self.QUERY, uid=1)
        enforcer.submit("select   iid  from items", uid=1)
        assert enforcer.decision_cache.stats.hits == 1

    def test_denials_are_cached_and_identical(self):
        enforcer = cached_enforcer()
        first = enforcer.submit(self.QUERY, uid=9)
        second = enforcer.submit(self.QUERY, uid=9)
        assert not first.allowed and not second.allowed
        assert [(v.policy_name, v.message) for v in first.violations] == [
            (v.policy_name, v.message) for v in second.violations
        ]
        assert enforcer.decision_cache.stats.hits == 1

    def test_uid_and_attributes_partition_the_key(self):
        enforcer = cached_enforcer()
        enforcer.submit(self.QUERY, uid=1)
        enforcer.submit(self.QUERY, uid=2)
        enforcer.submit(self.QUERY, uid=1, attributes={"purpose": "qa"})
        assert enforcer.decision_cache.stats.hits == 0
        assert enforcer.decision_cache.stats.misses == 3

    def test_policy_change_clears_the_cache(self):
        enforcer = cached_enforcer()
        enforcer.submit(self.QUERY, uid=1)
        enforcer.submit(self.QUERY, uid=1)
        cache = enforcer.decision_cache
        assert len(cache) == 1
        enforcer.add_policy(
            Policy.from_sql(
                "deny-8", "SELECT DISTINCT 'no' FROM users u WHERE u.uid = 8"
            )
        )
        assert len(cache) == 0
        assert cache.stats.invalidations >= 1
        enforcer.submit(self.QUERY, uid=1)
        assert cache.stats.hits == 1  # unchanged: that submit was a miss
        enforcer.remove_policy("deny-8")
        assert len(cache) == 0

    def test_readded_policy_with_new_contract_sees_no_stale_state(self):
        # Regression guard for the policy add/remove lifecycle: a verdict
        # cached under an old "deny-9" must not survive removing it and
        # re-adding a *different* policy under the same name, and the
        # cache plan (profiles) must be the new set's, not the old one's.
        enforcer = cached_enforcer()
        first = enforcer.submit(self.QUERY, uid=5)
        assert first.allowed
        cache = enforcer.decision_cache
        assert len(cache) == 1

        enforcer.remove_policy("deny-9")
        enforcer.add_policy(
            Policy.from_sql(
                "deny-9",
                "SELECT DISTINCT 'no' FROM users u WHERE u.uid = 5",
                "uid 5 may not query",
            )
        )
        assert len(cache) == 0  # _prepare cleared the stale verdicts
        denied = enforcer.submit(self.QUERY, uid=5)
        assert not denied.allowed
        assert cache.stats.hits == 0

        # Swap again, to a policy whose profile is uncacheable: if the
        # old per-policy profile leaked through _prepare, verdicts would
        # still be stored under the stale plan.
        enforcer.remove_policy("deny-9")
        enforcer.add_policy(
            Policy.from_sql(
                "deny-9",
                "SELECT DISTINCT 'too fast' FROM users u, clock c "
                "WHERE u.uid = 5 AND u.ts > c.ts - 100 "
                "HAVING COUNT(DISTINCT u.ts) > 3",
            )
        )
        enforcer.submit(self.QUERY, uid=5)
        enforcer.submit(self.QUERY, uid=5)
        assert cache.stats.hits == 0
        assert len(cache) == 0

    def test_uncacheable_policy_disables_storing(self):
        rate = Policy.from_sql(
            "rate",
            "SELECT DISTINCT 'too fast' FROM users u, clock c "
            "WHERE u.uid = 7 AND u.ts > c.ts - 100 "
            "HAVING COUNT(DISTINCT u.ts) > 3",
        )
        enforcer = cached_enforcer(policies=[deny_uid9(), rate])
        enforcer.submit(self.QUERY, uid=1)
        enforcer.submit(self.QUERY, uid=1)
        cache = enforcer.decision_cache
        assert cache.stats.hits == 0
        assert len(cache) == 0

    def test_query_reading_the_log_is_never_cached(self):
        enforcer = cached_enforcer()
        enforcer.submit("SELECT uid FROM users", uid=1, execute=False)
        enforcer.submit("SELECT uid FROM users", uid=1, execute=False)
        cache = enforcer.decision_cache
        assert cache.stats.hits == 0
        assert len(cache) == 0

    def test_versioned_entry_survives_while_disk_unchanged(self):
        # With the TI rewrite off the policy is merely shift-safe, so its
        # verdict is pinned to the users log version. uid 1's rows are
        # irrelevant to a uid-9 policy, so compaction discards them, the
        # disk image never changes, and the entry keeps hitting.
        enforcer = cached_enforcer(time_independent=False)
        enforcer.submit(self.QUERY, uid=1)
        assert enforcer.store.version("users") == 0
        enforcer.submit(self.QUERY, uid=1)
        cache = enforcer.decision_cache
        assert cache.stats.hits == 1
        assert cache.stats.invalidations == 0

    def test_versioned_entry_invalidated_by_own_commit(self):
        # A quota policy retains the submitting user's rows, so every
        # allowed check bumps the users version — and the *cached*
        # verdict from the previous check must not be replayed, because
        # the count it memoized is stale (a stale hit would keep
        # allowing past the quota).
        quota = Policy.from_sql(
            "quota",
            "SELECT DISTINCT 'quota exceeded' FROM users u "
            "WHERE u.uid = 9 HAVING COUNT(*) > 2",
        )
        enforcer = cached_enforcer(
            policies=[quota], time_independent=False
        )
        first = enforcer.submit(self.QUERY, uid=9)
        assert first.allowed
        assert enforcer.store.version("users") > 0
        second = enforcer.submit(self.QUERY, uid=9)
        assert second.allowed
        third = enforcer.submit(self.QUERY, uid=9)
        assert not third.allowed
        cache = enforcer.decision_cache
        assert cache.stats.hits == 0
        assert cache.stats.invalidations >= 2

    def test_versioned_denial_hits_because_nothing_committed(self):
        enforcer = cached_enforcer(time_independent=False)
        before = enforcer.store.version("users")
        first = enforcer.submit(self.QUERY, uid=9)
        assert not first.allowed
        assert enforcer.store.version("users") == before
        second = enforcer.submit(self.QUERY, uid=9)
        assert not second.allowed
        assert enforcer.decision_cache.stats.hits == 1

    def test_cache_empty_after_recovery(self, tmp_path):
        enforcer = cached_enforcer()
        initialize_durability(enforcer, tmp_path)
        enforcer.submit(self.QUERY, uid=1)
        enforcer.submit(self.QUERY, uid=1)
        assert enforcer.decision_cache.stats.hits == 1
        enforcer.store.wal.close()

        recovered, wal, report = recover_enforcer(
            tmp_path, clock=SimulatedClock(default_step_ms=10)
        )
        try:
            assert report.last_seq == 2
            # Verdict memos never survive a restart: the rebuilt cache
            # starts empty and repopulates from live traffic.
            cache = recovered.decision_cache
            assert cache is None or len(cache) == 0
            recovered.options = replace(
                recovered.options, decision_cache=True
            )
            third = recovered.submit(self.QUERY, uid=1)
            fourth = recovered.submit(self.QUERY, uid=1)
            assert third.allowed and fourth.allowed
            cache = recovered.decision_cache
            assert cache.stats.misses == 1 and cache.stats.hits == 1
        finally:
            wal.close()


# ---------------------------------------------------------------------------
# Canonical SQL + the engine's plan cache
# ---------------------------------------------------------------------------


class TestCanonicalForm:
    def test_canonical_ignores_case_and_whitespace(self):
        assert canonical_sql("SELECT a FROM t") == canonical_sql(
            "select   A\n FROM  T"
        )

    def test_canonical_keeps_literals_and_strings(self):
        assert canonical_sql("SELECT a FROM t WHERE a = 1") != canonical_sql(
            "SELECT a FROM t WHERE a = 2"
        )
        assert canonical_sql("SELECT 'Ab' FROM t") != canonical_sql(
            "SELECT 'ab' FROM t"
        )

    def test_plan_cache_unifies_textual_variants(self, small_db):
        engine = Engine(small_db)
        first = engine.plan("SELECT a FROM t")
        again = engine.plan("select   a from t")
        third = engine.plan("SELECT a FROM t")
        assert again is first and third is first
        assert engine.plan_cache_misses == 1
        assert engine.plan_cache_hits == 2

    def test_invalidate_plans_keeps_counters(self, small_db):
        engine = Engine(small_db)
        engine.plan("SELECT a FROM t")
        engine.plan("SELECT a FROM t")
        engine.invalidate_plans()
        engine.plan("SELECT a FROM t")
        assert engine.plan_cache_hits == 1
        assert engine.plan_cache_misses == 2

    def test_unparsable_text_still_raises(self, small_db):
        engine = Engine(small_db)
        with pytest.raises(ReproError):
            engine.plan("SELECT FROM WHERE")


# ---------------------------------------------------------------------------
# Equivalence property: the cache must be invisible
# ---------------------------------------------------------------------------

_CONFIG = MimicConfig(n_patients=40)
_TEMPLATE = None


def _mimic_template() -> Database:
    global _TEMPLATE
    if _TEMPLATE is None:
        _TEMPLATE = build_mimic_database(_CONFIG)
    return _TEMPLATE


def _stable_policies() -> "list[Policy]":
    params = PolicyParams.for_config(_CONFIG)
    return [make_policy(name, params) for name in ("P2", "P3", "P4")]


def _mimic_enforcer(decision_cache: bool) -> Enforcer:
    return Enforcer(
        _mimic_template().clone(),
        _stable_policies(),
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(decision_cache=decision_cache),
    )


_TOGGLED = Policy.from_sql(
    "deny-2", "SELECT DISTINCT 'uid 2 blocked' FROM users u WHERE u.uid = 2"
)

_actions = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=1, max_value=3),
        ),
        st.just(("toggle",)),
    ),
    min_size=1,
    max_size=10,
)


class TestCachedUncachedEquivalence:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(actions=_actions)
    def test_same_decisions_and_log_state(self, actions):
        workload = make_workload(_CONFIG)
        queries = [workload[name] for name in ("W1", "W2", "W3", "W4")]
        cached = _mimic_enforcer(decision_cache=True)
        plain = _mimic_enforcer(decision_cache=False)
        toggled = False
        for action in actions:
            if action[0] == "toggle":
                if toggled:
                    cached.remove_policy(_TOGGLED.name)
                    plain.remove_policy(_TOGGLED.name)
                else:
                    cached.add_policy(_TOGGLED)
                    plain.add_policy(_TOGGLED)
                toggled = not toggled
                continue
            _, index, uid = action
            a = cached.submit(queries[index], uid=uid)
            b = plain.submit(queries[index], uid=uid)
            assert a.allowed == b.allowed
            assert a.timestamp == b.timestamp
            assert [(v.policy_name, v.message) for v in a.violations] == [
                (v.policy_name, v.message) for v in b.violations
            ]
            a_rows = None if a.result is None else a.result.rows
            b_rows = None if b.result is None else b.result.rows
            assert a_rows == b_rows
        # The persisted usage log must be bit-identical too: same live
        # sizes and the same per-relation version counters.
        assert cached.store.total_live_size() == plain.store.total_live_size()
        assert cached.store.versions() == plain.store.versions()
