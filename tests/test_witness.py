"""Log compaction: witness-query generation and evaluation (§4.1.2)."""

import pytest

from repro.analysis import (
    CURRENT_TIME_PARAM,
    evaluate_witness_marks,
    partial_witness_probe,
    rewrite_time_independent,
    substitute_current_time,
    witness_queries,
)
from repro.engine import Database, Engine
from repro.log import LogStore, standard_registry
from repro.sql import ast, parse_select, print_query


@pytest.fixture
def registry():
    return standard_registry()


@pytest.fixture
def db():
    db = Database()
    db.load_table(
        "groups", ["uid", "gid"], [(1, "students"), (2, "students"), (3, "staff")]
    )
    return db


P2B_SQL = (
    "SELECT DISTINCT 'P2b violated' "
    "FROM users u, schema s, groups g, clock c "
    "WHERE u.ts = s.ts AND s.irid = 'patients' AND u.uid = g.uid "
    "AND g.gid = 'students' AND u.ts > c.ts - 1209600 "
    "HAVING COUNT(DISTINCT u.uid) > 10"
)

P1_SQL = (
    "SELECT DISTINCT 'no joins' FROM schema p1, schema p2 "
    "WHERE p1.ts = p2.ts AND p1.irid = 'navteq' AND p2.irid <> 'navteq'"
)


class TestGenerationShapes:
    def test_p2b_witnesses_cover_both_logs(self, registry, db):
        """Example 4.3: witnesses for Users and Schema, semi-joined on ts,
        restricted to students/patients, window moved to currenttime+1."""
        witness = witness_queries(parse_select(P2B_SQL), registry, db)
        assert set(witness.per_relation) == {"users", "schema"}
        assert not witness.retain_all

        (users_witness,) = witness.per_relation["users"]
        text = print_query(users_witness)
        # The neighborhood join and database relation survive.
        assert "users u" in text and "schema s" in text and "groups g" in text
        # The clock atom is gone; the sentinel parameter is in its place.
        assert "clock" not in text
        assert "__currenttime__" in text
        # HAVING forced the full-query (Eq. 2) witness: plain DISTINCT.
        assert users_witness.distinct and not users_witness.distinct_on

    def test_p2b_witness_evaluates_to_window_contents(self, registry, db):
        store = LogStore(db, registry)
        engine = Engine(db)
        witness = witness_queries(parse_select(P2B_SQL), registry, db)

        # Student 1 touched patients at ts=100 (in window), staff 3 at 200,
        # student 2 touched OTHER table at 300.
        store.stage("users", [(1,)], 100)
        store.stage("schema", [("o", "patients", "pid", False)], 100)
        store.commit(None)
        store.stage("users", [(3,)], 200)
        store.stage("schema", [("o", "patients", "pid", False)], 200)
        store.commit(None)
        store.stage("users", [(2,)], 300)
        store.stage("schema", [("o", "other", "x", False)], 300)
        store.commit(None)

        marks = evaluate_witness_marks(witness, engine, now=400)
        users = db.table("users")
        retained_uids = {
            users.row_for_tid(tid)[1] for tid in marks["users"]
        }
        # Only student-1's patients-touching entry is needed in the future.
        assert retained_uids == {1}

    def test_window_expiry_prunes(self, registry, db):
        store = LogStore(db, registry)
        engine = Engine(db)
        witness = witness_queries(parse_select(P2B_SQL), registry, db)
        store.stage("users", [(1,)], 100)
        store.stage("schema", [("o", "patients", "pid", False)], 100)
        store.commit(None)
        # Far in the future: currenttime+1 - window > 100.
        marks = evaluate_witness_marks(witness, engine, now=100 + 1209600 + 5)
        assert marks["users"] == set()

    def test_time_independent_rewrite_yields_empty_witness(self, registry, db):
        """Example 4.4: P1_IND's witness retains nothing."""
        rewritten = rewrite_time_independent(parse_select(P1_SQL), registry, db)
        witness = witness_queries(rewritten, registry, db)
        store = LogStore(db, registry)
        engine = Engine(db)
        store.set_time(50)
        store.stage(
            "schema",
            [("o", "navteq", "x", False), ("o", "other", "y", False)],
            50,
        )
        marks = evaluate_witness_marks(witness, engine, now=50)
        assert marks.get("schema", set()) == set()

    def test_self_join_produces_one_witness_per_occurrence(self, registry, db):
        witness = witness_queries(parse_select(P1_SQL), registry, db)
        assert len(witness.per_relation["schema"]) == 2

    def test_boolean_policy_uses_distinct_on(self, registry, db):
        witness = witness_queries(parse_select(P1_SQL), registry, db)
        for template in witness.per_relation["schema"]:
            assert template.distinct_on  # Eq. 3, keyed by join attributes
            on_names = {ref.name for ref in template.distinct_on}
            assert "ts" in on_names

    def test_boolean_policy_without_joins_limits_to_one(self, registry, db):
        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1"
        )
        witness = witness_queries(select, registry, db)
        (template,) = witness.per_relation["users"]
        assert template.limit == 1

    def test_unsupported_clock_shape_retains_all(self, registry, db):
        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u, clock c WHERE u.ts <> c.ts"
        )
        witness = witness_queries(select, registry, db)
        assert witness.retain_all == {"users"}
        assert "users" not in witness.per_relation

    def test_retain_all_marks_every_tid(self, registry, db):
        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u, clock c WHERE u.ts <> c.ts"
        )
        witness = witness_queries(select, registry, db)
        store = LogStore(db, registry)
        engine = Engine(db)
        store.stage("users", [(1,), (2,)], 10)
        marks = evaluate_witness_marks(witness, engine, now=10)
        assert marks["users"] == set(db.table("users").tids())

    def test_subquery_compacted_as_full_query(self, registry, db):
        select = parse_select(
            "SELECT DISTINCT 'e' FROM "
            "(SELECT u.ts FROM users u WHERE u.uid = 1) x, schema s "
            "WHERE x.ts = s.ts"
        )
        witness = witness_queries(select, registry, db)
        assert "users" in witness.per_relation
        (template,) = witness.per_relation["users"]
        # subquery treated as full query: DISTINCT u.*, not DISTINCT ON
        assert template.distinct and not template.distinct_on

    def test_no_log_relations_yields_empty_witness_set(self, registry, db):
        select = parse_select("SELECT DISTINCT 'e' FROM groups g")
        witness = witness_queries(select, registry, db)
        assert not witness.per_relation and not witness.retain_all


class TestWitnessSoundness:
    """The compacted log decides policies exactly like the full log."""

    def _policy_fires(self, engine, select):
        return not engine.is_empty(select)

    @pytest.mark.parametrize("now", [400, 500, 1209700, 2500000])
    def test_verdict_preserved_after_compaction(self, registry, db, now):
        select = parse_select(P2B_SQL)
        witness = witness_queries(select, registry, db)

        def fresh_store():
            database = db.clone()
            return database, LogStore(database, registry), Engine(database)

        # Build identical histories.
        history = [
            (100, 1, "patients"),
            (150, 2, "patients"),
            (200, 3, "patients"),
            (250, 1, "other"),
        ]
        full_db, full_store, full_engine = fresh_store()
        compact_db, compact_store, compact_engine = fresh_store()
        for ts, uid, irid in history:
            for store in (full_store, compact_store):
                store.stage("users", [(uid,)], ts)
                store.stage("schema", [("o", irid, "x", False)], ts)
                store.commit(None)

        marks = evaluate_witness_marks(witness, compact_engine, now=now)
        compact_store.commit(marks, persist_relations=["users", "schema"])

        # At any future time ≥ now, both logs give the same verdict.
        for future in (now, now + 100, now + 1209600):
            full_store.set_time(future)
            compact_store.set_time(future)
            assert self._policy_fires(full_engine, select) == self._policy_fires(
                compact_engine, select
            )


class TestPreemptiveProbe:
    def test_probe_drops_missing_relations(self, registry, db):
        witness = witness_queries(parse_select(P2B_SQL), registry, db)
        (template,) = witness.per_relation["users"]
        probe = partial_witness_probe(template, {"users"}, registry)
        assert probe is not None
        text = print_query(probe)
        assert "schema" not in text
        assert probe.limit == 1

    def test_probe_none_when_nothing_missing(self, registry, db):
        witness = witness_queries(parse_select(P2B_SQL), registry, db)
        (template,) = witness.per_relation["users"]
        assert partial_witness_probe(template, {"users", "schema"}, registry) is None

    def test_probe_none_when_everything_missing(self, registry, db):
        select = parse_select("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1")
        witness = witness_queries(select, registry, db)
        (template,) = witness.per_relation["users"]
        assert partial_witness_probe(template, set(), registry) is None

    def test_probe_emptiness_implies_witness_emptiness(self, registry, db):
        store = LogStore(db, registry)
        engine = Engine(db)
        witness = witness_queries(parse_select(P2B_SQL), registry, db)
        # users log has an entry for a non-student only
        store.stage("users", [(3,)], 10)
        (template,) = witness.per_relation["users"]
        probe = partial_witness_probe(template, {"users"}, registry)
        probe_empty = engine.is_empty(substitute_current_time(probe, 10))
        # full witness (with schema generated empty) must also be empty
        full = substitute_current_time(template, 10)
        assert engine.is_empty(full) or not probe_empty
