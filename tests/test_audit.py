"""Audit trail tests."""

import csv
import json

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.core.audit import AuditRecord, AuditTrail, attach_audit_trail
from repro.engine import Database
from repro.log import SimulatedClock


@pytest.fixture
def enforcer():
    db = Database()
    db.load_table("navteq", ["id"], [(1,), (2,)])
    db.load_table("other", ["id"], [(1,)])
    policy = Policy.from_sql(
        "no-joins",
        "SELECT DISTINCT 'no external joins' FROM schema p1, schema p2 "
        "WHERE p1.ts = p2.ts AND p1.irid = 'navteq' AND p2.irid <> 'navteq'",
    )
    return Enforcer(
        db,
        [policy],
        clock=SimulatedClock(default_step_ms=10),
        options=EnforcerOptions.datalawyer(),
    )


JOIN = "SELECT n.id FROM navteq n, other o WHERE n.id = o.id"


@pytest.fixture
def audited(enforcer):
    trail = attach_audit_trail(enforcer)
    enforcer.submit("SELECT id FROM navteq", uid=1)
    enforcer.submit(JOIN, uid=1)
    enforcer.submit("SELECT id FROM other", uid=2)
    enforcer.submit(JOIN, uid=2)
    enforcer.submit(JOIN, uid=2)
    return enforcer, trail


class TestRecording:
    def test_every_decision_recorded(self, audited):
        _, trail = audited
        assert len(trail) == 5

    def test_record_fields(self, audited):
        _, trail = audited
        record = list(trail)[1]
        assert isinstance(record, AuditRecord)
        assert record.sql == JOIN
        assert record.uid == 1
        assert not record.allowed
        assert record.policies_fired == ("no-joins",)
        assert record.overhead_seconds > 0

    def test_rejections(self, audited):
        _, trail = audited
        assert len(trail.rejections()) == 3

    def test_for_user_and_since(self, audited):
        _, trail = audited
        assert len(trail.for_user(2)) == 3
        latest = list(trail)[-1].timestamp
        assert len(trail.since(latest)) == 1

    def test_where(self, audited):
        _, trail = audited
        joins = trail.where(lambda r: "other o" in r.sql)
        assert len(joins) == 3

    def test_summary(self, audited):
        _, trail = audited
        summary = trail.summary()
        assert summary["queries"] == 5
        assert summary["rejected"] == 3
        assert summary["rejection_rate"] == pytest.approx(0.6)
        assert summary["by_policy"] == {"no-joins": 3}
        assert summary["by_user"] == {1: 1, 2: 2}

    def test_empty_summary(self):
        assert AuditTrail().summary()["rejection_rate"] == 0.0

    def test_capacity_bound(self, enforcer):
        trail = attach_audit_trail(enforcer, capacity=3)
        for _ in range(6):
            enforcer.submit("SELECT id FROM navteq", uid=1)
        assert len(trail) == 3

    def test_decisions_unaffected(self, audited):
        enforcer, _ = audited
        decision = enforcer.submit("SELECT id FROM navteq", uid=1)
        assert decision.allowed and decision.result is not None


class TestExport:
    def test_csv_export(self, audited, tmp_path):
        _, trail = audited
        path = tmp_path / "audit.csv"
        trail.to_csv(path)
        with path.open(newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 5
        assert rows[1]["allowed"] == "0"
        assert rows[1]["policies_fired"] == "no-joins"

    def test_jsonl_export(self, audited, tmp_path):
        _, trail = audited
        path = tmp_path / "audit.jsonl"
        trail.to_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 5
        assert lines[0]["allowed"] is True
        assert lines[1]["policies_fired"] == ["no-joins"]
