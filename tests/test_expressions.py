"""Expression compiler and aggregate accumulators, unit level."""

import pytest

from repro.engine.aggregates import make_accumulator_factory
from repro.engine.expressions import (
    AGGREGATE_FUNCTIONS,
    compile_expr,
    compile_predicate,
    contains_aggregate,
    eval_constant,
    is_aggregate_call,
    references_only,
)
from repro.errors import BindError, ExecutionError
from repro.sql import ast, parse_expression


def resolver(names):
    """Column resolver mapping names to positions in the test row."""
    positions = {name: i for i, name in enumerate(names)}

    def resolve(ref: ast.ColumnRef):
        index = positions[ref.name]
        return lambda row: row[index]

    return resolve


def evaluate(text, names=("a", "b"), row=(1, 2)):
    expr = parse_expression(text)
    return compile_expr(expr, resolver(names))(row)


class TestCompileExpr:
    def test_literal(self):
        assert evaluate("42") == 42

    def test_column(self):
        assert evaluate("b") == 2

    def test_arithmetic(self):
        assert evaluate("a + b * 3") == 7

    def test_comparison(self):
        assert evaluate("a < b") is True

    def test_logic(self):
        assert evaluate("a = 1 AND b = 2") is True
        assert evaluate("a = 1 AND b = 3") is False

    def test_null_logic(self):
        assert evaluate("a = 1 AND b = 2", row=(None, 2)) is None
        assert evaluate("a = 1 OR b = 2", row=(None, 2)) is True

    def test_not(self):
        assert evaluate("NOT a = 1") is False

    def test_unary_minus(self):
        assert evaluate("-b") == -2

    def test_in_list(self):
        assert evaluate("a IN (1, 3)") is True
        assert evaluate("a IN (4, 5)") is False

    def test_in_list_null_semantics(self):
        # NULL in list → unknown; value not found but NULL present → unknown
        assert evaluate("a IN (1, 2)", row=(None, 2)) is None
        assert evaluate("a IN (b, 9)", row=(3, None)) is None

    def test_not_in(self):
        assert evaluate("a NOT IN (4)") is True

    def test_is_null(self):
        assert evaluate("a IS NULL", row=(None, 1)) is True
        assert evaluate("a IS NOT NULL", row=(None, 1)) is False

    def test_case(self):
        assert evaluate("CASE WHEN a = 1 THEN 'one' ELSE 'other' END") == "one"

    def test_case_no_match_no_default(self):
        assert evaluate("CASE WHEN a = 9 THEN 'x' END") is None

    def test_like(self):
        assert evaluate("'hello' LIKE 'h%'") is True

    def test_concat(self):
        assert evaluate("'x' || a") == "x1"

    def test_scalar_function(self):
        assert evaluate("abs(a - b)") == 1
        assert evaluate("round(2.678, 1)") == 2.7

    def test_coalesce(self):
        assert evaluate("coalesce(a, b)", row=(None, 5)) == 5

    def test_star_rejected(self):
        with pytest.raises(BindError):
            compile_expr(ast.Star(), resolver(["a"]))

    def test_aggregate_rejected_without_special(self):
        with pytest.raises(BindError):
            compile_expr(parse_expression("COUNT(a)"), resolver(["a"]))

    def test_unknown_function(self):
        with pytest.raises(BindError):
            evaluate("frobnicate(a)")

    def test_distinct_in_scalar_function(self):
        with pytest.raises(BindError):
            evaluate("abs(DISTINCT a)")

    def test_special_resolver_takes_priority(self):
        expr = parse_expression("COUNT(a)")

        def special(node):
            if is_aggregate_call(node):
                return lambda row: 99
            return None

        fn = compile_expr(expr, resolver(["a"]), special)
        assert fn(()) == 99


class TestHelpers:
    def test_compile_predicate_strictness(self):
        pred = compile_predicate(parse_expression("a = 1"), resolver(["a"]))
        assert pred((1,)) is True
        assert pred((None,)) is False  # unknown is not a match

    def test_eval_constant(self):
        assert eval_constant(parse_expression("2 + 3 * 4")) == 14

    def test_eval_constant_rejects_columns(self):
        with pytest.raises(BindError):
            eval_constant(parse_expression("a + 1"))

    def test_contains_aggregate(self):
        assert contains_aggregate(parse_expression("1 + COUNT(x)"))
        assert not contains_aggregate(parse_expression("1 + x"))

    def test_is_aggregate_call(self):
        assert is_aggregate_call(parse_expression("SUM(x)"))
        assert not is_aggregate_call(parse_expression("abs(x)"))
        assert AGGREGATE_FUNCTIONS == {"count", "sum", "min", "max", "avg"}

    def test_references_only(self):
        expr = parse_expression("t.a = u.b")
        assert references_only(expr, ["t", "u"])
        assert not references_only(expr, ["t"])
        # unqualified refs are permissive
        assert references_only(parse_expression("a = 1"), [])


class TestAccumulators:
    def _factory(self, text):
        call = parse_expression(text)
        assert isinstance(call, ast.FuncCall)
        return make_accumulator_factory(
            call, lambda expr: compile_expr(expr, resolver(["x"]))
        )

    def _run(self, text, values):
        acc = self._factory(text)()
        for value in values:
            acc.add((value,))
        return acc.result()

    def test_count_star(self):
        assert self._run("COUNT(*)", [1, None, 3]) == 3

    def test_count_skips_nulls(self):
        assert self._run("COUNT(x)", [1, None, 3]) == 2

    def test_count_distinct(self):
        assert self._run("COUNT(DISTINCT x)", [1, 1, 2, None]) == 2

    def test_sum(self):
        assert self._run("SUM(x)", [1, 2, None]) == 3

    def test_sum_empty_is_null(self):
        assert self._run("SUM(x)", []) is None

    def test_sum_distinct(self):
        assert self._run("SUM(DISTINCT x)", [2, 2, 3]) == 5

    def test_avg(self):
        assert self._run("AVG(x)", [1, 2, 3, None]) == 2.0

    def test_avg_empty_is_null(self):
        assert self._run("AVG(x)", []) is None

    def test_min_max(self):
        assert self._run("MIN(x)", [3, 1, 2]) == 1
        assert self._run("MAX(x)", [3, 1, 2]) == 3

    def test_min_max_strings(self):
        assert self._run("MIN(x)", ["b", "a"]) == "a"

    def test_min_incomparable_raises(self):
        with pytest.raises(ExecutionError):
            self._run("MIN(x)", [1, "a"])

    def test_sum_non_numeric_raises(self):
        with pytest.raises(ExecutionError):
            self._run("SUM(x)", ["a"])

    def test_count_distinct_star_rejected(self):
        call = ast.FuncCall("count", (ast.Star(),), distinct=True)
        with pytest.raises(BindError):
            make_accumulator_factory(call, lambda e: lambda row: row[0])

    def test_two_arg_aggregate_rejected(self):
        call = ast.FuncCall(
            "sum", (ast.ColumnRef(None, "x"), ast.ColumnRef(None, "y"))
        )
        with pytest.raises(BindError):
            make_accumulator_factory(call, lambda e: lambda row: row[0])

    def test_distinct_bool_vs_int_kept_separate(self):
        # True and 1 hash equal in Python; the accumulator must not merge them
        assert self._run("COUNT(DISTINCT x)", [True, 1]) == 2
