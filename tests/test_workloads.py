"""Workload tests: generator determinism, query shapes, runner helpers."""

import pytest

from repro.core import EnforcerOptions
from repro.engine import Engine
from repro.workloads import (
    MimicConfig,
    MimicStats,
    build_experiment,
    build_mimic_database,
    dispatch_cost,
    hr_event_count,
    k_anonymity,
    make_workload,
    monthly_quota,
    navteq_no_overlay,
    no_aggregation,
    rate_limit,
    repeat_query,
    round_robin,
    run_stream,
)


class TestGenerator:
    def test_deterministic(self):
        config = MimicConfig(n_patients=30)
        a = build_mimic_database(config)
        b = build_mimic_database(config)
        for name in a.table_names():
            assert a.table(name).rows() == b.table(name).rows()

    def test_seed_changes_data(self):
        a = build_mimic_database(MimicConfig(n_patients=30, seed=1))
        b = build_mimic_database(MimicConfig(n_patients=30, seed=2))
        assert a.table("d_patients").rows() != b.table("d_patients").rows()

    def test_expected_tables(self):
        db = build_mimic_database(MimicConfig(n_patients=10))
        expected = {
            "d_patients",
            "chartevents",
            "icustay_detail",
            "poe_order",
            "poe_med",
            "groups",
        }
        assert expected <= set(db.table_names())

    def test_cardinalities(self):
        config = MimicConfig(n_patients=25)
        db = build_mimic_database(config)
        stats = MimicStats.of(db).tables
        assert stats["d_patients"] == 25
        assert stats["poe_order"] == 25 * config.orders_per_patient
        assert stats["poe_med"] == stats["poe_order"]
        assert stats["icustay_detail"] == 25

    def test_chartevents_match_hr_formula(self):
        config = MimicConfig(n_patients=12)
        db = build_mimic_database(config)
        engine = Engine(db)
        for subject_id in (1, 5, 12):
            count = engine.execute(
                f"SELECT COUNT(*) FROM chartevents "
                f"WHERE subject_id = {subject_id} AND itemid = 211"
            ).scalar()
            assert count == hr_event_count(config, subject_id)

    def test_group_x_membership(self):
        db = build_mimic_database(MimicConfig(n_patients=10))
        engine = Engine(db)
        uids = set(
            engine.execute("SELECT uid FROM groups WHERE gid = 'x'").column("uid")
        )
        assert 1 in uids and 0 not in uids

    def test_foreign_keys_hold(self):
        db = build_mimic_database(MimicConfig(n_patients=15))
        engine = Engine(db)
        orphans = engine.execute(
            "SELECT COUNT(*) FROM "
            "(SELECT c.subject_id FROM chartevents c "
            " EXCEPT SELECT p.subject_id FROM d_patients p) x"
        ).scalar()
        assert orphans == 0


class TestQueries:
    def test_runtime_ordering_by_result_size(self):
        config = MimicConfig(n_patients=200)
        db = build_mimic_database(config)
        engine = Engine(db)
        workload = make_workload(config)
        w1 = engine.execute(workload["W1"]).rows
        w2 = engine.execute(workload["W2"]).rows
        w3 = engine.execute(workload["W3"]).rows
        w4 = engine.execute(workload["W4"]).rows
        assert len(w1) == 1
        assert len(w2) == 1
        assert 1 <= len(w3) < len(w4)

    def test_queries_scale_with_config(self):
        small = make_workload(MimicConfig(n_patients=100))
        large = make_workload(MimicConfig(n_patients=2000))
        assert small["W1"] != large["W1"]

    def test_workload_all_and_getitem(self):
        workload = make_workload(MimicConfig(n_patients=100))
        assert set(workload.all()) == {"W1", "W2", "W3", "W4"}
        assert workload["w2"] == workload.all()["W2"]


class TestTable1Policies:
    def test_navteq_overlay_policy(self):
        from repro.core import Enforcer
        from repro.engine import Database

        db = Database()
        db.load_table("navteq", ["id", "lat"], [(1, 10.0)])
        db.load_table("other", ["id"], [(1,)])
        enforcer = Enforcer(db, [navteq_no_overlay()])
        assert enforcer.submit("SELECT * FROM navteq", uid=1).allowed
        decision = enforcer.submit(
            "SELECT n.id FROM navteq n, other o WHERE n.id = o.id", uid=1
        )
        assert not decision.allowed

    def test_rate_limit_policy(self):
        from repro.core import Enforcer
        from repro.engine import Database
        from repro.log import SimulatedClock

        db = Database()
        db.load_table("api_data", ["k"], [(1,)])
        enforcer = Enforcer(
            db,
            [rate_limit(max_requests=2, window=1000, relation="api_data")],
            clock=SimulatedClock(default_step_ms=10),
        )
        assert enforcer.submit("SELECT * FROM api_data", uid=1).allowed
        assert enforcer.submit("SELECT * FROM api_data", uid=1).allowed
        assert not enforcer.submit("SELECT * FROM api_data", uid=1).allowed

    def test_k_anonymity_policy(self):
        from repro.core import Enforcer
        from repro.engine import Database

        db = Database()
        db.load_table("patients", ["pid", "age"], [(i, 30 + i) for i in range(20)])
        enforcer = Enforcer(db, [k_anonymity("patients", k=5)])
        # aggregate over 20 rows: fine
        assert enforcer.submit(
            "SELECT COUNT(*) FROM patients", uid=1
        ).allowed
        # point query exposes a single tuple: rejected
        assert not enforcer.submit(
            "SELECT * FROM patients WHERE pid = 3", uid=1
        ).allowed

    def test_no_aggregation_policy(self):
        from repro.core import Enforcer
        from repro.engine import Database

        db = Database()
        db.load_table("yelp", ["biz", "stars"], [("a", 4), ("b", 5)])
        enforcer = Enforcer(db, [no_aggregation("yelp")])
        assert enforcer.submit("SELECT biz, stars FROM yelp", uid=1).allowed
        assert not enforcer.submit(
            "SELECT AVG(stars) FROM yelp", uid=1
        ).allowed

    def test_monthly_quota_policy(self):
        from repro.core import Enforcer
        from repro.engine import Database
        from repro.log import SimulatedClock

        db = Database()
        db.load_table("translator", ["k"], [(i,) for i in range(30)])
        enforcer = Enforcer(
            db,
            [monthly_quota("translator", max_tuples=40, window=100000)],
            clock=SimulatedClock(default_step_ms=10),
        )
        assert enforcer.submit("SELECT * FROM translator", uid=1).allowed
        # second full read pushes the window total to 60 > 40
        assert not enforcer.submit("SELECT * FROM translator", uid=1).allowed


class TestRunner:
    def test_build_experiment_defaults(self, tiny_mimic_config):
        experiment = build_experiment(config=tiny_mimic_config)
        assert len(experiment.enforcer.runtime_policies()) >= 5

    def test_build_experiment_policy_subset(self, tiny_mimic_config):
        experiment = build_experiment(
            policy_names=["P1", "P2"], config=tiny_mimic_config
        )
        assert len(experiment.enforcer.policies) == 2

    def test_run_stream_counts(self, tiny_mimic_config):
        experiment = build_experiment(
            policy_names=["P2"], config=tiny_mimic_config
        )
        stream = repeat_query(experiment.workload["W1"], uid=1, count=4)
        result = run_stream(experiment.enforcer, stream, execute=False)
        assert result.allowed == 4 and result.rejected == 0
        assert len(result.metrics) == 4

    def test_run_stream_isolates_metrics(self, tiny_mimic_config):
        experiment = build_experiment(
            policy_names=["P2"], config=tiny_mimic_config
        )
        run_stream(
            experiment.enforcer,
            repeat_query(experiment.workload["W1"], 1, 3),
            execute=False,
        )
        second = run_stream(
            experiment.enforcer,
            repeat_query(experiment.workload["W1"], 1, 2),
            execute=False,
        )
        assert len(second.metrics) == 2
        assert len(experiment.enforcer.metrics_log) == 5

    def test_round_robin(self):
        stream = round_robin(["q1", "q2"], [0, 1, 2], 6)
        assert stream[0] == ("q1", 0)
        assert stream[1] == ("q2", 1)
        assert stream[2] == ("q1", 2)
        assert len(stream) == 6

    def test_dispatch_cost_scales_linearly(self):
        assert dispatch_cost(10) == pytest.approx(10 * dispatch_cost(1))

    def test_experiment_with_noopt_options(self, tiny_mimic_config):
        experiment = build_experiment(
            policy_names=["P1"],
            config=tiny_mimic_config,
            options=EnforcerOptions.noopt(),
        )
        assert not experiment.enforcer.options.log_compaction
