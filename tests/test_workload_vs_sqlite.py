"""The actual workload queries, cross-checked against SQLite.

The differential fuzz suite covers random tiny tables; this one loads the
*generated* MIMIC and marketplace datasets into SQLite and verifies that
every canonical workload query (W1–W4, M1–M4) returns identical row
multisets there and on our engine.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.engine import Database, Engine
from repro.workloads import (
    MarketplaceConfig,
    MimicConfig,
    build_marketplace_database,
    build_mimic_database,
    make_marketplace_workload,
    make_workload,
)


def to_sqlite(database: Database) -> sqlite3.Connection:
    connection = sqlite3.connect(":memory:")
    for name in database.table_names():
        table = database.table(name)
        columns = ", ".join(table.schema.column_names)
        connection.execute(f"CREATE TABLE {name} ({columns})")
        placeholders = ", ".join("?" * table.schema.arity)
        connection.executemany(
            f"INSERT INTO {name} VALUES ({placeholders})",
            [
                tuple(int(v) if isinstance(v, bool) else v for v in row)
                for row in table.rows()
            ],
        )
    return connection


def normalize(rows):
    # SQLite stores our booleans as 0/1; normalize both sides to ints.
    out = []
    for row in rows:
        out.append(
            tuple(int(v) if isinstance(v, bool) else v for v in row)
        )
    return sorted(out, key=repr)


class TestMimicWorkloadAgainstSqlite:
    @pytest.fixture(scope="class")
    def setup(self):
        config = MimicConfig(n_patients=120)
        database = build_mimic_database(config)
        return (
            Engine(database),
            to_sqlite(database),
            make_workload(config),
        )

    @pytest.mark.parametrize("name", ["W1", "W2", "W3", "W4"])
    def test_query_matches(self, setup, name):
        engine, connection, workload = setup
        sql = workload[name]
        ours = normalize(engine.execute(sql).rows)
        theirs = normalize(connection.execute(sql).fetchall())
        assert ours == theirs

    def test_row_counts_per_table(self, setup):
        engine, connection, _ = setup
        for table in ("d_patients", "chartevents", "poe_order"):
            ours = engine.execute(f"SELECT COUNT(*) FROM {table}").scalar()
            theirs = connection.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0]
            assert ours == theirs


class TestMarketplaceWorkloadAgainstSqlite:
    @pytest.fixture(scope="class")
    def setup(self):
        config = MarketplaceConfig(n_listings=150)
        database = build_marketplace_database(config)
        return (
            Engine(database),
            to_sqlite(database),
            make_marketplace_workload(config),
        )

    @pytest.mark.parametrize("name", ["M1", "M2", "M3", "M4"])
    def test_query_matches(self, setup, name):
        engine, connection, workload = setup
        sql = workload[name]
        ours = normalize(engine.execute(sql).rows)
        theirs = normalize(connection.execute(sql).fetchall())
        assert ours == theirs

    def test_analytics_join_matches(self, setup):
        engine, connection, _ = setup
        sql = (
            "SELECT l.category, COUNT(r.biz_id) FROM listings l, ratings r "
            "WHERE l.biz_id = r.biz_id GROUP BY l.category"
        )
        assert normalize(engine.execute(sql).rows) == normalize(
            connection.execute(sql).fetchall()
        )

    def test_left_join_matches(self, setup):
        engine, connection, _ = setup
        sql = (
            "SELECT v.vname, COUNT(l.biz_id) FROM vendors v "
            "LEFT JOIN listings l ON v.vendor_id = l.vendor_id "
            "GROUP BY v.vname"
        )
        assert normalize(engine.execute(sql).rows) == normalize(
            connection.execute(sql).fetchall()
        )
