"""Edge cases across the stack, pinned down as regression tests."""

import pytest

from repro.core import Enforcer, EnforcerOptions, Policy
from repro.engine import Database, Engine
from repro.errors import (
    BindError,
    CatalogError,
    ParseError,
    PolicySyntaxError,
)
from repro.log import LogStore, SimulatedClock, standard_registry
from repro.sql import parse, parse_select


class TestParserEdges:
    def test_empty_in_list_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM t WHERE a IN ()")

    def test_deeply_nested_parens(self):
        q = parse("SELECT ((((1 + 2)))) FROM t")
        assert q is not None

    def test_keyword_cannot_be_table_name(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM select")

    def test_missing_from_item(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM")

    def test_double_where_rejected(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM t WHERE a = 1 WHERE b = 2")

    def test_group_by_without_exprs(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 FROM t GROUP BY")

    def test_comment_only_where_clause(self):
        q = parse_select("SELECT a FROM t -- trailing comment\n")
        assert q.where is None

    def test_whitespace_in_string_preserved(self):
        q = parse_select("SELECT 'a  b' FROM t")
        from repro.sql import ast

        assert q.items[0].expr == ast.Literal("a  b")


class TestEngineEdges:
    @pytest.fixture
    def engine(self):
        db = Database()
        db.load_table("t", ["a", "b"], [(1, 10), (2, 20)])
        return Engine(db)

    def test_empty_table_scan(self):
        db = Database()
        db.create_table("empty", ["a"])
        assert Engine(db).execute("SELECT * FROM empty").rows == []

    def test_aggregate_in_order_by_forces_grouping(self, engine):
        result = engine.execute("SELECT a FROM t GROUP BY a ORDER BY MAX(b) DESC")
        assert result.rows == [(2,), (1,)]

    def test_having_without_group_by_on_nonempty(self, engine):
        assert engine.execute(
            "SELECT SUM(b) FROM t HAVING SUM(b) > 25"
        ).rows == [(30,)]

    def test_group_context_rejects_loose_column_in_having(self, engine):
        with pytest.raises(BindError):
            engine.execute("SELECT a FROM t GROUP BY a HAVING b > 1")

    def test_duplicate_output_names_allowed(self, engine):
        result = engine.execute("SELECT a, a FROM t WHERE a = 1")
        assert result.columns == ["a", "a"]
        assert result.rows == [(1, 1)]

    def test_ambiguous_subquery_output_detected_on_use(self, engine):
        # duplicate names inside a subquery are fine until referenced
        with pytest.raises(BindError):
            engine.execute("SELECT x.a FROM (SELECT a, a FROM t) x")

    def test_expression_group_key_matches_select_expression(self, engine):
        result = engine.execute(
            "SELECT a + 1, COUNT(*) FROM t GROUP BY a + 1"
        )
        assert sorted(result.rows) == [(2, 1), (3, 1)]

    def test_group_by_expression_mismatch_rejected(self, engine):
        with pytest.raises(BindError):
            engine.execute("SELECT a + 2 FROM t GROUP BY a + 1")

    def test_case_insensitive_table_reference(self, engine):
        assert len(engine.execute("SELECT * FROM T").rows) == 2

    def test_unknown_table_is_catalog_error(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("SELECT * FROM ghost")

    def test_limit_on_union(self, engine):
        result = engine.execute(
            "SELECT x.a FROM (SELECT a FROM t UNION ALL SELECT a FROM t) x "
            "LIMIT 3"
        )
        assert len(result.rows) == 3


class TestWitnessEdges:
    def test_grouped_boolean_policy_uses_full_query_witness(self):
        """GROUP BY forces the Eq. 2 (DISTINCT, not DISTINCT ON) witness."""
        from repro.analysis import witness_queries

        registry = standard_registry()
        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u, clock c "
            "WHERE u.ts > c.ts - 50 GROUP BY u.uid"
        )
        witness = witness_queries(select, registry)
        (template,) = witness.per_relation["users"]
        assert template.distinct and not template.distinct_on

    def test_policy_without_where_compacts_to_window(self):
        from repro.analysis import evaluate_witness_marks, witness_queries

        registry = standard_registry()
        db = Database()
        store = LogStore(db, registry)
        engine = Engine(db)
        select = parse_select(
            "SELECT DISTINCT 'e' FROM users u, clock c "
            "WHERE u.ts > c.ts - 10 HAVING COUNT(*) > 100"
        )
        witness = witness_queries(select, registry, db)
        store.stage("users", [(1,)], 1)
        store.stage("users", [(2,)], 95)
        marks = evaluate_witness_marks(witness, engine, now=100)
        users = db.table("users")
        kept = {users.row_for_tid(t)[0] for t in marks["users"]}
        assert kept == {95}


class TestLogStoreEdges:
    def test_commit_marks_for_unstaged_relation(self):
        registry = standard_registry()
        db = Database()
        store = LogStore(db, registry)
        store.stage("users", [(1,)], 1)
        store.commit(None)
        # next query stages nothing for users; marks still prune disk
        stats = store.commit({"users": set()}, persist_relations=["users"])
        assert stats.tuples_deleted == 1
        assert store.disk_size("users") == 0

    def test_double_commit_is_harmless(self):
        registry = standard_registry()
        db = Database()
        store = LogStore(db, registry)
        store.stage("users", [(1,)], 1)
        store.commit(None)
        stats = store.commit(None)
        assert stats.tuples_inserted == 0

    def test_discard_with_nothing_staged(self):
        store = LogStore(Database(), standard_registry())
        assert store.discard_staged() == 0


class TestEnforcerEdges:
    def test_no_policies_means_everything_allowed(self):
        db = Database()
        db.load_table("t", ["a"], [(1,)])
        enforcer = Enforcer(db, [])
        decision = enforcer.submit("SELECT * FROM t", uid=1)
        assert decision.allowed
        # no policies → no logs generated at all
        assert enforcer.store.total_live_size() == 0

    def test_execute_queries_option_off(self):
        db = Database()
        db.load_table("t", ["a"], [(1,)])
        enforcer = Enforcer(
            db, [], options=EnforcerOptions.datalawyer(execute_queries=False)
        )
        decision = enforcer.submit("SELECT * FROM t", uid=1)
        assert decision.allowed and decision.result is None
        # per-call override wins
        decision = enforcer.submit("SELECT * FROM t", uid=1, execute=True)
        assert decision.result is not None

    def test_query_against_missing_table_raises(self):
        db = Database()
        db.load_table("t", ["a"], [(1,)])
        enforcer = Enforcer(db, [])
        with pytest.raises(CatalogError):
            enforcer.submit("SELECT * FROM ghost", uid=1)

    def test_malformed_query_raises_before_logging(self):
        db = Database()
        db.load_table("t", ["a"], [(1,)])
        policy = Policy.from_sql(
            "p", "SELECT DISTINCT 'x' FROM users u WHERE u.uid = 99"
        )
        enforcer = Enforcer(db, [policy])
        with pytest.raises(ParseError):
            enforcer.submit("SELEKT", uid=1)
        assert enforcer.store.total_live_size() == 0

    def test_rejected_query_does_not_advance_log_but_advances_clock(self):
        db = Database()
        db.load_table("navteq", ["id"], [(1,)])
        db.load_table("other", ["id"], [(1,)])
        policy = Policy.from_sql(
            "no-joins",
            "SELECT DISTINCT 'no joins' FROM schema p1, schema p2 "
            "WHERE p1.ts = p2.ts AND p1.irid = 'navteq' "
            "AND p2.irid <> 'navteq'",
        )
        enforcer = Enforcer(
            db, [policy], clock=SimulatedClock(default_step_ms=10)
        )
        before = enforcer.clock.now()
        enforcer.submit(
            "SELECT n.id FROM navteq n, other o WHERE n.id = o.id", uid=1
        )
        assert enforcer.clock.now() == before + 10

    def test_policy_on_missing_db_table_fails_loudly_at_check(self):
        db = Database()
        db.load_table("t", ["a"], [(1,)])
        policy = Policy.from_sql(
            "p",
            "SELECT DISTINCT 'x' FROM users u, ghosts g WHERE u.uid = g.id",
        )
        enforcer = Enforcer(db, [policy])
        with pytest.raises(CatalogError):
            enforcer.submit("SELECT * FROM t", uid=1)

    def test_same_policy_name_twice_is_allowed_but_both_enforced(self):
        db = Database()
        db.load_table("t", ["a"], [(1,)])
        p = Policy.from_sql(
            "dup", "SELECT DISTINCT 'fired' FROM users u WHERE u.uid = 1"
        )
        enforcer = Enforcer(db, [p, p], options=EnforcerOptions.datalawyer())
        decision = enforcer.submit("SELECT * FROM t", uid=1)
        assert not decision.allowed
