"""Property-based printer/parser round-trip over generated ASTs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import ast, parse, parse_expression, print_expr, print_query

identifiers = st.sampled_from(["a", "b", "c", "ts", "uid", "irid"])
table_names = st.sampled_from(["t", "u", "users", "big_table"])

literals = st.one_of(
    st.integers(min_value=-999, max_value=999).map(ast.Literal),
    st.sampled_from([0.5, 2.25, 10.0]).map(ast.Literal),
    st.sampled_from(["x", "it's", "", "100%"]).map(ast.Literal),
    st.sampled_from([True, False, None]).map(ast.Literal),
)

column_refs = st.builds(
    ast.ColumnRef, st.one_of(st.none(), table_names), identifiers
)


def expressions(depth: int = 3) -> st.SearchStrategy[ast.Expr]:
    if depth == 0:
        return st.one_of(literals, column_refs)
    sub = expressions(depth - 1)
    return st.one_of(
        literals,
        column_refs,
        st.builds(
            ast.BinaryOp,
            st.sampled_from(
                ["+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "and", "or"]
            ),
            sub,
            sub,
        ),
        st.builds(ast.UnaryOp, st.just("not"), sub),
        st.builds(ast.IsNull, sub, st.booleans()),
        st.builds(
            ast.InList,
            sub,
            st.lists(literals, min_size=1, max_size=3).map(tuple),
            st.booleans(),
        ),
        st.builds(
            ast.FuncCall,
            st.sampled_from(["abs", "coalesce", "length", "lower"]),
            st.lists(sub, min_size=1, max_size=2).map(tuple),
            st.just(False),
        ),
        st.builds(
            ast.CaseExpr,
            st.lists(st.tuples(sub, sub), min_size=1, max_size=2).map(tuple),
            st.one_of(st.none(), sub),
        ),
    )


@settings(max_examples=200, deadline=None)
@given(expressions())
def test_expression_roundtrip(expr):
    rendered = print_expr(expr)
    assert parse_expression(rendered) == expr


select_items = st.lists(
    st.builds(
        ast.SelectItem, expressions(2), st.one_of(st.none(), identifiers)
    ),
    min_size=1,
    max_size=3,
).map(tuple)

from_items = st.lists(
    st.builds(
        ast.TableRef,
        table_names,
        st.one_of(st.none(), st.sampled_from(["p", "q", "r2"])),
    ),
    min_size=1,
    max_size=3,
).map(lambda items: tuple(_dedupe_aliases(items)))


def _dedupe_aliases(items):
    seen = set()
    result = []
    for index, item in enumerate(items):
        name = item.binding_name()
        if name in seen:
            item = ast.TableRef(item.name, f"alias{index}")
        seen.add(item.binding_name())
        result.append(item)
    return result


selects = st.builds(
    ast.Select,
    items=select_items,
    from_items=from_items,
    where=st.one_of(st.none(), expressions(2)),
    group_by=st.lists(column_refs, max_size=2).map(tuple),
    having=st.none(),
    distinct=st.booleans(),
    distinct_on=st.just(()),
    order_by=st.just(()),
    limit=st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
)


@settings(max_examples=150, deadline=None)
@given(selects)
def test_select_roundtrip(select):
    rendered = print_query(select)
    assert parse(rendered) == select


@settings(max_examples=80, deadline=None)
@given(selects, selects, st.booleans())
def test_union_roundtrip(left, right, all_flag):
    query = ast.SetOp("union", left, right, all=all_flag)
    rendered = print_query(query)
    assert parse(rendered) == query
