"""Lineage (contributing-tuples provenance) tests."""

import pytest

from repro.engine import Database, Engine


@pytest.fixture
def db():
    db = Database()
    db.load_table("r", ["k", "v"], [(1, "a"), (2, "b"), (2, "c")])
    db.load_table("s", ["k", "w"], [(1, 10), (2, 20)])
    return db


@pytest.fixture
def engine(db):
    return Engine(db)


def lineage_map(result):
    return [sorted(lin) for lin in result.lineages]


class TestScanLineage:
    def test_each_row_tagged_with_own_tid(self, engine):
        result = engine.execute("SELECT * FROM r", lineage=True)
        assert lineage_map(result) == [[("r", 0)], [("r", 1)], [("r", 2)]]

    def test_filter_preserves_lineage(self, engine):
        result = engine.execute("SELECT v FROM r WHERE k = 2", lineage=True)
        assert lineage_map(result) == [[("r", 1)], [("r", 2)]]

    def test_index_scan_lineage(self, engine):
        result = engine.execute("SELECT v FROM r WHERE k = 1", lineage=True)
        assert lineage_map(result) == [[("r", 0)]]


class TestJoinLineage:
    def test_join_unions_both_sides(self, engine):
        result = engine.execute(
            "SELECT r.v, s.w FROM r, s WHERE r.k = s.k", lineage=True
        )
        expected = {
            ("a", 10): [("r", 0), ("s", 0)],
            ("b", 20): [("r", 1), ("s", 1)],
            ("c", 20): [("r", 2), ("s", 1)],
        }
        for row, lin in zip(result.rows, result.lineages):
            assert sorted(lin) == expected[row]

    def test_cross_product_lineage(self, engine):
        result = engine.execute("SELECT 1 FROM r, s", lineage=True)
        assert len(result.rows) == 6
        assert all(len(lin) == 2 for lin in result.lineages)


class TestAggregateLineage:
    def test_group_lineage_unions_members(self, engine):
        result = engine.execute(
            "SELECT k, COUNT(*) FROM r GROUP BY k", lineage=True
        )
        by_key = dict(zip([row[0] for row in result.rows], result.lineages))
        assert sorted(by_key[1]) == [("r", 0)]
        assert sorted(by_key[2]) == [("r", 1), ("r", 2)]

    def test_scalar_aggregate_over_empty_has_empty_lineage(self, engine):
        result = engine.execute(
            "SELECT COUNT(*) FROM r WHERE FALSE", lineage=True
        )
        assert result.lineages == [frozenset()]

    def test_having_drops_group_lineage(self, engine):
        result = engine.execute(
            "SELECT k FROM r GROUP BY k HAVING COUNT(*) > 1", lineage=True
        )
        assert lineage_map(result) == [[("r", 1), ("r", 2)]]


class TestDistinctLineage:
    def test_distinct_unions_duplicates(self, engine):
        result = engine.execute("SELECT DISTINCT k FROM r", lineage=True)
        by_key = dict(zip([row[0] for row in result.rows], result.lineages))
        assert sorted(by_key[2]) == [("r", 1), ("r", 2)]

    def test_distinct_on_keeps_single_representative(self, engine):
        result = engine.execute(
            "SELECT DISTINCT ON (k), r.v FROM r", lineage=True
        )
        # one lineage tuple per output row — NOT the union of the group
        assert all(len(lin) == 1 for lin in result.lineages)

    def test_union_merges_lineage_of_equal_rows(self, engine):
        result = engine.execute(
            "SELECT k FROM r WHERE k = 1 UNION SELECT k FROM s WHERE k = 1",
            lineage=True,
        )
        assert len(result.rows) == 1
        assert sorted(result.lineages[0]) == [("r", 0), ("s", 0)]


class TestSubqueryLineage:
    def test_lineage_passes_through_subquery(self, engine):
        result = engine.execute(
            "SELECT x.k FROM (SELECT k FROM r WHERE v = 'b') x", lineage=True
        )
        assert lineage_map(result) == [[("r", 1)]]

    def test_nested_aggregation_lineage(self, engine):
        result = engine.execute(
            "SELECT COUNT(*) FROM (SELECT k FROM r GROUP BY k) x",
            lineage=True,
        )
        assert sorted(result.lineages[0]) == [("r", 0), ("r", 1), ("r", 2)]


class TestLineageCorrectness:
    """Semantic checks: lineage tuples actually matter."""

    def test_removing_non_lineage_tuple_preserves_row(self, engine, db):
        sql = "SELECT r.v FROM r, s WHERE r.k = s.k AND r.k = 1"
        result = engine.execute(sql, lineage=True)
        needed = set().union(*result.lineages)
        # Remove every tuple NOT in the lineage; the answer must not change.
        for table_name in ("r", "s"):
            table = db.table(table_name)
            keep = {tid for tbl, tid in needed if tbl == table_name}
            table.retain_tids(keep)
        engine.invalidate_plans()
        again = engine.execute(sql)
        assert again.rows == result.rows

    def test_lineage_tables_helper(self, engine):
        result = engine.execute(
            "SELECT r.v FROM r, s WHERE r.k = s.k", lineage=True
        )
        assert result.lineage_tables() == {"r", "s"}

    def test_no_lineage_by_default(self, engine):
        result = engine.execute("SELECT * FROM r")
        assert result.lineages is None
        assert result.lineage_tables() == set()
