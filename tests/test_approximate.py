"""Approximate policies (§6 future work, implemented)."""

import pytest

from repro.core import Policy
from repro.core.approximate import (
    ApproximatePolicy,
    UnsoundScreenError,
    derive_screen,
    from_screen_sql,
)
from repro.engine import Database, Engine
from repro.errors import PolicyError
from repro.log import LogStore, standard_registry

P2B = Policy.from_sql(
    "p2b",
    "SELECT DISTINCT 'too many students' FROM users u, schema s, groups g "
    "WHERE u.ts = s.ts AND s.irid = 'patients' AND u.uid = g.uid "
    "AND g.gid = 'students' HAVING COUNT(DISTINCT u.uid) > 1",
)


@pytest.fixture
def setup():
    registry = standard_registry()
    db = Database()
    db.load_table("groups", ["uid", "gid"], [(1, "students"), (2, "students")])
    store = LogStore(db, registry)
    engine = Engine(db)
    return registry, db, store, engine


def load(store, entries):
    for ts, uid, irid in entries:
        store.stage("users", [(uid,)], ts)
        store.stage("schema", [("o", irid, "x", False)], ts)
    store.commit(None)


class TestDeriveScreen:
    def test_derived_screen_is_users_partial(self, setup):
        registry, db, _, _ = setup
        approx = derive_screen(P2B, registry, db)
        assert "users" in approx.screen_sql
        assert "schema" not in approx.screen_sql

    def test_screen_for_specific_stage(self, setup):
        registry, db, _, _ = setup
        approx = derive_screen(P2B, registry, db, keep_relations={"users"})
        assert "users u" in approx.screen_sql

    def test_no_screen_for_single_relation_policy(self, setup):
        registry, db, _, _ = setup
        policy = Policy.from_sql(
            "solo", "SELECT DISTINCT 'x' FROM users u WHERE u.uid = 1"
        )
        with pytest.raises(PolicyError):
            derive_screen(policy, registry, db)

    def test_screen_passes_compliant_state(self, setup):
        registry, db, store, engine = setup
        approx = derive_screen(P2B, registry, db)
        load(store, [(1, 1, "patients")])  # one student only
        assert approx.check(engine) is False
        assert approx.stats()["checks"] == 1

    def test_escalation_catches_violation(self, setup):
        registry, db, store, engine = setup
        approx = derive_screen(P2B, registry, db)
        load(store, [(1, 1, "patients"), (2, 2, "patients")])
        assert approx.check(engine) is True
        assert approx.escalations == 1

    def test_screen_overfires_but_precise_decides(self, setup):
        registry, db, store, engine = setup
        approx = derive_screen(P2B, registry, db)
        # two students queried, but NOT patients: screen (no schema atom)
        # fires, the precise policy clears it.
        load(store, [(1, 1, "other"), (2, 2, "other")])
        assert approx.check(engine) is False
        assert approx.escalations == 1
        assert approx.screened_out == 0

    def test_screen_rate_reported(self, setup):
        registry, db, store, engine = setup
        approx = derive_screen(P2B, registry, db)
        assert approx.check(engine) is False  # empty log: screened out
        load(store, [(1, 1, "patients"), (2, 2, "patients")])
        approx.check(engine)
        stats = approx.stats()
        assert stats["checks"] == 2
        assert 0 < stats["screen_rate"] < 1


class TestHandWrittenScreens:
    def test_sound_screen(self, setup):
        registry, db, store, engine = setup
        approx = from_screen_sql(
            P2B,
            "SELECT DISTINCT 1 FROM users u, groups g "
            "WHERE u.uid = g.uid AND g.gid = 'students'",
            validate=True,
        )
        load(store, [(1, 1, "patients"), (2, 2, "patients")])
        assert approx.check(engine) is True

    def test_unsound_screen_detected_in_validate_mode(self, setup):
        registry, db, store, engine = setup
        # screen requires uid = 99: misses real violations
        approx = from_screen_sql(
            P2B,
            "SELECT DISTINCT 1 FROM users u WHERE u.uid = 99",
            validate=True,
        )
        load(store, [(1, 1, "patients"), (2, 2, "patients")])
        with pytest.raises(UnsoundScreenError):
            approx.check(engine)

    def test_unsound_screen_silent_without_validation(self, setup):
        registry, db, store, engine = setup
        approx = from_screen_sql(
            P2B, "SELECT DISTINCT 1 FROM users u WHERE u.uid = 99"
        )
        load(store, [(1, 1, "patients"), (2, 2, "patients")])
        # documented hazard: without validation, a bad screen hides the
        # violation (screens are the author's responsibility)
        assert approx.check(engine) is False

    def test_screen_must_be_select(self, setup):
        with pytest.raises(PolicyError):
            from_screen_sql(P2B, "SELECT 1 FROM a UNION SELECT 1 FROM b")


class TestScreenSoundnessProperty:
    def test_derived_screens_never_miss(self, setup):
        """Random log states: derived screen empty ⇒ policy empty."""
        import random

        registry, db, store, engine = setup
        approx = derive_screen(P2B, registry, db)
        rng = random.Random(11)
        for ts in range(1, 40):
            uid = rng.choice([1, 2, 3])
            irid = rng.choice(["patients", "other"])
            store.stage("users", [(uid,)], ts)
            store.stage("schema", [("o", irid, "x", False)], ts)
            store.commit(None)
            screen_empty = engine.is_empty(approx.screen)
            policy_fired = not engine.is_empty(P2B.select)
            if screen_empty:
                assert not policy_fired
