"""Quickstart: enforce a 'no external joins' term of use in ~30 lines.

This reproduces the paper's motivating example (Table 1, P1): Navteq's
terms prohibit overlaying their map data with any other dataset. The
policy is one SQL query over the `schema` usage log; DataLawyer checks it
before every user query.

Run:  python examples/quickstart.py
"""

from repro.api import Database, Policy, connect


def main() -> None:
    # 1. Your data: a licensed dataset plus your own tables.
    db = Database()
    db.load_table(
        "navteq",
        ["road_id", "lat", "lon"],
        [(1, 47.61, -122.33), (2, 40.71, -74.00), (3, 51.50, -0.12)],
    )
    db.load_table(
        "customers",
        ["cust_id", "nearest_road"],
        [(100, 1), (101, 3)],
    )

    # 2. The term of use, written as SQL over the usage log: the query at
    #    hand violates it when its Schema log shows both a navteq column
    #    and a non-navteq column (i.e., the query overlays the datasets).
    no_overlay = Policy.from_sql(
        "navteq-no-overlay",
        """
        SELECT DISTINCT 'Overlaying navteq data with other data is prohibited'
        FROM schema p1, schema p2
        WHERE p1.ts = p2.ts
          AND p1.irid = 'navteq'
          AND p2.irid <> 'navteq'
        """,
    )

    # 3. Wrap the database with DataLawyer.
    enforcer = connect(database=db, policies=[no_overlay])

    # 4. Compliant queries run normally...
    decision = enforcer.submit("SELECT road_id, lat FROM navteq", uid=7)
    print(f"query 1 allowed: {decision.allowed}")
    print(f"  rows: {decision.result.rows}")

    decision = enforcer.submit("SELECT * FROM customers", uid=7)
    print(f"query 2 allowed: {decision.allowed}")

    # 5. ...but joining navteq with anything else is rejected up front.
    decision = enforcer.submit(
        "SELECT c.cust_id, n.lat FROM customers c, navteq n "
        "WHERE c.nearest_road = n.road_id",
        uid=7,
    )
    print(f"query 3 allowed: {decision.allowed}")
    for violation in decision.violations:
        print(f"  rejected: {violation}")

    # The policy is *time-independent* (§4.1.1): DataLawyer checks it on
    # the current query only and never stores any usage log at all.
    print(f"usage log rows kept on disk: {enforcer.store.total_live_size()}")


if __name__ == "__main__":
    main()
