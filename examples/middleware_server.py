"""DataLawyer as HTTP middleware: the paper's deployment shape, live.

Boots the enforcement server over the marketplace workload (per-subscriber
rate limits + free-tier quota + Yelp-style no-blending, with the rate
limits unified into one policy) and drives it with a plain HTTP client —
the way a non-Python application stack would integrate it.

Run:  python examples/middleware_server.py
"""

import json
import threading
from http.client import HTTPConnection

from repro import SimulatedClock
from repro.api import connect
from repro.server import serve
from repro.workloads import (
    MarketplaceConfig,
    build_marketplace_database,
    make_marketplace_workload,
    standard_contract,
)


def call(address, method, path, body=None):
    connection = HTTPConnection(*address)
    payload = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"} if payload else {}
    connection.request(method, path, body=payload, headers=headers)
    response = connection.getresponse()
    data = json.loads(response.read().decode())
    connection.close()
    return response.status, data


def main() -> None:
    config = MarketplaceConfig(
        n_listings=120, rate_limit=3, rate_window=1000,
        free_tier_tuples=200, free_tier_window=60_000,
    )
    enforcer = connect(
        database=build_marketplace_database(config),
        policies=standard_contract(config),
        clock=SimulatedClock(default_step_ms=50),
    )
    workload = make_marketplace_workload(config)

    httpd = serve(enforcer, port=0)  # ephemeral port
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    address = httpd.server_address
    print(f"middleware listening on {address[0]}:{address[1]}\n")

    try:
        status, body = call(address, "GET", "/policies")
        print(f"GET /policies -> {status}: {len(body['policies'])} policies installed")

        status, body = call(
            address, "POST", "/query", {"sql": workload["M2"], "uid": 2}
        )
        print(f"POST /query (display join, uid 2) -> {status}, "
              f"{body.get('row_count', 0)} rows")

        # Burn subscriber 1's rate limit.
        for attempt in range(1, 5):
            status, body = call(
                address, "POST", "/query", {"sql": workload["M1"], "uid": 1}
            )
            note = (
                body["violations"][0]["message"]
                if status == 403
                else f"{body.get('row_count', 0)} rows"
            )
            print(f"POST /query (lookup, uid 1) attempt {attempt} -> {status}: {note}")

        # Blending ratings: rejected with evidence on request.
        status, body = call(
            address,
            "POST",
            "/query",
            {
                "sql": "SELECT l.category, AVG(r.stars) "
                "FROM listings l, ratings r "
                "WHERE l.biz_id = r.biz_id GROUP BY l.category",
                "uid": 2,
                "explain": True,
            },
        )
        print(f"POST /query (blend ratings) -> {status}: "
              f"{body['violations'][0]['message']}")
        evidence = body["evidence"][0]["tuples"]
        flagged = [t for t in evidence if t["from_current_query"]]
        print(f"  evidence: {len(evidence)} tuples, "
              f"{len(flagged)} from this query, e.g. {flagged[0]['values']}")

        # Operators can manage policies over the same API.
        status, _ = call(
            address,
            "POST",
            "/policies",
            {
                "name": "no-vendor-joins",
                "sql": "SELECT DISTINCT 'vendors is internal-only' "
                "FROM schema s WHERE s.irid = 'vendors'",
            },
        )
        print(f"POST /policies (register new term) -> {status}")
        status, body = call(
            address, "POST", "/query", {"sql": "SELECT * FROM vendors", "uid": 2}
        )
        print(f"POST /query (touch vendors) -> {status}: "
              f"{body['violations'][0]['message']}")

        status, body = call(address, "GET", "/log")
        print(f"\nGET /log -> usage log after compaction: {body['log']}")
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5)


if __name__ == "__main__":
    main()
