"""Usage-based data pricing (§2 of the paper).

"DataLawyer can be used to compute the price of the data dynamically,
e.g., based on how the data was used during the last billing period."
(citing Factual's volume+use-case pricing.)

This example runs a mixed workload through DataLawyer and then *queries
the usage log itself* to produce a bill: per-tuple charges for raw reads
of the premium table, a discounted rate for aggregate-only use, and a
flat fee per query that joins premium data with the customer's own.

A retention policy keeps the usage log scoped to the billing window, so
the billing queries stay cheap no matter how long the system runs.

Run:  python examples/usage_based_pricing.py
"""

from repro import SimulatedClock
from repro.api import Database, Policy, connect

BILLING_WINDOW_MS = 60_000

PRICE_PER_TUPLE_RAW = 0.02  # raw extraction, per premium tuple used
PRICE_PER_TUPLE_AGG = 0.004  # aggregate-only use, per premium tuple used
PRICE_PER_JOIN_QUERY = 0.50  # overlaying premium data with own data


def main() -> None:
    db = Database()
    db.load_table(
        "premium_firmographics",
        ["firm_id", "sector", "revenue"],
        [(i, ("tech", "retail", "energy")[i % 3], 1000 + 37 * i) for i in range(120)],
    )
    db.load_table(
        "my_leads",
        ["lead_id", "firm_id"],
        [(i, i * 3 % 120) for i in range(25)],
    )

    # The billing period's retention policy: the log must cover the window,
    # so we install one (never-firing) policy whose witness keeps exactly
    # the window's worth of provenance and schema history.
    retention = Policy.from_sql(
        "billing-retention",
        f"""
        SELECT DISTINCT 'unreachable sentinel'
        FROM users u, schema s, provenance p, clock c
        WHERE u.ts = s.ts AND s.ts = p.ts
          AND p.ts > c.ts - {BILLING_WINDOW_MS}
        HAVING COUNT(DISTINCT u.uid) > 1000000
        """,
        description="Keeps one billing window of usage history alive.",
    )

    enforcer = connect(
        database=db,
        policies=[retention],
        clock=SimulatedClock(default_step_ms=250),
    )

    # -- the customer's billing-period activity ---------------------------
    enforcer.submit(
        "SELECT firm_id, revenue FROM premium_firmographics WHERE sector = 'tech'",
        uid=9,
    )
    enforcer.submit(
        "SELECT sector, AVG(revenue) FROM premium_firmographics GROUP BY sector",
        uid=9,
    )
    enforcer.submit(
        "SELECT l.lead_id, p.revenue FROM my_leads l, premium_firmographics p "
        "WHERE l.firm_id = p.firm_id",
        uid=9,
    )
    enforcer.submit("SELECT COUNT(*) FROM my_leads", uid=9)  # own data: free

    # -- the bill, computed from the usage log ----------------------------
    engine = enforcer.engine

    def scalar(sql: str) -> int:
        return engine.execute(sql).scalar() or 0

    # Premium tuples used by queries whose Schema log shows an aggregate.
    agg_tuples = scalar(
        """
        SELECT COUNT(DISTINCT p.ts || ':' || p.itid)
        FROM provenance p, schema s
        WHERE p.ts = s.ts AND p.irid = 'premium_firmographics'
          AND s.irid = 'premium_firmographics' AND s.agg = TRUE
        """
    )
    total_tuples = scalar(
        """
        SELECT COUNT(DISTINCT p.ts || ':' || p.itid)
        FROM provenance p
        WHERE p.irid = 'premium_firmographics'
        """
    )
    raw_tuples = total_tuples - agg_tuples

    join_queries = scalar(
        """
        SELECT COUNT(DISTINCT s1.ts) FROM schema s1, schema s2
        WHERE s1.ts = s2.ts
          AND s1.irid = 'premium_firmographics'
          AND s2.irid <> 'premium_firmographics'
        """
    )

    raw_cost = raw_tuples * PRICE_PER_TUPLE_RAW
    agg_cost = agg_tuples * PRICE_PER_TUPLE_AGG
    join_cost = join_queries * PRICE_PER_JOIN_QUERY

    print("Usage-based bill for subscriber 9")
    print("---------------------------------")
    print(f"raw premium tuples used:        {raw_tuples:>5}  @ "
          f"${PRICE_PER_TUPLE_RAW:.3f}  = ${raw_cost:7.2f}")
    print(f"aggregated premium tuples used: {agg_tuples:>5}  @ "
          f"${PRICE_PER_TUPLE_AGG:.3f}  = ${agg_cost:7.2f}")
    print(f"premium-overlay queries:        {join_queries:>5}  @ "
          f"${PRICE_PER_JOIN_QUERY:.2f}   = ${join_cost:7.2f}")
    print(f"{'':>38}total = ${raw_cost + agg_cost + join_cost:7.2f}")

    print(f"\nusage-log rows backing the bill: {enforcer.log_sizes()}")


if __name__ == "__main__":
    main()
