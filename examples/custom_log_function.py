"""Extensibility: a custom log-generating function (§6 of the paper).

The paper's extensibility story: "consider a policy that restricts queries
from 'mobile' devices to output sizes of 10 tuples. To enable such a
policy one has to write a new log-generating function that parses the
database connection string ... and populates a new table in the usage log
with device information; the policy itself is a simple SQL query over the
new usage log."

This example does exactly that: a ``devices(ts, device)`` log fed from the
query context's connection attributes, plus an ``output_size(ts, n)`` log,
and a policy joining the two.

Run:  python examples/custom_log_function.py
"""

from repro import LogFunction
from repro.api import Database, Policy, connect
from repro.log import STANDARD_LOG_FUNCTIONS, LogRegistry, QueryContext


def generate_device(ctx: QueryContext) -> list[tuple]:
    """Parse the 'connection string' the client handed us."""
    connection = ctx.attributes.get("connection", "")
    device = "mobile" if "user-agent=mobile" in connection else "desktop"
    return [(device,)]


def generate_output_size(ctx: QueryContext) -> list[tuple]:
    """Record how many tuples the query returns (reuses the cached
    lineage execution, so the query runs once)."""
    return [(len(ctx.lineage_result().rows),)]


DEVICES = LogFunction(
    name="devices", columns=("device",), generate=generate_device, cost_rank=0
)
OUTPUT_SIZE = LogFunction(
    name="output_size",
    columns=("n",),
    generate=generate_output_size,
    cost_rank=2,  # as expensive as provenance: it executes the query
)


def main() -> None:
    db = Database()
    db.load_table("products", ["pid", "price"], [(i, 10 + i) for i in range(40)])

    registry = LogRegistry([*STANDARD_LOG_FUNCTIONS, DEVICES, OUTPUT_SIZE])

    mobile_cap = Policy.from_sql(
        "mobile-output-cap",
        """
        SELECT DISTINCT 'Mobile clients may fetch at most 10 tuples per query'
        FROM devices d, output_size o
        WHERE d.ts = o.ts AND d.device = 'mobile' AND o.n > 10
        """,
    )

    enforcer = connect(
        database=db,
        policies=[mobile_cap],
        registry=registry,
    )

    runtime = enforcer.runtime_policies()[0]
    print(
        f"policy classified: time_independent={runtime.time_independent}, "
        f"monotone={runtime.monotone}"
    )

    def show(label, decision):
        verdict = "ALLOWED" if decision.allowed else "REJECTED"
        print(f"{label:<46} {verdict}")
        for violation in decision.violations:
            print(f"    {violation.message}")

    show(
        "desktop: wide scan (40 tuples)",
        enforcer.submit(
            "SELECT * FROM products",
            uid=1,
            attributes={"connection": "host=db;user-agent=desktop"},
        ),
    )
    show(
        "mobile: small lookup (1 tuple)",
        enforcer.submit(
            "SELECT * FROM products WHERE pid = 3",
            uid=1,
            attributes={"connection": "host=db;user-agent=mobile"},
        ),
    )
    show(
        "mobile: wide scan (40 tuples)",
        enforcer.submit(
            "SELECT * FROM products",
            uid=1,
            attributes={"connection": "host=db;user-agent=mobile"},
        ),
    )

    # The policy is time-independent (its two logs join on ts), so nothing
    # is ever persisted — the custom logs cost memory only while checking.
    print(f"log rows on disk: {enforcer.store.total_live_size()}")


if __name__ == "__main__":
    main()
