"""Data-marketplace scenario: API-style terms of use from Table 1.

Models a data vendor shipping three of the survey's term-of-use patterns:

- **Rate limiting** (Twitter/Foursquare, Table 1 P4): at most N requests
  per subscriber per window;
- **Free-tier volume cap** (MS Translator, Table 1 P3): all queries,
  totaled over a billing window, may return a bounded number of tuples;
- **No blending of ratings** (Yelp, Table 1 P7): the ratings table may be
  joined, but its values may not pass through aggregates.

Run:  python examples/data_marketplace.py
"""

from repro import SimulatedClock
from repro.api import Policy, connect
from repro.workloads import monthly_quota, no_aggregation


def rate_limit_per_user(uid: int, max_requests: int, window: int) -> Policy:
    """At most ``max_requests`` queries per ``window`` for one subscriber.

    These policies are structurally identical across subscribers, so the
    offline phase unifies them into a single policy joined with a
    constants table (§4.2.2) — adding subscribers does not add per-query
    work.
    """
    return Policy.from_sql(
        f"rate-limit-u{uid}",
        f"""
        SELECT DISTINCT 'Rate limit: subscriber {uid} exceeded
                         {max_requests} requests per window'
        FROM users u, clock c
        WHERE u.uid = {uid} AND u.ts > c.ts - {window}
        HAVING COUNT(DISTINCT u.ts) > {max_requests}
        """,
    )


def main() -> None:
    db = __import__("repro").Database()
    db.load_table(
        "listings",
        ["biz_id", "name", "category"],
        [(i, f"biz-{i}", "food" if i % 2 else "retail") for i in range(50)],
    )
    db.load_table(
        "ratings",
        ["biz_id", "stars", "review_count"],
        [(i, 1 + i % 5, 10 * i) for i in range(50)],
    )

    policies = [
        # One rate-limit policy per subscriber; unified automatically.
        *(rate_limit_per_user(uid, max_requests=3, window=1000) for uid in range(1, 6)),
        monthly_quota("listings", max_tuples=120, window=60_000),
        no_aggregation("ratings"),
    ]
    enforcer = connect(
        database=db,
        policies=policies,
        clock=SimulatedClock(default_step_ms=100),
    )

    unified = [r for r in enforcer.runtime_policies() if r.member_names]
    print(
        f"{len(policies)} policies installed; "
        f"{len(unified)} unified group(s) cover "
        f"{sum(len(r.member_names) for r in unified)} of them\n"
    )

    def show(label, decision):
        verdict = "ALLOWED" if decision.allowed else "REJECTED"
        print(f"{label:<54} {verdict}")
        for violation in decision.violations:
            print(f"    {violation.message}")

    # Subscriber 1 burns through the rate limit.
    for attempt in range(1, 5):
        show(
            f"subscriber 1, request {attempt}",
            enforcer.submit(
                "SELECT name FROM listings WHERE biz_id = 7", uid=1
            ),
        )

    # Subscriber 2 is unaffected by subscriber 1's limit.
    show(
        "subscriber 2, first request",
        enforcer.submit("SELECT name FROM listings WHERE biz_id = 9", uid=2),
    )

    # Ratings may be displayed next to listings (a join is fine)...
    show(
        "join ratings with listings for display",
        enforcer.submit(
            "SELECT l.name, r.stars FROM listings l, ratings r "
            "WHERE l.biz_id = r.biz_id AND l.biz_id < 5",
            uid=2,
        ),
    )

    # ...but blending them into averages is prohibited (Yelp's term).
    show(
        "average stars by category (blending)",
        enforcer.submit(
            "SELECT l.category, AVG(r.stars) FROM listings l, ratings r "
            "WHERE l.biz_id = r.biz_id GROUP BY l.category",
            uid=2,
        ),
    )

    # The free tier: repeated wide reads of listings exhaust the volume cap.
    show(
        "free tier: first full listings read (50 tuples)",
        enforcer.submit("SELECT * FROM listings", uid=3),
    )
    show(
        "free tier: second full read (cumulative 100)",
        enforcer.submit("SELECT * FROM listings", uid=3),
    )
    show(
        "free tier: third full read (would exceed 120)",
        enforcer.submit("SELECT * FROM listings", uid=3),
    )


if __name__ == "__main__":
    main()
