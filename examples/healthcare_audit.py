"""Healthcare scenario: MIMIC-style clinical data under disclosure limits.

Mirrors the paper's evaluation setting (§5): an ICU database whose
data-use agreement limits what analysts may do —

- P5b (Example 3.1): no query output may be traceable to fewer than
  k patients (limit information disclosure / re-identification);
- P2-style: student researchers may not join provider-order data with
  anything but the medication table;
- windowed quota: the external analyst (uid 3) may not touch more than
  half the patient roster within a short window (bulk-extraction
  tripwire).

Run:  python examples/healthcare_audit.py
"""

from repro import SimulatedClock
from repro.api import Policy, connect
from repro.workloads import MimicConfig, build_mimic_database


def build_policies(n_patients: int) -> list[Policy]:
    k_anon = Policy.from_sql(
        "k-anonymity",
        """
        SELECT DISTINCT 'Blocked: output identifies fewer than 4 patients'
        FROM provenance p
        WHERE p.irid = 'd_patients'
        GROUP BY p.ts, p.otid
        HAVING COUNT(DISTINCT p.itid) < 4
        """,
        description="Every output tuple must aggregate >= 4 patients.",
    )
    no_order_joins = Policy.from_sql(
        "student-order-joins",
        """
        SELECT DISTINCT 'Blocked: students may only join poe_order with poe_med'
        FROM users u, schema s1, schema s2, groups g
        WHERE u.ts = s1.ts AND s1.ts = s2.ts
          AND u.uid = g.uid AND g.gid = 'students'
          AND s1.irid = 'poe_order'
          AND s2.irid <> 'poe_order' AND s2.irid <> 'poe_med'
        """,
    )
    bulk_extraction = Policy.from_sql(
        "bulk-extraction",
        f"""
        SELECT DISTINCT 'Blocked: analyst touched over half the roster in 5s'
        FROM users u, provenance p, clock c
        WHERE u.ts = p.ts AND u.uid = 3
          AND p.irid = 'd_patients' AND p.ts > c.ts - 5000
        HAVING COUNT(DISTINCT p.itid) > {n_patients // 2}
        """,
        description="Rate-limits the external analyst's roster coverage.",
    )
    return [k_anon, no_order_joins, bulk_extraction]


def show(label: str, decision) -> None:
    verdict = "ALLOWED" if decision.allowed else "REJECTED"
    print(f"{label:<58} {verdict}")
    for violation in decision.violations:
        print(f"    {violation.message}")


def main() -> None:
    config = MimicConfig(n_patients=200)
    db = build_mimic_database(config)
    enforcer = connect(
        database=db,
        policies=build_policies(config.n_patients),
        clock=SimulatedClock(default_step_ms=50),
    )

    # A cohort study: every output row aggregates ~100 patients → allowed.
    show(
        "cohort statistics (sex ratio across the roster)",
        enforcer.submit(
            "SELECT p.sex, COUNT(p.subject_id) FROM d_patients p GROUP BY p.sex",
            uid=2,
        ),
    )

    # A point lookup of one patient is a disclosure risk: k-anonymity fires.
    show(
        "point lookup of one patient record",
        enforcer.submit("SELECT * FROM d_patients WHERE subject_id = 17", uid=2),
    )

    # Orders-by-medication, joined with patients for demographics. Each
    # medication group draws on ~40 patients, so k-anonymity is satisfied;
    # a faculty member (uid 7) may run it...
    demographics = (
        "SELECT o.medication, COUNT(DISTINCT p.subject_id) "
        "FROM poe_order o, d_patients p "
        "WHERE o.subject_id = p.subject_id "
        "GROUP BY o.medication"
    )
    show("faculty: medication demographics join", enforcer.submit(demographics, uid=7))

    # ...but user 2 is a student, and students may not join poe_order with
    # anything except poe_med — same query, different verdict.
    show("student: same medication demographics join",
         enforcer.submit(demographics, uid=2))

    # The student's allowed path: orders joined with the medication table.
    show(
        "student: order dosages (poe_order x poe_med)",
        enforcer.submit(
            "SELECT o.medication, COUNT(m.dose) FROM poe_order o, poe_med m "
            "WHERE o.poe_id = m.poe_id GROUP BY o.medication",
            uid=2,
        ),
    )

    # Bulk-extraction tripwire: the external analyst's first wide scan is
    # within budget, the follow-up scan inside the window is not.
    show(
        "analyst: aggregate over 45% of the roster",
        enforcer.submit(
            "SELECT p.sex, COUNT(p.subject_id) FROM d_patients p "
            f"WHERE p.subject_id <= {config.n_patients * 45 // 100} "
            "GROUP BY p.sex",
            uid=3,
        ),
    )
    show(
        "analyst: immediately scanning another 45%",
        enforcer.submit(
            "SELECT p.sex, COUNT(p.subject_id) FROM d_patients p "
            f"WHERE p.subject_id > {config.n_patients * 55 // 100} "
            "GROUP BY p.sex",
            uid=3,
        ),
    )

    # After the window passes, the analyst's budget resets.
    enforcer.clock.sleep(10_000)
    show(
        "analyst: same scan after the window expires",
        enforcer.submit(
            "SELECT p.sex, COUNT(p.subject_id) FROM d_patients p "
            f"WHERE p.subject_id > {config.n_patients * 55 // 100} "
            "GROUP BY p.sex",
            uid=3,
        ),
    )

    print(f"\nusage-log rows retained after compaction: {enforcer.log_sizes()}")


if __name__ == "__main__":
    main()
