"""The HTTP gateway: DataLawyer as middleware.

The paper positions DataLawyer as "a middleware layer on top of a
relational DBMS that allows users to run normal SQL queries, but before
letting a query execute, it checks all policies." This module exposes a
:class:`~repro.service.ShardedEnforcerService` over HTTP (stdlib only)
so non-Python clients can submit queries:

- ``POST /query``    ``{"sql": ..., "uid": ..., "explain": bool|"analyze"?}``
  → decision JSON (result rows when allowed, violations + optional
  evidence when rejected; ``explain: "analyze"`` adds a per-operator
  ``plan`` with observed rows and time); ``429`` + ``Retry-After`` under
  backpressure;
- ``GET  /policies`` → installed policies (with shard placement);
- ``POST /policies`` ``{"name": ..., "sql": ...}`` → register a policy
  on every shard (history starts now, per §4.1.2);
- ``DELETE /policies/<name>`` → remove a policy from every shard;
- ``GET  /log``      → usage-log sizes aggregated across shards;
- ``GET  /stats``    → per-shard queue depth, admit/reject counts,
  p50/p95 check latency, phase means;
- ``GET  /durability`` → WAL/checkpoint state per shard and what
  recovery replayed at startup (see :mod:`repro.storage.wal`);
- ``GET  /metrics``  → Prometheus 0.0.4 text exposition (see
  :mod:`repro.obs.export` for the metric families);
- ``GET  /slowlog``  → recent slow checks with their rendered traces
  (populated when ``ServiceConfig.slow_query_seconds`` is set);
- ``GET  /health``   → liveness (never blocks on any shard).

Requests for different users run in parallel (one enforcer shard per
uid-hash bucket); requests for the same user serialize on their shard.

Versioning (see ``docs/api_v1.md``): every endpoint is also served under
``/v1/...`` wrapped in the versioned envelope ::

    {"api_version": 1, "data": ...}                          # success
    {"api_version": 1, "error": {"code": ..., "message": ...}}

Error codes: ``invalid_request`` (400), ``not_found`` (404),
``conflict`` (409), ``overloaded`` (429), ``draining`` (503). A policy
denial (403) is a *decision*, not an error — it arrives under ``data``
with ``allowed: false`` and its violations. ``GET /v1/metrics`` is the
one exception to the envelope: it stays Prometheus text exposition.

The unversioned paths above remain as compatibility aliases serving the
original (pre-envelope) body shapes; every alias response carries a
``Deprecation: true`` header and a ``Link: </v1/...>;
rel="successor-version"`` pointer to its replacement.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Union

from .core import Enforcer, Policy
from .core.metrics import PHASE_QUERY
from .engine.explain import render_analyzed
from .errors import (
    PolicyError,
    PolicyPlacementError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from .obs import CONTENT_TYPE as METRICS_CONTENT_TYPE
from .service import ServiceConfig, ShardedEnforcerService

#: The current (and only) API version of the ``/v1`` surface.
API_VERSION = 1

#: HTTP status → stable machine-readable error code of the v1 envelope.
ERROR_CODES = {
    400: "invalid_request",
    404: "not_found",
    409: "conflict",
    429: "overloaded",
    503: "draining",
}


def versioned_envelope(status: int, body: dict) -> dict:
    """Wrap a legacy ``(status, body)`` pair in the v1 envelope.

    Bodies carrying a top-level ``error`` string are transport-level
    failures: they become ``{"error": {"code", "message", ...}}`` with
    any sibling keys (``shard``, ``retry_after``) preserved inside the
    error object. Everything else — including a 403 policy denial,
    which is a successful check with a negative verdict — is ``data``.
    """
    if isinstance(body.get("error"), str):
        error = {
            "code": ERROR_CODES.get(status, "error"),
            "message": body["error"],
        }
        error.update(
            (key, value) for key, value in body.items() if key != "error"
        )
        return {"api_version": API_VERSION, "error": error}
    return {"api_version": API_VERSION, "data": body}


class EnforcerService:
    """HTTP-facing request handling over the sharded service.

    Kept as a thin translation layer: it maps payloads to service calls
    and service outcomes to ``(status, body)`` pairs. Unlike the old
    single-lock facade, admin reads (``/health``, ``/policies``,
    ``/stats``) never wait behind query admission.
    """

    def __init__(
        self,
        service: ShardedEnforcerService,
        max_result_rows: Optional[int] = None,
    ):
        self.service = service
        self.max_result_rows = (
            service.config.max_result_rows
            if max_result_rows is None
            else max_result_rows
        )

    # -- request handlers -------------------------------------------------

    def submit(self, payload: dict) -> "tuple[int, dict]":
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            return 400, {"error": "missing 'sql'"}
        uid = payload.get("uid", 0)
        # bool is an int subclass in Python; a JSON true/false uid would
        # otherwise silently route as uid 1/0.
        if isinstance(uid, bool) or not isinstance(uid, int):
            return 400, {"error": "'uid' must be an integer"}
        explain_option = payload.get("explain", False)
        analyze = explain_option == "analyze"
        want_explain = bool(explain_option)

        try:
            decision = self.service.submit(sql, uid=uid)
        except ServiceOverloadedError as error:
            return 429, {
                "error": "shard admission queue is full",
                "shard": error.shard,
                "retry_after": round(error.retry_after, 3),
            }
        except ServiceClosedError:
            return 503, {"error": "service is draining"}
        except ReproError as error:
            return 400, {"error": str(error)}

        body: dict = {
            "allowed": decision.allowed,
            "timestamp": decision.timestamp,
            "shard": self.service.shard_for(uid),
        }
        if decision.allowed and decision.result is not None:
            rows = decision.result.rows[: self.max_result_rows]
            body["columns"] = decision.result.columns
            body["rows"] = [list(row) for row in rows]
            body["row_count"] = len(decision.result.rows)
            body["truncated"] = len(decision.result.rows) > len(rows)
            if analyze:
                body["plan"] = self._analyzed_plan(decision, sql, uid)
        if not decision.allowed:
            body["violations"] = [
                {"policy": v.policy_name, "message": v.message}
                for v in decision.violations
            ]
            if want_explain:
                body["evidence"] = self._explain(decision, uid)
        status = 200 if decision.allowed else 403
        return status, body

    def _analyzed_plan(self, decision, sql: str, uid: int) -> str:
        """Per-operator ``rows=… time=…`` text for an allowed query.

        When tracing is on, the decision's trace already holds one span
        per operator under the ``query`` phase — render those (the plan
        the check actually executed, for free). With tracing off — or in
        process mode, where spans never cross the pipe — re-run the
        query as a plain ``EXPLAIN ANALYZE`` on the routed shard
        (admin-grade, like evidence explanation).
        """
        span = getattr(decision, "span", None)
        if span is not None:
            for child in span.children:
                if child.name == PHASE_QUERY and child.children:
                    return render_analyzed(child)
        return self.service.analyzed_plan(uid, sql)

    def _explain(self, decision, uid: int) -> "list[dict]":
        """Re-run the violated policies with lineage on the same shard.

        Explanation reads the shard's current log state; the service
        runs it on the routed shard outside the admission path (thread
        mode takes the shard lock directly, process mode answers over
        the control channel — explain is an admin-grade operation, not a
        policy check, and must not consume an admission slot).
        """
        return self.service.explain_evidence(uid, decision)

    def list_policies(self) -> "tuple[int, dict]":
        return 200, {"policies": self.service.policies()}

    def add_policy(self, payload: dict) -> "tuple[int, dict]":
        name = payload.get("name")
        sql = payload.get("sql")
        if not isinstance(name, str) or not isinstance(sql, str):
            return 400, {"error": "need 'name' and 'sql'"}
        if self.service.has_policy(name):
            return 409, {"error": f"policy {name!r} already exists"}
        try:
            policy = Policy.from_sql(name, sql, payload.get("description", ""))
            epoch = self.service.add_policy(policy)
        except PolicyPlacementError as error:
            return 400, {"error": str(error)}
        except ReproError as error:
            return 400, {"error": str(error)}
        return 201, {"registered": name, "epoch": epoch}

    def remove_policy(self, name: str) -> "tuple[int, dict]":
        if not self.service.has_policy(name):
            return 404, {"error": f"no policy {name!r}"}
        try:
            epoch = self.service.remove_policy(name)
        except PolicyError as error:
            return 404, {"error": str(error)}
        return 200, {"removed": name, "epoch": epoch}

    def log_sizes(self) -> "tuple[int, dict]":
        return 200, {
            "log": self.service.log_sizes(),
            "per_shard": self.service.per_shard_log_sizes(),
        }

    def stats(self) -> "tuple[int, dict]":
        return 200, self.service.stats()

    def durability(self) -> "tuple[int, dict]":
        return 200, self.service.durability_status()

    def metrics(self) -> str:
        """The Prometheus text exposition body."""
        return self.service.render_metrics()

    def slowlog(self) -> "tuple[int, dict]":
        return 200, {"slow_queries": self.service.slow_queries()}


def make_handler(service: EnforcerService):
    """Build the request-handler class bound to one service."""

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # keep tests quiet

        def _send(
            self, status: int, body: dict, headers: Optional[dict] = None
        ) -> None:
            data = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _send_text(
            self,
            status: int,
            text: str,
            content_type: str,
            headers: Optional[dict] = None,
        ) -> None:
            data = text.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)

        def _route(self) -> "tuple[str, bool]":
            """The logical path and whether the request used ``/v1``."""
            path = self.path
            if path == "/v1" or path.startswith("/v1/"):
                return path[len("/v1"):] or "/", True
            return path, False

        def _deprecation_headers(self, logical_path: str) -> dict:
            return {
                "Deprecation": "true",
                "Link": f'</v1{logical_path}>; rel="successor-version"',
            }

        def _reply(
            self,
            status: int,
            body: dict,
            versioned: bool,
            logical_path: str,
            headers: Optional[dict] = None,
        ) -> None:
            """One response, shaped for the surface that was called:
            the v1 envelope, or the legacy body + Deprecation header."""
            if versioned:
                self._send(status, versioned_envelope(status, body), headers)
                return
            merged = self._deprecation_headers(logical_path)
            if headers:
                merged.update(headers)
            self._send(status, body, merged)

        def _read_json(self) -> Union[dict, str, None]:
            """The parsed body, or an error string for a 400 response."""
            raw_length = self.headers.get("Content-Length", "0") or "0"
            try:
                length = int(raw_length)
            except ValueError:
                return "invalid Content-Length header"
            if length < 0:
                return "invalid Content-Length header"
            raw = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(raw or b"{}")
            except json.JSONDecodeError:
                return None
            return payload if isinstance(payload, dict) else None

        def do_GET(self):  # noqa: N802 - stdlib casing
            path, versioned = self._route()
            if path == "/metrics":
                # Prometheus text either way; the envelope would break
                # scrapers, so /v1/metrics is documented as unwrapped.
                headers = (
                    None if versioned else self._deprecation_headers(path)
                )
                self._send_text(
                    200, service.metrics(), METRICS_CONTENT_TYPE, headers
                )
                return
            if path == "/health":
                outcome = (200, {"status": "ok"})
            elif path == "/policies":
                outcome = service.list_policies()
            elif path == "/log":
                outcome = service.log_sizes()
            elif path == "/stats":
                outcome = service.stats()
            elif path == "/durability":
                outcome = service.durability()
            elif path == "/slowlog":
                outcome = service.slowlog()
            else:
                self._not_found(versioned)
                return
            self._reply(*outcome, versioned=versioned, logical_path=path)

        def do_POST(self):  # noqa: N802
            path, versioned = self._route()
            payload = self._read_json()
            if isinstance(payload, str):
                self._reply(
                    400, {"error": payload}, versioned, logical_path=path
                )
                return
            if payload is None:
                self._reply(
                    400,
                    {"error": "invalid JSON body"},
                    versioned,
                    logical_path=path,
                )
                return
            if path == "/query":
                status, body = service.submit(payload)
                headers = None
                if status == 429:
                    # Ceil, not round: the integer header must never
                    # under-wait the precise JSON hint (a 2.5 s hint as
                    # "Retry-After: 2" sends well-behaved clients back
                    # into a still-full window).
                    headers = {
                        "Retry-After": str(
                            max(1, math.ceil(body.get("retry_after", 1)))
                        )
                    }
                self._reply(
                    status, body, versioned, logical_path=path, headers=headers
                )
            elif path == "/policies":
                status, body = service.add_policy(payload)
                self._reply(status, body, versioned, logical_path=path)
            else:
                self._not_found(versioned)

        def do_DELETE(self):  # noqa: N802
            path, versioned = self._route()
            prefix = "/policies/"
            if path.startswith(prefix):
                status, body = service.remove_policy(path[len(prefix):])
                self._reply(status, body, versioned, logical_path=path)
            else:
                self._not_found(versioned)

        def _not_found(self, versioned: bool) -> None:
            """Unknown path: no Deprecation header — there is nothing the
            caller should migrate to."""
            body: dict = {"error": "not found"}
            if versioned:
                body = versioned_envelope(404, body)
            self._send(404, body)

    return Handler


class EnforcementHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server that drains its service on close."""

    service: ShardedEnforcerService

    def server_close(self) -> None:
        self.service.drain()
        super().server_close()


def serve(
    enforcer: Enforcer,
    host: str = "127.0.0.1",
    port: int = 8080,
    config: Optional[ServiceConfig] = None,
) -> EnforcementHTTPServer:
    """Create (but do not start) an HTTP server for the enforcer.

    With the default config this behaves like the old single-enforcer
    facade (one shard adopting ``enforcer``); pass
    ``ServiceConfig(shards=4, ...)`` for a sharded deployment. Call
    ``serve_forever()`` on the result, or run it in a thread::

        server = serve(enforcer, port=0)          # 0 = ephemeral port
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown()
        server.server_close()                     # drains the shards
    """
    sharded = ShardedEnforcerService(enforcer, config)
    facade = EnforcerService(sharded)
    server = EnforcementHTTPServer((host, port), make_handler(facade))
    server.service = sharded
    return server
