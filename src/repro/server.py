"""A minimal HTTP facade: DataLawyer as middleware.

The paper positions DataLawyer as "a middleware layer on top of a
relational DBMS that allows users to run normal SQL queries, but before
letting a query execute, it checks all policies." This module exposes an
:class:`~repro.core.Enforcer` over HTTP (stdlib only) so non-Python
clients can submit queries:

- ``POST /query``    ``{"sql": ..., "uid": ..., "explain": bool?}`` →
  decision JSON (result rows when allowed, violations + optional evidence
  when rejected);
- ``GET  /policies`` → installed policies;
- ``POST /policies`` ``{"name": ..., "sql": ...}`` → register a policy
  (history starts now, per §4.1.2);
- ``DELETE /policies/<name>`` → remove a policy;
- ``GET  /log``      → usage-log sizes;
- ``GET  /health``   → liveness.

The enforcer is single-threaded; a lock serializes requests.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .core import Enforcer, Policy, explain_decision
from .errors import ReproError


class EnforcerService:
    """Thread-safe request handling around one enforcer."""

    def __init__(self, enforcer: Enforcer, max_result_rows: int = 1000):
        self.enforcer = enforcer
        self.max_result_rows = max_result_rows
        self._lock = threading.Lock()

    # -- request handlers -------------------------------------------------

    def submit(self, payload: dict) -> tuple[int, dict]:
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            return 400, {"error": "missing 'sql'"}
        uid = payload.get("uid", 0)
        if not isinstance(uid, int):
            return 400, {"error": "'uid' must be an integer"}
        want_explain = bool(payload.get("explain", False))

        with self._lock:
            try:
                decision = self.enforcer.submit(sql, uid=uid)
            except ReproError as error:
                return 400, {"error": str(error)}
            body: dict = {
                "allowed": decision.allowed,
                "timestamp": decision.timestamp,
            }
            if decision.allowed and decision.result is not None:
                rows = decision.result.rows[: self.max_result_rows]
                body["columns"] = decision.result.columns
                body["rows"] = [list(row) for row in rows]
                body["row_count"] = len(decision.result.rows)
                body["truncated"] = len(decision.result.rows) > len(rows)
            if not decision.allowed:
                body["violations"] = [
                    {"policy": v.policy_name, "message": v.message}
                    for v in decision.violations
                ]
                if want_explain:
                    body["evidence"] = [
                        {
                            "policy": e.policy_name,
                            "tuples": [
                                {
                                    "relation": t.relation,
                                    "values": t.values,
                                    "from_current_query": t.from_current_query,
                                }
                                for t in e.evidence
                            ],
                        }
                        for e in explain_decision(self.enforcer, decision)
                    ]
            status = 200 if decision.allowed else 403
            return status, body

    def list_policies(self) -> tuple[int, dict]:
        with self._lock:
            return 200, {
                "policies": [
                    {
                        "name": p.name,
                        "sql": p.sql,
                        "message": p.message,
                        "description": p.description,
                    }
                    for p in self.enforcer.policies
                ]
            }

    def add_policy(self, payload: dict) -> tuple[int, dict]:
        name = payload.get("name")
        sql = payload.get("sql")
        if not isinstance(name, str) or not isinstance(sql, str):
            return 400, {"error": "need 'name' and 'sql'"}
        with self._lock:
            if any(p.name == name for p in self.enforcer.policies):
                return 409, {"error": f"policy {name!r} already exists"}
            try:
                policy = Policy.from_sql(
                    name, sql, payload.get("description", "")
                )
                self.enforcer.add_policy(policy)
            except ReproError as error:
                return 400, {"error": str(error)}
            return 201, {"registered": name}

    def remove_policy(self, name: str) -> tuple[int, dict]:
        with self._lock:
            if not any(p.name == name for p in self.enforcer.policies):
                return 404, {"error": f"no policy {name!r}"}
            self.enforcer.remove_policy(name)
            return 200, {"removed": name}

    def log_sizes(self) -> tuple[int, dict]:
        with self._lock:
            return 200, {"log": self.enforcer.log_sizes()}


def make_handler(service: EnforcerService):
    """Build the request-handler class bound to one service."""

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # keep tests quiet

        def _send(self, status: int, body: dict) -> None:
            data = json.dumps(body).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def _read_json(self) -> Optional[dict]:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(raw or b"{}")
            except json.JSONDecodeError:
                return None
            return payload if isinstance(payload, dict) else None

        def do_GET(self):  # noqa: N802 - stdlib casing
            if self.path == "/health":
                self._send(200, {"status": "ok"})
            elif self.path == "/policies":
                self._send(*service.list_policies())
            elif self.path == "/log":
                self._send(*service.log_sizes())
            else:
                self._send(404, {"error": "not found"})

        def do_POST(self):  # noqa: N802
            payload = self._read_json()
            if payload is None:
                self._send(400, {"error": "invalid JSON body"})
                return
            if self.path == "/query":
                self._send(*service.submit(payload))
            elif self.path == "/policies":
                self._send(*service.add_policy(payload))
            else:
                self._send(404, {"error": "not found"})

        def do_DELETE(self):  # noqa: N802
            prefix = "/policies/"
            if self.path.startswith(prefix):
                self._send(*service.remove_policy(self.path[len(prefix):]))
            else:
                self._send(404, {"error": "not found"})

    return Handler


def serve(
    enforcer: Enforcer, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """Create (but do not start) an HTTP server for the enforcer.

    Call ``serve_forever()`` on the result, or run it in a thread::

        server = serve(enforcer, port=0)          # 0 = ephemeral port
        threading.Thread(target=server.serve_forever, daemon=True).start()
        ...
        server.shutdown()
    """
    service = EnforcerService(enforcer)
    return ThreadingHTTPServer((host, port), make_handler(service))
