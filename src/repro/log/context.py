"""Per-query context handed to log-generating functions.

A :class:`QueryContext` bundles everything a log-generating function
``f_i(q, D)`` may need: the parsed query, the issuing user, the database
and an engine over it. The provenance (lineage) execution of the query is
computed lazily and cached, because several consumers need it — the
``Provenance`` log function, and potentially custom log functions — and it
costs about as much as running the query itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine import Database, Engine, Result
from ..sql import ast, parse


@dataclass
class QueryContext:
    """Everything known about the query being checked."""

    query: ast.Query
    sql: str
    uid: int
    timestamp: int
    database: Database
    engine: Engine
    #: Extra attributes for custom log functions (device, connection, ...).
    attributes: dict = field(default_factory=dict)

    _lineage_result: Optional[Result] = field(default=None, repr=False)

    @classmethod
    def create(
        cls,
        sql: str,
        uid: int,
        timestamp: int,
        engine: Engine,
        attributes: Optional[dict] = None,
    ) -> "QueryContext":
        return cls(
            query=parse(sql),
            sql=sql,
            uid=uid,
            timestamp=timestamp,
            database=engine.database,
            engine=engine,
            attributes=attributes or {},
        )

    def lineage_result(self) -> Result:
        """The query's result with lineage, computed once and cached."""
        if self._lineage_result is None:
            self._lineage_result = self.engine.execute(self.query, lineage=True)
        return self._lineage_result
