"""The usage log (§3.2): clock, log-generating functions, and storage."""

from .clock import Clock, LogicalClock, SimulatedClock
from .context import QueryContext
from .functions import (
    PROVENANCE,
    SCHEMA,
    STANDARD_LOG_FUNCTIONS,
    USERS,
    LogFunction,
    LogRegistry,
    standard_registry,
)
from .schema_analysis import SchemaAnalyzer
from .store import CLOCK_TABLE, CompactionStats, LogStore

__all__ = [
    "Clock",
    "LogicalClock",
    "SimulatedClock",
    "QueryContext",
    "LogFunction",
    "LogRegistry",
    "standard_registry",
    "USERS",
    "SCHEMA",
    "PROVENANCE",
    "STANDARD_LOG_FUNCTIONS",
    "SchemaAnalyzer",
    "LogStore",
    "CompactionStats",
    "CLOCK_TABLE",
]
