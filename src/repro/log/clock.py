"""Clocks for the usage log.

The paper assumes "an integer clock with sufficient granularity that each
query has a unique ts attribute" (§3.1). Two implementations:

- :class:`LogicalClock` advances by a fixed step per query — deterministic,
  ideal for tests and property-based checks;
- :class:`SimulatedClock` lets the workload driver model wall-clock
  milliseconds (the experiments' windows are 200 ms – 3 s) by advancing an
  explicit amount per query, optionally with deterministic jitter.

The enforcer mirrors the current time into the one-row ``clock`` table so
policies can join against ``Clock c`` exactly as in Example 3.2.
"""

from __future__ import annotations

import copy


class Clock:
    """Base clock: monotone integer timestamps."""

    def now(self) -> int:
        raise NotImplementedError

    def advance(self) -> int:
        """Move to the next query's timestamp and return it."""
        raise NotImplementedError

    def clone(self) -> "Clock":
        """An independent clock starting from this clock's current state.

        The sharded service gives every shard its own clock so timestamps
        stay unique *within* a shard without cross-shard coordination.
        """
        return copy.deepcopy(self)

    def seek(self, now: int) -> None:
        """Jump to an absolute timestamp.

        Used by crash recovery (:mod:`repro.storage.wal`) to fast-forward
        a clock to the last durable timestamp before replay continues; the
        stepping behaviour is unchanged.
        """
        self._now = now


class LogicalClock(Clock):
    """Advances by ``step`` on every query."""

    def __init__(self, start: int = 0, step: int = 1):
        if step <= 0:
            raise ValueError("clock step must be positive")
        self._now = start
        self._step = step

    def now(self) -> int:
        return self._now

    def advance(self) -> int:
        self._now += self._step
        return self._now


class SimulatedClock(Clock):
    """Millisecond clock driven by the workload.

    ``advance()`` moves by ``default_step_ms``; the driver can also call
    :meth:`sleep` to model think time between queries. All units are
    integer milliseconds, so windowed policies use constants like
    ``300`` (300 ms) or ``1209600000`` (14 days).
    """

    def __init__(self, start_ms: int = 0, default_step_ms: int = 10):
        if default_step_ms <= 0:
            raise ValueError("default step must be positive")
        self._now = start_ms
        self._step = default_step_ms

    def now(self) -> int:
        return self._now

    def advance(self) -> int:
        self._now += self._step
        return self._now

    def sleep(self, duration_ms: int) -> None:
        """Model idle time between queries."""
        if duration_ms < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += duration_ms
