"""Static schema analysis for the ``Schema`` usage log (Example 3.3).

``f_Schema(q, D)`` inspects the query text only (never the data) and emits
one row per (output column, contributing input column) pair::

    (ocid, irid, icid, agg)

where ``ocid`` is the output column name, ``irid``/``icid`` identify the
base relation and column the value derives from, and ``agg`` says whether
an aggregate sits between them.

Deviation from the paper's example (documented in DESIGN.md): columns that
are referenced *outside* the select list — in WHERE, GROUP BY, HAVING or
ORDER BY — are also recorded, with ``ocid`` set to NULL. The paper's
join-prohibition policies (P1/P2) test which relations a query *touches*;
with select-list-only rows, a query could join a forbidden pair while
projecting columns of just one of them and evade the policy. The extra
rows make those policies airtight and are invisible to policies that
filter on ``ocid IS NOT NULL``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine import Database
from ..errors import BindError
from ..sql import ast
from ..engine.expressions import AGGREGATE_FUNCTIONS

#: One derivation: (irid, icid, used under an aggregate?)
Derivation = tuple[str, str, bool]


@dataclass
class _Binding:
    """A FROM binding: either a base table or an analyzed subquery."""

    name: str
    columns: list[str]
    #: For base tables: None. For subqueries: output column → derivations.
    derived: Optional[dict[str, set[Derivation]]]
    base_name: Optional[str]

    def derivations_for(self, column: str) -> set[Derivation]:
        if self.derived is not None:
            return set(self.derived.get(column, set()))
        assert self.base_name is not None
        return {(self.base_name, column, False)}


class SchemaAnalyzer:
    """Computes Schema-log rows for a query via static analysis."""

    def __init__(self, database: Database):
        self.database = database

    def analyze(self, query: ast.Query) -> list[tuple]:
        """Rows ``(ocid, irid, icid, agg)`` for the query, deduplicated."""
        rows: set[tuple] = set()
        self._collect(query, rows)
        return sorted(
            rows,
            key=lambda row: (
                row[0] is None,
                row[0] or "",
                row[1],
                row[2],
                row[3],
            ),
        )

    # -- internals ---------------------------------------------------------

    def _collect(self, query: ast.Query, rows: set[tuple]) -> None:
        self._output_map(query, rows)

    def _output_map(
        self, query: ast.Query, rows: Optional[set[tuple]]
    ) -> dict[str, set[Derivation]]:
        """Output column → derivations; optionally record log rows."""
        if isinstance(query, ast.SetOp):
            left = self._output_map(query.left, rows)
            right = self._output_map(query.right, rows)
            merged: dict[str, set[Derivation]] = {}
            right_values = list(right.values())
            for index, (name, left_set) in enumerate(left.items()):
                combined = set(left_set)
                if index < len(right_values):
                    combined |= right_values[index]
                merged[name] = combined
            return merged
        if isinstance(query, ast.Select):
            return self._analyze_select(query, rows)
        raise BindError(f"cannot analyze {type(query).__name__}")

    def _analyze_select(
        self, select: ast.Select, rows: Optional[set[tuple]]
    ) -> dict[str, set[Derivation]]:
        bindings = self._bind_from(select, rows)

        output: dict[str, set[Derivation]] = {}
        position = 0
        for item in select.items:
            if isinstance(item.expr, ast.Star):
                expanded = (
                    [self._binding(bindings, item.expr.table)]
                    if item.expr.table
                    else bindings
                )
                for binding in expanded:
                    for column in binding.columns:
                        output.setdefault(column, set()).update(
                            binding.derivations_for(column)
                        )
                        position += 1
                continue
            name = self._output_name(item, position)
            derivations = self._expr_derivations(item.expr, bindings)
            output.setdefault(name, set()).update(derivations)
            position += 1

        if rows is not None:
            for name, derivations in output.items():
                for irid, icid, agg in derivations:
                    rows.add((name, irid, icid, agg))
            # Non-output references: WHERE / GROUP BY / HAVING / ORDER BY.
            extra_exprs: list[ast.Expr] = []
            if select.where is not None:
                extra_exprs.append(select.where)
            extra_exprs.extend(select.group_by)
            if select.having is not None:
                extra_exprs.append(select.having)
            extra_exprs.extend(order.expr for order in select.order_by)
            extra_exprs.extend(select.distinct_on)
            for item in select.from_items:
                if isinstance(item, ast.JoinRef):
                    extra_exprs.extend(
                        node.condition
                        for node in item.walk()
                        if isinstance(node, ast.JoinRef)
                    )
            for expr in extra_exprs:
                for irid, icid, _ in self._expr_derivations(expr, bindings):
                    rows.add((None, irid, icid, False))
        return output

    def _bind_from(
        self, select: ast.Select, rows: Optional[set[tuple]]
    ) -> list[_Binding]:
        bindings: list[_Binding] = []
        flattened: list[ast.FromItem] = []
        for item in select.from_items:
            if isinstance(item, ast.JoinRef):
                flattened.extend(item.leaf_items())
            else:
                flattened.append(item)
        for item in flattened:
            if isinstance(item, ast.TableRef):
                table = self.database.table(item.name)
                bindings.append(
                    _Binding(
                        name=item.binding_name().lower(),
                        columns=list(table.schema.column_names),
                        derived=None,
                        base_name=table.name,
                    )
                )
            elif isinstance(item, ast.SubqueryRef):
                # Recurse: the subquery's own WHERE references are recorded
                # too (they are part of what the query touches).
                derived = self._output_map(item.query, rows)
                bindings.append(
                    _Binding(
                        name=item.binding_name().lower(),
                        columns=list(derived),
                        derived=derived,
                        base_name=None,
                    )
                )
            else:  # pragma: no cover
                raise BindError(f"unsupported FROM item {type(item).__name__}")
        return bindings

    @staticmethod
    def _binding(bindings: list[_Binding], name: str) -> _Binding:
        wanted = name.lower()
        for binding in bindings:
            if binding.name == wanted:
                return binding
        raise BindError(f"unknown table or alias {name!r}")

    def _expr_derivations(
        self, expr: ast.Expr, bindings: list[_Binding]
    ) -> set[Derivation]:
        """Derivations of every column referenced under ``expr``; refs that
        sit under an aggregate call carry ``agg=True``."""
        derivations: set[Derivation] = set()
        self._walk_expr(expr, bindings, under_agg=False, out=derivations)
        return derivations

    def _walk_expr(
        self,
        expr: ast.Expr,
        bindings: list[_Binding],
        under_agg: bool,
        out: set[Derivation],
    ) -> None:
        if isinstance(expr, ast.ColumnRef):
            binding = self._resolve_column(expr, bindings)
            for irid, icid, agg in binding.derivations_for(expr.name):
                out.add((irid, icid, agg or under_agg))
            return
        if isinstance(expr, ast.Star):
            expanded = (
                [self._binding(bindings, expr.table)] if expr.table else bindings
            )
            for binding in expanded:
                for column in binding.columns:
                    for irid, icid, agg in binding.derivations_for(column):
                        out.add((irid, icid, agg or under_agg))
            return
        is_agg = (
            isinstance(expr, ast.FuncCall) and expr.name in AGGREGATE_FUNCTIONS
        )
        for child in expr.children():
            if isinstance(child, ast.Expr):
                self._walk_expr(child, bindings, under_agg or is_agg, out)

    def _resolve_column(
        self, ref: ast.ColumnRef, bindings: list[_Binding]
    ) -> _Binding:
        if ref.table is not None:
            binding = self._binding(bindings, ref.table)
            if ref.name not in binding.columns:
                raise BindError(
                    f"table {binding.name!r} has no column {ref.name!r}"
                )
            return binding
        matches = [b for b in bindings if ref.name in b.columns]
        if not matches:
            raise BindError(f"unknown column {ref.name!r}")
        if len(matches) > 1:
            raise BindError(f"column {ref.name!r} is ambiguous")
        return matches[0]

    @staticmethod
    def _output_name(item: ast.SelectItem, position: int) -> str:
        if item.alias:
            return item.alias.lower()
        if isinstance(item.expr, ast.ColumnRef):
            return item.expr.name
        if isinstance(item.expr, ast.FuncCall):
            return item.expr.name
        return f"col{position + 1}"
