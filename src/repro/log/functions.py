"""Log-generating functions and their registry (§3.2).

A :class:`LogFunction` computes, for each checked query, the set of rows
``S_i = f_i(q, D)`` to append to its log relation ``R_i`` (the system
prepends the timestamp: ``R_i ∪ ({t} × S_i)``). The three standard
functions implement Example 3.3:

- ``Users(ts, uid)`` — who issued the query (cheap);
- ``Schema(ts, ocid, irid, icid, agg)`` — static analysis of the query
  text (cheap, data-independent);
- ``Provenance(ts, otid, irid, itid)`` — the contributing-tuples lineage
  of the query's output (expensive: re-runs the query with lineage).

The registry is ordered: the interleaved evaluator (Algorithm 3) adds logs
to ``S`` in registry order, which the paper chose experimentally as
Users → Schema → Provenance (cheapest first).

New domains plug in by registering additional functions (§6's
extensibility discussion) — see ``examples/custom_log_function.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import UnknownLogRelationError
from .context import QueryContext
from .schema_analysis import SchemaAnalyzer

#: Rows produced by a log function (without the timestamp column).
LogRows = list[tuple]


@dataclass(frozen=True)
class LogFunction:
    """One usage-log relation and its generating function."""

    name: str
    #: Columns after the leading ``ts`` column.
    columns: tuple[str, ...]
    generate: Callable[[QueryContext], LogRows]
    #: Relative generation cost; the registry orders by this (then name).
    cost_rank: int = 0

    @property
    def full_columns(self) -> list[str]:
        return ["ts", *self.columns]


def _generate_users(ctx: QueryContext) -> LogRows:
    return [(ctx.uid,)]


def _generate_schema(ctx: QueryContext) -> LogRows:
    analyzer = SchemaAnalyzer(ctx.database)
    return [tuple(row) for row in analyzer.analyze(ctx.query)]


def _generate_provenance(ctx: QueryContext) -> LogRows:
    result = ctx.lineage_result()
    rows: LogRows = []
    assert result.lineages is not None
    for otid, lineage in enumerate(result.lineages):
        for irid, itid in sorted(lineage):
            rows.append((otid, irid, itid))
    return rows


USERS = LogFunction(
    name="users", columns=("uid",), generate=_generate_users, cost_rank=0
)
SCHEMA = LogFunction(
    name="schema",
    columns=("ocid", "irid", "icid", "agg"),
    generate=_generate_schema,
    cost_rank=1,
)
PROVENANCE = LogFunction(
    name="provenance",
    columns=("otid", "irid", "itid"),
    generate=_generate_provenance,
    cost_rank=2,
)

STANDARD_LOG_FUNCTIONS = (USERS, SCHEMA, PROVENANCE)


class LogRegistry:
    """An ordered collection of log functions, keyed by relation name."""

    def __init__(self, functions: Iterable[LogFunction] = STANDARD_LOG_FUNCTIONS):
        self._functions: dict[str, LogFunction] = {}
        for function in functions:
            self.register(function)

    def register(self, function: LogFunction) -> None:
        key = function.name.lower()
        if key in self._functions:
            raise ValueError(f"log relation {function.name!r} already registered")
        self._functions[key] = function

    def names(self) -> list[str]:
        """Relation names in interleaving order (cheapest first)."""
        ordered = sorted(
            self._functions.values(), key=lambda f: (f.cost_rank, f.name)
        )
        return [function.name for function in ordered]

    def ordered(self) -> list[LogFunction]:
        return [self._functions[name] for name in self.names()]

    def get(self, name: str) -> LogFunction:
        try:
            return self._functions[name.lower()]
        except KeyError:
            raise UnknownLogRelationError(
                f"no log-generating function registered for {name!r}"
            ) from None

    def is_log_relation(self, name: str) -> bool:
        return name.lower() in self._functions

    def subset(self, names: Sequence[str]) -> "LogRegistry":
        """A registry containing only the named relations."""
        return LogRegistry([self.get(name) for name in names])


def standard_registry() -> LogRegistry:
    """The paper's three-relation usage log."""
    return LogRegistry(STANDARD_LOG_FUNCTIONS)
