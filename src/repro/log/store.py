"""The usage-log store: staged increments, a simulated disk, and the
three compaction phases of §5.2.

Lifecycle per checked query (matching the paper's NoOpt and DataLawyer):

1. :meth:`LogStore.stage` inserts the increment ``{t} × f_i(q, D)`` into
   the catalog's log table so policies evaluate over *disk ∪ increment*,
   while remembering which tids are only staged (in memory).
2. If any policy fires, :meth:`discard_staged` reverts the log (Eq. 1's
   ``L_t = L_{t-1}`` branch).
3. Otherwise :meth:`commit` runs the *delete* and *insert* phases against
   the simulated disk (the *mark* phase — evaluating the witness queries —
   belongs to the enforcement layer, which passes the marked tids in).

The "disk" is a per-relation list of rows that is genuinely rebuilt on
delete and appended on insert, so phase timings reflect real work with the
same asymptotics PostgreSQL exhibits in Figure 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..engine import Database, Table
from ..errors import PolicyError
from .functions import LogRegistry

CLOCK_TABLE = "clock"


@dataclass
class CompactionStats:
    """Wall-clock seconds and tuple counts for the commit phases."""

    delete_seconds: float = 0.0
    insert_seconds: float = 0.0
    tuples_deleted: int = 0
    tuples_inserted: int = 0
    tuples_discarded: int = 0  # staged tuples dropped without persisting


class LogStore:
    """Owns the log relations of one enforcement instance."""

    def __init__(self, database: Database, registry: LogRegistry):
        self.database = database
        self.registry = registry
        self._staged: dict[str, list[int]] = {}
        #: Staged tid → row values, captured at :meth:`stage` time so the
        #: commit/observer paths materialize increments in O(increment)
        #: instead of resolving tids through the table's full position map.
        self._staged_rows: dict[str, dict[int, tuple]] = {}
        self._disk: dict[str, list[tuple[int, tuple]]] = {}
        #: Per-relation monotone versions, bumped whenever a commit
        #: changes the relation's *disk* image (delete or insert). Staged
        #: increments and discards never bump — the decision cache uses
        #: these to tell whether a persisted log segment a policy read is
        #: unchanged since a verdict was computed.
        self._versions: dict[str, int] = {}
        #: Optional write-ahead log (see :mod:`repro.storage.wal`); when
        #: attached, every commit/discard appends one durable record.
        self._wal = None
        #: Optional commit observer (the enforcer, forwarding to the
        #: incremental maintainer). Duck-typed: ``log_observer_active()``,
        #: ``on_log_commit(ts, inserted)``, ``on_log_discard()``.
        self._observer = None

        for function in registry.ordered():
            if not database.has_table(function.name):
                database.create_table(function.name, function.full_columns)
            self._disk[function.name.lower()] = []
            self._versions[function.name.lower()] = 0
        if not database.has_table(CLOCK_TABLE):
            database.create_table(CLOCK_TABLE, ["ts"])

    # -- durability ----------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Make every commit/discard append one record to ``wal``.

        ``wal`` is a :class:`repro.storage.wal.WriteAheadLog` (duck-typed
        here to keep the log layer import-free of the storage layer).
        """
        self._wal = wal

    @property
    def wal(self):
        return self._wal

    def attach_observer(self, observer) -> None:
        """Notify ``observer`` of persisted inserts and discards.

        The committed rows passed to ``on_log_commit`` are exactly the
        rows the WAL's commit record carries, so an observer fed live and
        one fed from WAL replay see identical input.
        """
        self._observer = observer

    def _observer_active(self) -> bool:
        return self._observer is not None and self._observer.log_observer_active()

    def _next_tid_map(self) -> dict:
        """Per-relation tid counters, recorded so replay reproduces the
        exact tid sequence even for increments that never hit disk."""
        return {
            name: self.database.table(name).next_tid for name in self._disk
        }

    # -- clock ---------------------------------------------------------------

    def set_time(self, timestamp: int) -> None:
        """Refresh the one-row Clock relation."""
        clock = self.database.table(CLOCK_TABLE)
        clock.clear()
        clock.insert((timestamp,))

    def current_time(self) -> Optional[int]:
        clock = self.database.table(CLOCK_TABLE)
        if not len(clock):
            return None
        return clock.column_values(0)[0]

    # -- staging ---------------------------------------------------------------

    def stage(self, name: str, rows: Iterable[tuple], timestamp: int) -> int:
        """Append ``{timestamp} × rows`` as an in-memory increment."""
        key = name.lower()
        if key not in self._disk:
            raise PolicyError(f"{name!r} is not a registered log relation")
        table = self.database.table(key)
        values = [(timestamp, *row) for row in rows]
        tids = table.insert_many(values)
        self._staged.setdefault(key, []).extend(tids)
        self._staged_rows.setdefault(key, {}).update(zip(tids, values))
        return len(tids)

    def staged_relations(self) -> list[str]:
        return [name for name, tids in self._staged.items() if tids]

    def staged_tids(self, name: str) -> list[int]:
        return list(self._staged.get(name.lower(), []))

    def staged_row_values(self, name: str) -> list[tuple]:
        """Row values of the staged increment, in stage order."""
        key = name.lower()
        row_by_tid = self._staged_rows.get(key, {})
        return [row_by_tid[tid] for tid in self._staged.get(key, ())]

    def is_staged(self, name: str) -> bool:
        return bool(self._staged.get(name.lower()))

    def discard_staged(self, record: bool = True) -> int:
        """Revert every staged increment (policy violation path).

        With a WAL attached, a ``reject`` record is appended so recovery
        reproduces the clock advance and the tids the staged increment
        consumed. ``record=False`` suppresses it for side-channel staging
        (the explanation generator re-stages and reverts outside any
        query's lifecycle).
        """
        dropped = 0
        for name, tids in self._staged.items():
            if tids:
                dropped += self.database.table(name).delete_tids(set(tids))
        self._staged.clear()
        self._staged_rows.clear()
        if record and self._observer_active():
            self._observer.on_log_discard()
        if record and self._wal is not None:
            self._wal.append(
                {
                    "type": "reject",
                    "ts": self.current_time() or 0,
                    "next_tid": self._next_tid_map(),
                }
            )
        return dropped

    # -- commit: delete + insert phases -------------------------------------------

    def commit(
        self,
        marks: Optional[dict[str, set[int]]],
        persist_relations: Optional[Iterable[str]] = None,
    ) -> CompactionStats:
        """Finish the query: apply compaction marks and persist increments.

        ``marks`` maps relation name → tids to retain; ``None`` means "no
        compaction — retain everything" (the NoOpt behaviour).
        ``persist_relations`` limits which staged relations reach disk;
        staged tuples of other relations are discarded entirely (the
        time-independent optimization never stores their log).
        """
        stats = CompactionStats()
        persisted = (
            {name.lower() for name in persist_relations}
            if persist_relations is not None
            else set(self._disk)
        )
        wal_insert: dict[str, dict] = {}
        wal_delete: dict[str, list[int]] = {}
        observing = self._observer_active()
        committed_rows: dict[str, list[tuple]] = {}

        for name in list(self._disk):
            staged = set(self._staged.get(name, ()))
            table = self.database.table(name)

            if name not in persisted:
                if staged:
                    stats.tuples_discarded += table.delete_tids(staged)
                continue

            if marks is None:
                keep_disk = None  # retain all disk tuples
                keep_staged = staged
            else:
                marked = marks.get(name, set())
                keep_disk = marked
                keep_staged = staged & marked

            stats_delete_start = time.perf_counter()
            doomed: set[int] = set()
            if keep_disk is not None:
                for tid, _ in self._disk[name]:
                    if tid not in keep_disk:
                        doomed.add(tid)
            if self._wal is not None and doomed:
                # Only formerly-persisted tuples matter to replay; doomed
                # staged tuples never existed in the durable image.
                wal_delete[name] = sorted(doomed)
            disk_shrunk = bool(doomed)
            doomed |= staged - keep_staged
            if doomed:
                table.delete_tids(doomed)
                self._disk[name] = [
                    entry for entry in self._disk[name] if entry[0] not in doomed
                ]
            stats.tuples_deleted += len(doomed)
            stats.delete_seconds += time.perf_counter() - stats_delete_start

            insert_start = time.perf_counter()
            if keep_staged:
                # Real append work: materialize the persisted image from
                # the values captured at stage time — O(increment), never
                # touching the table's full tid→position map.
                row_by_tid = self._staged_rows.get(name, {})
                disk_list = self._disk[name]
                ordered = sorted(keep_staged)
                for tid in ordered:
                    disk_list.append((tid, row_by_tid[tid]))
                stats.tuples_inserted += len(keep_staged)
                if self._wal is not None or observing:
                    persisted_rows = [row_by_tid[tid] for tid in ordered]
                    if observing:
                        committed_rows[name] = persisted_rows
                    if self._wal is not None:
                        wal_insert[name] = {
                            "tids": ordered,
                            "rows": [list(row) for row in persisted_rows],
                        }
            stats.insert_seconds += time.perf_counter() - insert_start
            if disk_shrunk or keep_staged:
                self._versions[name] += 1

        self._staged.clear()
        self._staged_rows.clear()
        if self._wal is not None:
            self._wal.append(
                {
                    "type": "commit",
                    "ts": self.current_time() or 0,
                    "compacted": marks is not None,
                    "insert": wal_insert,
                    "delete": wal_delete,
                    "next_tid": self._next_tid_map(),
                }
            )
        if observing and committed_rows:
            self._observer.on_log_commit(
                self.current_time() or 0, committed_rows
            )
        return stats

    # -- introspection ------------------------------------------------------------

    def version(self, name: str) -> int:
        """The relation's disk version (monotone; bumped on commit)."""
        return self._versions.get(name.lower(), 0)

    def versions(self) -> "dict[str, int]":
        return dict(self._versions)

    def disk_size(self, name: str) -> int:
        """Number of persisted tuples for one relation."""
        return len(self._disk[name.lower()])

    def live_size(self, name: str) -> int:
        """Number of visible tuples (disk + staged) for one relation."""
        return len(self.database.table(name))

    def total_live_size(self) -> int:
        return sum(self.live_size(name) for name in self._disk)

    def table(self, name: str) -> Table:
        return self.database.table(name)
