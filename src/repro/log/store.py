"""The usage-log store: staged increments, a simulated disk, and the
three compaction phases of §5.2.

Lifecycle per checked query (matching the paper's NoOpt and DataLawyer):

1. :meth:`LogStore.stage` inserts the increment ``{t} × f_i(q, D)`` into
   the catalog's log table so policies evaluate over *disk ∪ increment*,
   while remembering which tids are only staged (in memory).
2. If any policy fires, :meth:`discard_staged` reverts the log (Eq. 1's
   ``L_t = L_{t-1}`` branch).
3. Otherwise :meth:`commit` runs the *delete* and *insert* phases against
   the simulated disk (the *mark* phase — evaluating the witness queries —
   belongs to the enforcement layer, which passes the marked tids in).

The "disk" is a per-relation list of rows that is genuinely rebuilt on
delete and appended on insert, so phase timings reflect real work with the
same asymptotics PostgreSQL exhibits in Figure 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..engine import Database, Table
from ..errors import PolicyError
from .functions import LogRegistry

CLOCK_TABLE = "clock"


@dataclass
class CompactionStats:
    """Wall-clock seconds and tuple counts for the commit phases."""

    delete_seconds: float = 0.0
    insert_seconds: float = 0.0
    tuples_deleted: int = 0
    tuples_inserted: int = 0
    tuples_discarded: int = 0  # staged tuples dropped without persisting


class LogStore:
    """Owns the log relations of one enforcement instance."""

    def __init__(self, database: Database, registry: LogRegistry):
        self.database = database
        self.registry = registry
        self._staged: dict[str, list[int]] = {}
        self._disk: dict[str, list[tuple[int, tuple]]] = {}

        for function in registry.ordered():
            if not database.has_table(function.name):
                database.create_table(function.name, function.full_columns)
            self._disk[function.name.lower()] = []
        if not database.has_table(CLOCK_TABLE):
            database.create_table(CLOCK_TABLE, ["ts"])

    # -- clock ---------------------------------------------------------------

    def set_time(self, timestamp: int) -> None:
        """Refresh the one-row Clock relation."""
        clock = self.database.table(CLOCK_TABLE)
        clock.clear()
        clock.insert((timestamp,))

    def current_time(self) -> Optional[int]:
        clock = self.database.table(CLOCK_TABLE)
        rows = clock.rows()
        return rows[0][0] if rows else None

    # -- staging ---------------------------------------------------------------

    def stage(self, name: str, rows: Iterable[tuple], timestamp: int) -> int:
        """Append ``{timestamp} × rows`` as an in-memory increment."""
        key = name.lower()
        if key not in self._disk:
            raise PolicyError(f"{name!r} is not a registered log relation")
        table = self.database.table(key)
        tids = table.insert_many((timestamp, *row) for row in rows)
        self._staged.setdefault(key, []).extend(tids)
        return len(tids)

    def staged_relations(self) -> list[str]:
        return [name for name, tids in self._staged.items() if tids]

    def staged_tids(self, name: str) -> list[int]:
        return list(self._staged.get(name.lower(), []))

    def is_staged(self, name: str) -> bool:
        return bool(self._staged.get(name.lower()))

    def discard_staged(self) -> int:
        """Revert every staged increment (policy violation path)."""
        dropped = 0
        for name, tids in self._staged.items():
            if tids:
                dropped += self.database.table(name).delete_tids(set(tids))
        self._staged.clear()
        return dropped

    # -- commit: delete + insert phases -------------------------------------------

    def commit(
        self,
        marks: Optional[dict[str, set[int]]],
        persist_relations: Optional[Iterable[str]] = None,
    ) -> CompactionStats:
        """Finish the query: apply compaction marks and persist increments.

        ``marks`` maps relation name → tids to retain; ``None`` means "no
        compaction — retain everything" (the NoOpt behaviour).
        ``persist_relations`` limits which staged relations reach disk;
        staged tuples of other relations are discarded entirely (the
        time-independent optimization never stores their log).
        """
        stats = CompactionStats()
        persisted = (
            {name.lower() for name in persist_relations}
            if persist_relations is not None
            else set(self._disk)
        )

        for name in list(self._disk):
            staged = set(self._staged.get(name, ()))
            table = self.database.table(name)

            if name not in persisted:
                if staged:
                    stats.tuples_discarded += table.delete_tids(staged)
                continue

            if marks is None:
                keep_disk = None  # retain all disk tuples
                keep_staged = staged
            else:
                marked = marks.get(name, set())
                keep_disk = marked
                keep_staged = staged & marked

            stats_delete_start = time.perf_counter()
            doomed: set[int] = set()
            if keep_disk is not None:
                for tid, _ in self._disk[name]:
                    if tid not in keep_disk:
                        doomed.add(tid)
            doomed |= staged - keep_staged
            if doomed:
                table.delete_tids(doomed)
                self._disk[name] = [
                    entry for entry in self._disk[name] if entry[0] not in doomed
                ]
            stats.tuples_deleted += len(doomed)
            stats.delete_seconds += time.perf_counter() - stats_delete_start

            insert_start = time.perf_counter()
            if keep_staged:
                # Real append work: materialize the persisted image.
                by_tid = dict(zip(table.tids(), table.rows()))
                disk_list = self._disk[name]
                for tid in sorted(keep_staged):
                    disk_list.append((tid, by_tid[tid]))
                stats.tuples_inserted += len(keep_staged)
            stats.insert_seconds += time.perf_counter() - insert_start

        self._staged.clear()
        return stats

    # -- introspection ------------------------------------------------------------

    def disk_size(self, name: str) -> int:
        """Number of persisted tuples for one relation."""
        return len(self._disk[name.lower()])

    def live_size(self, name: str) -> int:
        """Number of visible tuples (disk + staged) for one relation."""
        return len(self.database.table(name))

    def total_live_size(self) -> int:
        return sum(self.live_size(name) for name in self._disk)

    def table(self, name: str) -> Table:
        return self.database.table(name)
