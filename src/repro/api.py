"""The stable, supported Python surface of the package.

Deep module paths (``repro.core.enforcer``, ``repro.service.shard``,
``repro.analysis``) are internal: they exist to mirror the paper's
architecture and may be reorganized between releases. Code embedding the
enforcer should import from here — this module's names track the
versioned HTTP surface (``/v1``) and will only change with a version
bump.

Two construction styles::

    from repro.api import connect, Policy

    enforcer = connect(database=db, policies=[p1, p2])
    decision = enforcer.submit("SELECT * FROM navteq", uid=1)

or, when the setup grows conditionals::

    from repro.api import EnforcerBuilder

    enforcer = (
        EnforcerBuilder(db)
        .policy("no-joins", "SELECT DISTINCT 'no joins' FROM schema ...")
        .clock(SimulatedClock(default_step_ms=50))
        .options(decision_cache=True)
        .build()
    )

Both accept a ``profile`` — ``"datalawyer"`` (every §4 optimization on,
the default) or ``"noopt"`` (the paper's baseline) — plus any
:class:`EnforcerOptions` field as a keyword override.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .core import (
    Decision,
    Enforcer,
    EnforcerOptions,
    Policy,
    Violation,
    explain_decision,
)
from .engine import Database, Result
from .log import Clock, LogFunction, LogRegistry

__all__ = [
    "connect",
    "EnforcerBuilder",
    "Policy",
    "Decision",
    "Violation",
    "Database",
    "Enforcer",
    "EnforcerOptions",
    "Result",
    "Clock",
    "LogFunction",
    "LogRegistry",
    "explain_decision",
]

#: The supported configuration profiles, by name.
_PROFILES = {
    "datalawyer": EnforcerOptions.datalawyer,
    "noopt": EnforcerOptions.noopt,
}


def _resolve_options(profile: str, overrides: dict) -> EnforcerOptions:
    try:
        factory = _PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown profile {profile!r}; expected one of "
            f"{sorted(_PROFILES)}"
        ) from None
    return factory(**overrides)


def connect(
    *,
    database: Database,
    policies: Sequence[Policy] = (),
    registry: Optional[LogRegistry] = None,
    clock: Optional[Clock] = None,
    profile: str = "datalawyer",
    **options,
) -> Enforcer:
    """Build an :class:`Enforcer` over ``database`` in one call.

    All arguments are keyword-only. ``registry`` and ``clock`` default
    to the standard log functions and a logical clock; extra keywords
    are :class:`EnforcerOptions` fields layered over the chosen
    ``profile``::

        enforcer = connect(
            database=db,
            policies=[quota],
            profile="datalawyer",
            decision_cache=True,
            engine="columnar",
        )

    ``engine`` picks the execution discipline (``"row"``,
    ``"vectorized"``, or ``"columnar"`` — the default); the legacy
    ``vectorized=`` boolean still works but raises
    :class:`DeprecationWarning`.
    """
    return Enforcer(
        database,
        list(policies),
        registry=registry,
        clock=clock,
        options=_resolve_options(profile, options),
    )


class EnforcerBuilder:
    """Incremental construction of an :class:`Enforcer`.

    Every method returns the builder, so configuration chains; nothing
    is validated until :meth:`build` (which delegates to the same
    machinery as :func:`connect`). The builder is single-use in spirit
    but has no hidden state — calling :meth:`build` twice yields two
    independent enforcers over the *same* database object.
    """

    def __init__(self, database: Database):
        self._database = database
        self._policies: list = []
        self._registry: Optional[LogRegistry] = None
        self._clock: Optional[Clock] = None
        self._profile = "datalawyer"
        self._options: dict = {}

    def policies(self, *policies: Policy) -> "EnforcerBuilder":
        """Append already-constructed :class:`Policy` objects."""
        self._policies.extend(policies)
        return self

    def policy(
        self, name: str, sql: str, description: str = ""
    ) -> "EnforcerBuilder":
        """Append one policy from its SQL text."""
        self._policies.append(Policy.from_sql(name, sql, description))
        return self

    def registry(self, registry: LogRegistry) -> "EnforcerBuilder":
        """Use custom log functions instead of the standard registry."""
        self._registry = registry
        return self

    def clock(self, clock: Clock) -> "EnforcerBuilder":
        """Use this clock (e.g. ``SimulatedClock`` for reproducibility)."""
        self._clock = clock
        return self

    def profile(self, name: str) -> "EnforcerBuilder":
        """Start from ``"datalawyer"`` (default) or ``"noopt"``."""
        self._profile = name
        return self

    def options(self, **overrides) -> "EnforcerBuilder":
        """Layer :class:`EnforcerOptions` fields over the profile.

        ``options(engine="columnar")`` selects the execution engine;
        see :data:`repro.engine.ENGINES` for the accepted names.
        """
        self._options.update(overrides)
        return self

    def build(self) -> Enforcer:
        return Enforcer(
            self._database,
            list(self._policies),
            registry=self._registry,
            clock=self._clock,
            options=_resolve_options(self._profile, self._options),
        )
