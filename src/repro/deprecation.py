"""Deprecation warnings that blame caller code.

A fixed ``stacklevel`` breaks as soon as a deprecated knob can be
reached through more than one internal path — ``EnforcerOptions(...)``
directly vs ``EnforcerOptions.datalawyer(...)``, ``Engine(...)`` vs the
CLI front-end: the warning then lands on one of repro's own frames and
the user cannot tell which of *their* lines to fix.
:func:`warn_deprecated` instead walks the stack past every frame that
belongs to this package and attributes the warning to the first
external frame.
"""

from __future__ import annotations

import sys
import warnings

_PACKAGE = __name__.split(".")[0]


def _is_internal(frame) -> bool:
    name = frame.f_globals.get("__name__", "")
    return name == _PACKAGE or name.startswith(_PACKAGE + ".")


def warn_deprecated(message: str) -> None:
    """Emit a :class:`DeprecationWarning` pointing at external code.

    The blamed frame is the nearest caller outside the ``repro``
    package (dataclass-generated ``__init__`` methods inherit their
    class's module globals, so they count as internal). If the whole
    stack is internal — the CLI entry point — the outermost frame is
    blamed.
    """
    level = 2
    frame = sys._getframe(1)
    while frame is not None and _is_internal(frame):
        frame = frame.f_back
        level += 1
    if frame is None:
        level -= 1
    warnings.warn(message, DeprecationWarning, stacklevel=level)
