"""Approximate policies (§6, future work in the paper).

"An interesting area of future work is to use approximate policies to
improve performance: The system first runs a simpler test that quickly
validates most queries, but occasionally flags a valid query as
suspicious and spends extra time to do the precise check."

An :class:`ApproximatePolicy` pairs a precise policy with a cheap *screen*
query. Semantics: if the screen returns no rows, the policy is declared
satisfied without evaluating the precise query; if the screen fires, the
precise policy decides. This is sound exactly when the screen is a
*necessary condition* (π ⇒ screen): screens may over-fire (false alarms
cost only time) but must never under-fire.

Two ways to get a sound screen:

- :func:`derive_screen` builds one automatically from the §4.2.1 partial-
  policy machinery — the partial over the policy's cheapest log relation,
  which is implied by construction;
- hand-written screens can be checked empirically with
  ``validate=True``, which evaluates both and raises
  :class:`UnsoundScreenError` on the first query where the screen misses
  a genuine violation (use in staging, drop in production).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..engine import Engine
from ..errors import PolicyError
from ..log import LogRegistry
from ..sql import ast, parse, print_query
from ..analysis import partial_chain
from .policy import Policy


class UnsoundScreenError(PolicyError):
    """The screen declared a query compliant while the policy fired."""


@dataclass
class ApproximatePolicy:
    """A policy with a fast necessary-condition screen."""

    policy: Policy
    screen: ast.Select
    #: When True, every screen pass is double-checked against the precise
    #: policy (staging mode); screen misses raise UnsoundScreenError.
    validate: bool = False

    #: Counters for reporting the approximation's effectiveness.
    screened_out: int = 0
    escalations: int = 0

    @property
    def name(self) -> str:
        return self.policy.name

    @property
    def screen_sql(self) -> str:
        return print_query(self.screen)

    def check(self, engine: Engine) -> bool:
        """True when the policy is violated (same contract as π ≠ ∅)."""
        screen_fired = not engine.is_empty(self.screen)
        if not screen_fired:
            if self.validate and not engine.is_empty(self.policy.select):
                raise UnsoundScreenError(
                    f"screen for policy {self.policy.name!r} missed a "
                    "violation — it is not a necessary condition"
                )
            self.screened_out += 1
            return False
        self.escalations += 1
        return not engine.is_empty(self.policy.select)

    def stats(self) -> dict:
        total = self.screened_out + self.escalations
        return {
            "checks": total,
            "screened_out": self.screened_out,
            "escalations": self.escalations,
            "screen_rate": (self.screened_out / total) if total else 0.0,
        }


def from_screen_sql(
    policy: Policy,
    screen_sql: str,
    validate: bool = False,
    verify: bool = False,
) -> ApproximatePolicy:
    """Wrap a policy with a hand-written screen.

    ``verify=True`` statically proves the screen sound via conjunctive-
    query containment (Chandra-Merlin homomorphism; see
    :mod:`repro.analysis.containment`) and raises :class:`PolicyError`
    when no proof is found. Conservative: a correct-but-unprovable screen
    is rejected too — fall back to ``validate=True`` runtime checking.
    """
    screen = parse(screen_sql)
    if not isinstance(screen, ast.Select):
        raise PolicyError("a screen must be a single SELECT")
    if verify:
        from ..analysis.containment import screen_is_sound

        if not screen_is_sound(policy.select, screen):
            raise PolicyError(
                f"cannot prove the screen for {policy.name!r} is a "
                "necessary condition (no homomorphism found)"
            )
    return ApproximatePolicy(policy=policy, screen=screen, validate=validate)


def derive_screen(
    policy: Policy,
    registry: LogRegistry,
    database=None,
    keep_relations: Optional[set] = None,
) -> ApproximatePolicy:
    """Derive a provably sound screen from the partial-policy chain.

    By Lemma 4.4, π ⇒ π_S for the partials the chain builds, so the
    partial over ``keep_relations`` (default: the cheapest log relation,
    usually Users) is a valid necessary condition. Raises
    :class:`PolicyError` when no useful partial exists (e.g. the policy
    only references one relation and the partial equals the policy).
    """
    from ..analysis.monotonicity import is_monotone

    chain = partial_chain(
        policy.select,
        registry,
        database,
        keep_having=is_monotone(policy.select),
    )
    from ..analysis import referenced_log_relations

    if keep_relations is not None:
        wanted = frozenset(keep_relations)
        candidates = [s for stage, s in chain if stage == wanted]
        screen = candidates[0] if candidates else None
    else:
        # Prefer the first partial that actually consults a log relation:
        # the S = ∅ partial (database tables only) is rarely selective.
        screen = None
        fallback = None
        for stage, partial in chain:
            if partial is None or partial == policy.select:
                continue
            if referenced_log_relations(partial, registry):
                screen = partial
                break
            fallback = fallback or partial
        screen = screen or fallback
    if screen is None or screen == policy.select:
        raise PolicyError(
            f"no useful screen derivable for policy {policy.name!r}"
        )
    return ApproximatePolicy(policy=policy, screen=screen)
