"""Cross-query decision caching (the Blockaid idea over a usage log).

Most production traffic repeats: the same user issues the same query text
again and again, and every check re-derives a verdict the enforcer just
computed. This module caches whole-check verdicts keyed by

    (uid, canonical query text, attributes)

and answers the question the paper's §4.1.1 time-independence analysis
makes answerable: *when does a cached verdict survive?*

Per-policy cacheability (:func:`profile_policy`) classifies every runtime
policy offline:

- ``stable`` — the time-independent rewrite is applied, so evaluation is
  pinned to the current increment (the ``R.ts = c.ts`` conjuncts exclude
  all persisted log rows). The verdict depends only on the submitted
  query, the uid, and the immutable base tables: it survives log appends
  unconditionally.
- ``versioned`` — time-dependent, but every timestamp use is *shift
  safe* (see below). The verdict is reusable exactly while the log tables
  the policy reads (``referenced_log_relations`` over its effective
  query) are unchanged; each :class:`~repro.log.store.LogStore` relation
  carries a monotone version bumped on disk-changing commits.
- ``uncacheable`` — anything else. One uncacheable policy makes the whole
  check uncacheable (the cache is all-or-nothing per check; see below).

Shift safety: between a miss at clock ``T0`` and a hit attempt at
``T1 > T0``, the increment rows are identical except that their ``ts``
column reads ``T1`` instead of ``T0``, and every persisted log row keeps
a timestamp strictly below both (the clock advances before each check).
A timestamp use is safe when this shift provably cannot change its truth
value:

- ``a.ts <op> b.ts`` with both sides bare log/clock timestamps — both
  increments shift together, and increment-vs-disk comparisons are
  settled by ``disk ts < T0 < T1``;
- ``ts <op> <numeric literal>`` — settled once the clock passes the
  literal, so the entry is only *storable* when ``T0 > literal`` (this
  covers the ``R.ts > now`` conjuncts :meth:`Enforcer.add_policy`
  installs);
- ``ts`` as a bare GROUP BY key or bare select item — the grouping
  structure is isomorphic under the shift.

Any other ``ts`` reference (arithmetic, aggregates, comparisons with
non-literals), any ``ts``-named column from a non-log table, or — for
``versioned`` policies — any Clock reference is conservatively
uncacheable.

The cache works at whole-check granularity, not per policy, because the
*side effects* of a check are a whole-check property: under interleaved
evaluation the set and order of staged log increments depends on how
pruning unfolds across all policies, and a lazily skipped increment never
reaches disk. A hit must therefore replay the exact ordered increment
list the miss staged (the entry records it) before committing, so the
persisted log — and every later decision — is bit-identical with and
without the cache.

Assumed contract (the paper's model): log-generating functions are
deterministic in ``(query, uid, attributes, base tables)`` and do not
read the usage log or Clock themselves; checks whose *submitted query*
touches a log relation or the Clock are never cached (their increments
depend on log state).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..errors import ReproError
from ..log import LogRegistry
from ..log.store import CLOCK_TABLE
from ..sql import ast, canonical_sql
from .policy import Violation

#: Comparison operators whose truth the shift-safety rules reason about.
_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")


@dataclass(frozen=True)
class CachePolicyProfile:
    """One policy's offline cacheability classification."""

    kind: str  # "stable" | "versioned" | "uncacheable"
    #: Why an uncacheable policy is uncacheable (diagnostics).
    reason: str = ""
    #: Log relations whose versions a ``versioned`` verdict depends on.
    relations: frozenset = frozenset()
    #: Verdicts are only storable once the clock exceeds this bound
    #: (largest literal any ``ts`` is compared against); None = always.
    min_ts_bound: Optional[float] = None


@dataclass(frozen=True)
class CheckCachePlan:
    """The whole-check storability rule: the merge of all profiles."""

    relations: frozenset
    min_ts_bound: Optional[float]

    def storable_at(self, timestamp: int) -> bool:
        return self.min_ts_bound is None or timestamp > self.min_ts_bound


def merge_profiles(
    profiles: Iterable[CachePolicyProfile],
) -> Optional[CheckCachePlan]:
    """Combine per-policy profiles; None when any policy is uncacheable."""
    relations: set = set()
    bound: Optional[float] = None
    for profile in profiles:
        if profile is None or profile.kind == "uncacheable":
            return None
        relations |= profile.relations
        if profile.min_ts_bound is not None:
            bound = (
                profile.min_ts_bound
                if bound is None
                else max(bound, profile.min_ts_bound)
            )
    return CheckCachePlan(relations=frozenset(relations), min_ts_bound=bound)


# ---------------------------------------------------------------------------
# Offline profiling
# ---------------------------------------------------------------------------


class _TsScan:
    """Walk a query and check every ``ts`` reference against the safe
    patterns, accumulating literal bounds for the settled rule."""

    def __init__(self) -> None:
        self.failure: Optional[str] = None
        self.bound: Optional[float] = None

    def scan(self, node: ast.Node) -> None:
        if self.failure is not None:
            return
        if isinstance(node, ast.BinaryOp) and node.op in _COMPARISONS:
            left_ts = _is_bare_ts(node.left)
            right_ts = _is_bare_ts(node.right)
            if left_ts and right_ts:
                return  # both increments shift together / settled vs disk
            if left_ts and self._note_literal(node.right):
                return
            if right_ts and self._note_literal(node.left):
                return
            # Fall through: a bare ts inside gets flagged generically.
        if isinstance(node, ast.ColumnRef):
            if node.name == "ts":
                self.failure = f"unsafe timestamp use: {node}"
            return
        if isinstance(node, ast.Select):
            self._scan_select(node)
            return
        for child in node.children():
            self.scan(child)

    def _scan_select(self, select: ast.Select) -> None:
        for item in select.items:
            if item.alias and item.alias.lower() == "ts" and not _is_bare_ts(
                item.expr
            ):
                # An output column *named* ts whose values are not log
                # timestamps would defeat the bare ts-ts rule upstream.
                self.failure = "non-timestamp select item aliased 'ts'"
                return
            if not _is_bare_ts(item.expr):
                self.scan(item.expr)
        for item in select.from_items:
            self.scan(item)
        if select.where is not None:
            self.scan(select.where)
        for expr in select.group_by:
            if not _is_bare_ts(expr):
                self.scan(expr)
        if select.having is not None:
            self.scan(select.having)
        for order in select.order_by:
            self.scan(order)

    def _note_literal(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Literal) and isinstance(
            expr.value, (int, float)
        ) and not isinstance(expr.value, bool):
            value = float(expr.value)
            self.bound = value if self.bound is None else max(self.bound, value)
            return True
        return False


def _is_bare_ts(expr: ast.Node) -> bool:
    return isinstance(expr, ast.ColumnRef) and expr.name == "ts"


def profile_policy(
    select: ast.Query,
    registry: LogRegistry,
    database,
    stable: bool,
) -> CachePolicyProfile:
    """Classify one effective policy query (see the module docstring).

    ``stable`` says the time-independent rewrite was applied, so the
    evaluation is already pinned to the increment; otherwise the policy
    is at best ``versioned``.
    """
    relations: set = set()
    for node in select.walk():
        if isinstance(node, ast.TableRef):
            name = node.name.lower()
            if registry.is_log_relation(name):
                relations.add(name)
            elif name == CLOCK_TABLE:
                if not stable:
                    return CachePolicyProfile(
                        kind="uncacheable",
                        reason="time-dependent policy references the clock",
                    )
            else:
                # A ts-named column on a base table breaks the premise
                # that every non-increment ts lies below the clock.
                if database is not None and database.has_table(name):
                    columns = database.table(name).schema.column_names
                    if "ts" in columns:
                        return CachePolicyProfile(
                            kind="uncacheable",
                            reason=f"base table {name!r} has a ts column",
                        )

    scan = _TsScan()
    scan.scan(select)
    if scan.failure is not None:
        return CachePolicyProfile(kind="uncacheable", reason=scan.failure)

    if stable:
        return CachePolicyProfile(kind="stable", min_ts_bound=scan.bound)
    return CachePolicyProfile(
        kind="versioned",
        relations=frozenset(relations),
        min_ts_bound=scan.bound,
    )


def touches_log_state(query: ast.Query, registry: LogRegistry) -> bool:
    """Whether the *submitted* query reads a log relation or the Clock.

    Such a query's result — and its provenance increment — depend on log
    contents, so its checks bypass the cache entirely.
    """
    for node in query.walk():
        if isinstance(node, ast.TableRef):
            name = node.name.lower()
            if registry.is_log_relation(name) or name == CLOCK_TABLE:
                return True
    return False


# ---------------------------------------------------------------------------
# The cache itself
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CachedDecision:
    """One memoized whole-check verdict."""

    #: Violations of the original check (empty tuple = allowed).
    violations: tuple
    #: Ordered log relations staged during policy evaluation; a hit
    #: replays exactly these (commit-phase staging re-runs on its own).
    generated: tuple
    #: ``(relation, version)`` pairs that must still hold for reuse.
    requirements: tuple


@dataclass
class DecisionCacheStats:
    hits: int = 0
    misses: int = 0
    #: Entries dropped because a read table's version moved on.
    invalidations: int = 0
    stores: int = 0
    evictions: int = 0
    entries: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
            "evictions": self.evictions,
            "entries": self.entries,
        }


class DecisionCache:
    """An LRU of whole-check verdicts for one enforcer.

    Single-threaded like the enforcer itself (each service shard
    serializes on its lock); the integer stat counters are safe to read
    from the metrics scraper without synchronization.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("decision cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, CachedDecision]" = OrderedDict()
        self.stats = DecisionCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def key_for(
        sql: str, uid: int, attributes: Optional[dict]
    ) -> Optional[tuple]:
        """The cache key, or None when the text cannot be canonicalized
        (the normal submit path will then raise the real error)."""
        try:
            canonical = canonical_sql(sql)
        except ReproError:
            return None
        if attributes:
            attrs = tuple(sorted((str(k), repr(v)) for k, v in attributes.items()))
        else:
            attrs = ()
        return (uid, canonical, attrs)

    def lookup(self, key: tuple, store) -> Optional[CachedDecision]:
        """A still-valid entry for ``key``, or None (counting the miss).

        ``store`` supplies :meth:`~repro.log.store.LogStore.version` for
        the versioned-invalidation check.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        for relation, version in entry.requirements:
            if store.version(relation) != version:
                del self._entries[key]
                self.stats.entries = len(self._entries)
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def store(
        self,
        key: tuple,
        violations: "list[Violation]",
        generated: "tuple[str, ...]",
        requirements: "dict[str, int]",
    ) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = CachedDecision(
            violations=tuple(violations),
            generated=tuple(generated),
            requirements=tuple(sorted(requirements.items())),
        )
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self.stats.entries = len(self._entries)

    def clear(self) -> None:
        """Drop everything (policy-set epoch bump)."""
        self.stats.invalidations += len(self._entries)
        self._entries.clear()
        self.stats.entries = 0
