"""The DataLawyer enforcement pipeline (§4) and the NoOpt baseline.

One :class:`Enforcer` class implements both systems; :class:`EnforcerOptions`
toggles each optimization independently so the benchmarks can ablate them:

- ``NoOpt`` (Algorithm 1 + the two straightforward optimizations): only
  generate logs that policies mention, stage increments in memory and flush
  on success, evaluate the policies as one UNION query. No compaction — the
  log grows without bound.
- ``DataLawyer`` (§4.4): offline, unify same-shape policies and rewrite
  time-independent ones; online, interleaved evaluation over partial
  policies (Algorithm 3), full evaluation of the non-interleavable rest,
  then log compaction (mark via absolute-witness queries, delete, insert)
  with preemptive pruning, and finally the user's query.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from ..analysis import (
    WitnessSet,
    analyze_structure,
    can_interleave,
    is_monotone,
    is_time_independent,
    partial_chain,
    partial_witness_probe,
    referenced_log_relations,
    rewrite_time_independent,
    substitute_current_time,
    unify_policies,
    witness_queries,
)
from ..analysis.unification import _CONST_ALIAS, UnifiedGroup
from ..deprecation import warn_deprecated
from ..engine import DEFAULT_ENGINE, ENGINES, Database, Engine, Result
from ..engine.dag import PolicyDag
from ..errors import ReproError
from ..incremental import (
    IncrementalMaintainer,
    IncrementalPlan,
    classify_policy,
    plan_summary,
)
from ..log import Clock, LogicalClock, LogRegistry, QueryContext, standard_registry
from ..obs import TraceContext
from ..log.store import LogStore
from ..sql import ast
from .decision_cache import (
    CachePolicyProfile,
    DecisionCache,
    merge_profiles,
    profile_policy,
    touches_log_state,
)
from .metrics import (
    PHASE_DELETE,
    PHASE_INSERT,
    PHASE_MARK,
    PHASE_POLICY,
    PHASE_QUERY,
    MetricsLog,
    QueryMetrics,
)
from .policy import Decision, Policy, Violation


@dataclass(frozen=True)
class EnforcerOptions:
    """Feature toggles for the enforcement pipeline."""

    interleaved: bool = True
    log_compaction: bool = True
    time_independent: bool = True
    unification: bool = True
    preemptive_compaction: bool = True
    #: §4.3 improved partial policies (lineage-based increment-dependence
    #: test). Off by default, matching the paper's main configuration.
    improved_partial: bool = False
    #: Policy evaluation strategy when ``interleaved`` is off:
    #: "serial" (one statement per policy) or "union" (one big statement).
    eval_strategy: str = "union"
    #: Evaluate the "union" strategy through a cross-policy shared-subplan
    #: DAG (see :mod:`repro.engine.dag`): identical scans, pushed-filter
    #: scans, join builds, and group-bys across policy branches execute
    #: once per check, branches run cheapest-first, and the check
    #: short-circuits on the first firing policy. Decisions and the usage
    #: log are bit-identical either way. Off in the NoOpt baseline, which
    #: models the paper's branch-at-a-time UNION statement.
    plan_sharing: bool = True
    #: Run the mark/delete phases only every k-th query (§5.2: "DataLawyer
    #: could compact the log less frequently or whenever the system has
    #: idle resources"). Increments are still persisted every query, so
    #: deferral trades log size for per-query compaction cost; it is always
    #: sound because witnesses are *absolute* (valid at any future time).
    compaction_every: int = 1
    #: Whether ``submit`` runs the user's query after a positive decision.
    execute_queries: bool = True
    #: Build a per-query trace (root span on the :class:`Decision`, one
    #: child per phase/policy, operator spans under the query phase).
    #: Orthogonal to the paper's ablations; off it reverts ``timed()`` to
    #: bare perf counters.
    tracing: bool = True
    #: Execution engine for policy checks and user queries when lineage
    #: is off: ``"row"``, ``"vectorized"``, or ``"columnar"``; ``None``
    #: selects the engine default (columnar). Pure execution strategy —
    #: decisions and results are bit-identical under every engine — but
    #: exposed so the equivalence suite can hold it as an ablation.
    engine: Optional[str] = None
    #: Deprecated pre-columnar spelling (``True`` → the vectorized
    #: engine, ``False`` → the row engine). Normalized into ``engine``
    #: (which wins when both are given) with a :class:`DeprecationWarning`
    #: at construction; reads back as ``None`` afterwards.
    vectorized: Optional[bool] = None
    #: Memoize whole-check verdicts across queries (see
    #: :mod:`repro.core.decision_cache`). Off by default at this layer so
    #: the paper's ablation benchmarks measure what they claim to; the
    #: sharded service turns it on for its hot path.
    decision_cache: bool = False
    #: LRU capacity of the decision cache (entries, not bytes).
    decision_cache_size: int = 1024
    #: Maintain per-group running aggregates for incrementalizable policies
    #: (see :mod:`repro.incremental`) so their checks cost O(delta) instead
    #: of a full-log scan. Decisions are bit-identical either way. Off by
    #: default at this layer for the same reason as ``decision_cache``; the
    #: sharded service turns it on.
    incremental: bool = False
    #: Poison a policy's incremental state (permanent full-eval fallback)
    #: when its exact state outgrows this many entries — the bounded-sketch
    #: escape hatch for unbounded distinct-key domains.
    incremental_max_entries: int = 100_000

    def __post_init__(self) -> None:
        if self.vectorized is not None:
            warn_deprecated(
                "EnforcerOptions.vectorized is deprecated; use "
                "engine='vectorized' or engine='row'"
            )
            if self.engine is None:
                object.__setattr__(
                    self, "engine", "vectorized" if self.vectorized else "row"
                )
            object.__setattr__(self, "vectorized", None)
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {', '.join(ENGINES)}"
            )

    @property
    def engine_name(self) -> str:
        """The effective engine (defaults applied)."""
        return self.engine or DEFAULT_ENGINE

    @classmethod
    def datalawyer(cls, **overrides) -> "EnforcerOptions":
        """All optimizations on (the paper's DataLawyer configuration)."""
        return cls(**overrides)

    @classmethod
    def noopt(cls, **overrides) -> "EnforcerOptions":
        """The NoOpt baseline configuration."""
        defaults = dict(
            interleaved=False,
            log_compaction=False,
            time_independent=False,
            unification=False,
            preemptive_compaction=False,
            improved_partial=False,
            eval_strategy="union",
            plan_sharing=False,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class RuntimePolicy:
    """A policy after the offline phase: rewrites and evaluation artifacts."""

    name: str
    message: str
    #: Effective query (after time-independent rewrite, if applied).
    select: ast.Select
    original: ast.Select
    log_relations: set[str] = field(default_factory=set)
    time_independent: bool = False
    monotone: bool = False
    interleavable: bool = False
    #: Stage set → partial policy; only stages where the partial changes.
    chain_map: dict[frozenset, Optional[ast.Select]] = field(default_factory=dict)
    witness: Optional[WitnessSet] = None
    improved_partial_safe: bool = False
    #: For unified groups: the names of the original member policies.
    member_names: list[str] = field(default_factory=list)
    #: For unified groups: whitespace-normalized violation message → the
    #: member policy it belongs to, so firings (and their eval seconds)
    #: are attributed to the real policy instead of the joined name.
    member_messages: dict[str, str] = field(default_factory=dict)
    #: Offline cacheability classification (stable/versioned/uncacheable).
    cache_profile: Optional[CachePolicyProfile] = None
    #: Incremental-maintenance plan, when the shape qualifies.
    incremental_plan: Optional[IncrementalPlan] = None
    #: Human-readable classification verdict (always set by _analyze).
    incremental_reason: str = ""


def _member_messages(group: UnifiedGroup) -> dict[str, str]:
    """Map each member policy's violation message back to its name.

    A unified group selects its message from the generated constants
    table (``__c.c<j>``), so member *i*'s message is literally row *i*,
    column *j* of the group's constant rows. Messages two members share
    are dropped: attribution would be a guess, and the caller falls back
    to the joined group name.
    """
    expr = group.select.items[0].expr
    if not (
        isinstance(expr, ast.ColumnRef)
        and expr.table == _CONST_ALIAS
        and expr.name.startswith("c")
    ):
        return {}
    try:
        index = int(expr.name[1:])
    except ValueError:
        return {}
    messages: dict[str, str] = {}
    ambiguous: set[str] = set()
    for member, row in zip(group.member_names, group.rows):
        value = row[index]
        if not isinstance(value, str):
            continue
        key = " ".join(value.split())
        if key in messages:
            ambiguous.add(key)
        else:
            messages[key] = member
    for key in ambiguous:
        del messages[key]
    return messages


class Enforcer:
    """Checks every submitted query against the policy set."""

    def __init__(
        self,
        database: Database,
        policies: Sequence[Policy] = (),
        registry: Optional[LogRegistry] = None,
        clock: Optional[Clock] = None,
        options: Optional[EnforcerOptions] = None,
    ):
        self.database = database
        self.registry = registry or standard_registry()
        self.clock = clock or LogicalClock()
        self.options = options or EnforcerOptions.datalawyer()
        self.engine = Engine(database, self.options.engine)
        self.store = LogStore(database, self.registry)
        self.metrics_log = MetricsLog()
        self.policies: list[Policy] = list(policies)
        self._runtime: list[RuntimePolicy] = []
        self._persist_relations: set[str] = set()
        #: Relations persisted (and, under compaction, retained) on every
        #: commit even when no local policy needs them — the sharded
        #: service's global tier sets this so shards keep committing the
        #: log rows its cross-shard aggregates fold, and the commit
        #: observer keeps streaming them.
        self.extra_persist_relations: set[str] = set()
        self._union_select: Optional[ast.Query] = None
        self._const_tables: list[str] = []
        self._queries_since_compaction = 0
        self._decision_cache: Optional[DecisionCache] = None
        self._cache_plan = None
        self._incremental: Optional[IncrementalMaintainer] = None
        self._union_residual: Optional[ast.Query] = None
        #: Branch-name tuple → (plan epoch, PolicyDag). Rebuilt whenever
        #: the engine's plan epoch moves past the cached one, so
        #: ``invalidate_plans()`` also drops every memoized DAG node.
        self._policy_dags: dict[tuple, tuple[int, PolicyDag]] = {}
        self.store.attach_observer(self)
        self._prepare()

    # ------------------------------------------------------------------
    # Offline phase (§4.4)
    # ------------------------------------------------------------------

    def add_policy(self, policy: Policy) -> None:
        """Register a policy mid-stream; its history starts now.

        Per the paper (§4.1.2 footnote), the new policy only sees log
        entries from the current time onward: we conjoin
        ``R.ts > now`` for every log occurrence.
        """
        now = self.clock.now()
        structure = analyze_structure(policy.select, self.registry, self.database)
        extra = [
            ast.BinaryOp(">", ast.col(alias, "ts"), ast.lit(now))
            for alias in sorted(structure.log_occurrences)
        ]
        if extra:
            select = policy.select.replace(
                where=ast.conjoin(ast.conjuncts(policy.select.where) + extra)
            )
            policy = replace(policy, select=select)
        self.policies.append(policy)
        self._prepare()

    def remove_policy(self, name: str) -> None:
        self.policies = [p for p in self.policies if p.name != name]
        self._prepare()

    def _prepare(self) -> None:
        """Run the offline phase over the current policy set."""
        for table in self._const_tables:
            if self.database.has_table(table):
                self.database.drop_table(table)
        self._const_tables = []
        self.engine.invalidate_plans()

        effective: list[RuntimePolicy] = []
        if self.options.unification and len(self.policies) > 1:
            unified = unify_policies(
                [(p.name, p.select) for p in self.policies]
            )
            by_name = {p.name: p for p in self.policies}
            for group in unified.groups:
                self.database.load_table(
                    group.table_name, group.column_names, group.rows
                )
                self._const_tables.append(group.table_name)
                effective.append(
                    RuntimePolicy(
                        name="+".join(group.member_names),
                        message="",  # per-member messages come from rows
                        select=group.select,
                        original=group.select,
                        member_names=group.member_names,
                        member_messages=_member_messages(group),
                    )
                )
            for name, select in unified.singletons:
                policy = by_name[name]
                effective.append(
                    RuntimePolicy(
                        name=policy.name,
                        message=policy.message,
                        select=select,
                        original=select,
                    )
                )
            self.engine.invalidate_plans()
        else:
            for policy in self.policies:
                effective.append(
                    RuntimePolicy(
                        name=policy.name,
                        message=policy.message,
                        select=policy.select,
                        original=policy.select,
                    )
                )

        for runtime in effective:
            self._analyze(runtime)

        self._runtime = effective
        self._policy_dags = {}
        self.engine.dag_shared_nodes = 0
        self._persist_relations = set()
        for runtime in effective:
            if self.options.log_compaction:
                if runtime.witness is not None:
                    self._persist_relations |= runtime.witness.relations()
            elif not (self.options.time_independent and runtime.time_independent):
                self._persist_relations |= runtime.log_relations

        self._union_select = None
        if effective:
            union: ast.Query = effective[0].select
            for runtime in effective[1:]:
                union = ast.SetOp("union", union, runtime.select)
            self._union_select = union

        # Any policy-set change invalidates the incremental maintainer;
        # it is rebuilt lazily (and folds resume) on the next check.
        self._incremental = None
        self._union_residual = None
        residual = [r for r in effective if r.incremental_plan is None]
        if residual:
            residual_union: ast.Query = residual[0].select
            for runtime in residual[1:]:
                residual_union = ast.SetOp(
                    "union", residual_union, runtime.select
                )
            self._union_residual = residual_union

        # Any policy-set change is an epoch bump for the decision cache:
        # every memoized verdict predates the new set.
        self._cache_plan = merge_profiles(
            runtime.cache_profile for runtime in effective
        )
        if self._decision_cache is not None:
            self._decision_cache.clear()

    def _analyze(self, runtime: RuntimePolicy) -> None:
        select = runtime.original
        runtime.log_relations = referenced_log_relations(select, self.registry)

        runtime.time_independent = is_time_independent(
            select, self.registry, self.database
        )
        if self.options.time_independent and runtime.time_independent:
            select = rewrite_time_independent(select, self.registry, self.database)
        runtime.select = select

        runtime.monotone = is_monotone(select)
        runtime.interleavable = can_interleave(select)
        if self.options.interleaved and runtime.interleavable:
            chain = partial_chain(
                select,
                self.registry,
                self.database,
                keep_having=runtime.monotone,
            )
            runtime.chain_map = dict(chain)

        skip_compaction = (
            self.options.time_independent and runtime.time_independent
        )
        if self.options.log_compaction and not skip_compaction:
            runtime.witness = witness_queries(select, self.registry, self.database)

        runtime.cache_profile = profile_policy(
            select,
            self.registry,
            self.database,
            stable=skip_compaction,
        )

        # §4.3 improved partial policies are sound only when (a) the policy
        # is monotone, (b) every clock predicate is window-limiting (the
        # satisfying region shrinks as time passes), and (c) all log
        # occurrences share one timestamp-equivalence class — then any
        # current-time violation must involve the current increment, so a
        # lineage test on a partial that contains at least one log atom is
        # conclusive.
        structure = analyze_structure(select, self.registry, self.database)
        occurrences = list(structure.log_occurrences)
        one_component = bool(occurrences) and set(occurrences) == (
            structure.ts_components.get(occurrences[0], {occurrences[0]})
            if occurrences
            else set()
        )
        runtime.improved_partial_safe = (
            runtime.monotone
            and one_component
            and structure.clock_predicates is not None
            and all(
                predicate.op in ("<", "<=", "=")
                for predicate in structure.clock_predicates
            )
        )

        # Classify for incremental maintenance regardless of the toggle —
        # the verdict is static analysis, surfaced via `repro incremental`
        # and /v1/policies even when the maintainer itself is off.
        classification = classify_policy(
            runtime.name,
            select,
            self.registry,
            self.database,
            time_independent=skip_compaction,
            structure=structure,
        )
        runtime.incremental_plan = classification.plan
        runtime.incremental_reason = classification.reason

    # ------------------------------------------------------------------
    # Online phase (§4.4)
    # ------------------------------------------------------------------

    def submit(
        self,
        sql: str,
        uid: int = 0,
        execute: Optional[bool] = None,
        attributes: Optional[dict] = None,
        timestamp: Optional[int] = None,
    ) -> Decision:
        """Check a query against all policies; run it if compliant.

        ``timestamp`` overrides the enforcer's own clock (the clock seeks
        to it) — the sharded service's global tier assigns timestamps
        coordinator-side so every shard observes one global order.
        """
        if timestamp is None:
            timestamp = self.clock.advance()
        else:
            self.clock.seek(timestamp)
        self.store.set_time(timestamp)
        trace = (
            TraceContext(f"submit uid={uid} ts={timestamp}")
            if self.options.tracing
            else None
        )
        metrics = QueryMetrics(timestamp=timestamp, uid=uid, trace=trace)
        cache = self._cache_handle()
        key = cache.key_for(sql, uid, attributes) if cache is not None else None
        cached = cache.lookup(key, self.store) if key is not None else None
        try:
            context = QueryContext.create(
                sql, uid, timestamp, self.engine, attributes
            )
            generated: set[str] = set()
            eval_order: list[str] = []

            def ensure_log(name: str) -> None:
                if name in generated:
                    return
                function = self.registry.get(name)
                with metrics.timed(f"log:{name}"):
                    rows = function.generate(context)
                    staged = self.store.stage(name, rows, timestamp)
                metrics.add_count("tuples_staged", staged)
                generated.add(name)
                eval_order.append(name)

            if cached is not None:
                # Replay the exact ordered increments the original check
                # staged during evaluation; the memoized verdict stands
                # in for the policy round itself.
                for name in cached.generated:
                    ensure_log(name)
                violations = list(cached.violations)
                entry_payload = None
            else:
                if self.options.interleaved:
                    violations = self._interleaved_round(metrics, ensure_log)
                else:
                    violations = self._direct_round(metrics, ensure_log)
                entry_payload = None
                if (
                    cache is not None
                    and key is not None
                    and self._cache_plan is not None
                    and self._cache_plan.storable_at(timestamp)
                    and not touches_log_state(context.query, self.registry)
                ):
                    # Snapshot *before* the verdict branch: the entry must
                    # record the evaluation-phase increment order (commit
                    # staging re-runs on its own), and the versions of the
                    # read tables as they were at evaluation time (this
                    # check's own commit bumps them).
                    entry_payload = (
                        tuple(eval_order),
                        {
                            name: self.store.version(name)
                            for name in sorted(self._cache_plan.relations)
                        },
                    )

            if violations:
                self.store.discard_staged()
                if entry_payload is not None:
                    cache.store(key, violations, *entry_payload)
                metrics.allowed = False
                self.metrics_log.record(metrics)
                return Decision(
                    allowed=False,
                    timestamp=timestamp,
                    violations=violations,
                    metrics=metrics,
                    sql=sql,
                    uid=uid,
                    span=self._finish_trace(trace, metrics, violations),
                )

            self._commit_logs(metrics, ensure_log, generated, timestamp)
            if entry_payload is not None:
                cache.store(key, violations, *entry_payload)
        except ReproError:
            # A query that dies mid-check (parse/bind/execution error)
            # must not leave staged increments behind; under a WAL the
            # discard also records the clock/tid advance this query
            # consumed, so recovery stays aligned with an uncrashed run.
            self.store.discard_staged()
            raise

        result: Optional[Result] = None
        should_execute = (
            self.options.execute_queries if execute is None else execute
        )
        if should_execute:
            with metrics.timed(PHASE_QUERY):
                result = self.engine.execute(context.query, trace=trace)
            metrics.add_count("statements")

        metrics.counts["log_size"] = self.store.total_live_size()
        self.metrics_log.record(metrics)
        return Decision(
            allowed=True,
            timestamp=timestamp,
            result=result,
            metrics=metrics,
            sql=sql,
            uid=uid,
            span=self._finish_trace(trace, metrics, []),
        )

    def _cache_handle(self) -> Optional[DecisionCache]:
        """The decision cache, created on first use when enabled.

        Lazy so that ``enforcer.options = replace(options, decision_cache=
        True)`` after construction (the service coordinator's pattern)
        still takes effect.
        """
        if not self.options.decision_cache:
            return None
        if self._decision_cache is None:
            self._decision_cache = DecisionCache(
                self.options.decision_cache_size
            )
        return self._decision_cache

    @property
    def decision_cache(self) -> Optional[DecisionCache]:
        """The live decision cache (None when disabled or never used)."""
        return self._decision_cache if self.options.decision_cache else None

    # -- incremental maintenance ------------------------------------------

    def _build_maintainer(self) -> IncrementalMaintainer:
        plans = {
            runtime.name: runtime.incremental_plan
            for runtime in self._runtime
            if runtime.incremental_plan is not None
        }
        return IncrementalMaintainer(
            self.database,
            self.registry,
            self.store,
            plans,
            engine=self.options.engine,
            max_entries=self.options.incremental_max_entries,
        )

    def _incremental_handle(self) -> Optional[IncrementalMaintainer]:
        """The maintainer, created (and bootstrapped from the persisted
        log) on first use when enabled — same lazy pattern as the decision
        cache, so flipping ``options.incremental`` after construction works.
        """
        if not self.options.incremental:
            self._incremental = None
            return None
        if self._incremental is None:
            maintainer = self._build_maintainer()
            maintainer.bootstrap()
            self._incremental = maintainer
        return self._incremental

    @property
    def incremental(self) -> Optional[IncrementalMaintainer]:
        """The live maintainer (None when disabled or never used)."""
        return self._incremental if self.options.incremental else None

    def warm_incremental(self) -> None:
        """Build and bootstrap the maintainer now instead of lazily.

        A no-op when ``options.incremental`` is off or state is already
        warm; the sharded service calls this at startup so the first
        admitted query doesn't pay the bootstrap scan under the shard
        lock.
        """
        self._incremental_handle()

    def incremental_report(self) -> list[dict]:
        """Per-runtime-policy classification, for the CLI and the API."""
        report = []
        for runtime in self._runtime:
            entry = {
                "runtime": runtime.name,
                "policies": list(runtime.member_names) or [runtime.name],
                "incrementalizable": runtime.incremental_plan is not None,
                "reason": runtime.incremental_reason,
            }
            if runtime.incremental_plan is not None:
                entry["plan"] = plan_summary(runtime.incremental_plan)
            report.append(entry)
        return report

    def load_incremental_state(self, payload: dict) -> bool:
        """Adopt checkpointed incremental state (restore path).

        False leaves the lazy-rebuild path in charge: the next check
        bootstraps deterministically from the recovered disk image.
        """
        if not self.options.incremental:
            return False
        maintainer = self._build_maintainer()
        if maintainer.restore(payload):
            self._incremental = maintainer
            return True
        return False

    # LogStore observer protocol: fold exactly what each commit persists.

    def log_observer_active(self) -> bool:
        return self.options.incremental and self._incremental is not None

    def on_log_commit(self, timestamp: int, inserted: dict) -> None:
        if self.log_observer_active():
            self._incremental.on_commit(timestamp, inserted)

    def on_log_discard(self) -> None:
        if self.log_observer_active():
            self._incremental.on_discard()

    @staticmethod
    def _finish_trace(trace, metrics, violations):
        if trace is None:
            return None
        root = trace.finish()
        root.counters["allowed"] = int(not violations)
        if violations:
            root.counters["violations"] = len(violations)
        root.counters["statements"] = metrics.counts.get("statements", 0)
        return root

    # -- policy evaluation ------------------------------------------------

    def _interleaved_round(
        self,
        metrics: QueryMetrics,
        ensure_log: Callable[[str], None],
    ) -> list[Violation]:
        """Algorithm 3 over the interleavable policies, then the rest."""
        violations: list[Violation] = []
        maintainer = self._incremental_handle()
        active = [
            r
            for r in self._runtime
            if r.interleavable
            and r.chain_map
            and not (maintainer is not None and r.incremental_plan is not None)
        ]
        active_ids = {id(r) for r in active}
        deferred = [r for r in self._runtime if id(r) not in active_ids]

        stage: set[str] = set()
        still_active: list[RuntimePolicy] = []
        for runtime in active:
            verdict = self._eval_stage(runtime, frozenset(), metrics)
            if verdict == "violation":
                violations.append(self._violation_for(runtime, metrics))
            elif verdict == "keep":
                still_active.append(runtime)
        active = still_active

        for function in self.registry.ordered():
            if not active:
                break
            name = function.name
            if any(name in runtime.log_relations for runtime in active):
                ensure_log(name)
            stage.add(name)
            frozen = frozenset(stage)
            still_active = []
            for runtime in active:
                verdict = self._eval_stage(runtime, frozen, metrics)
                if verdict == "violation":
                    violations.append(self._violation_for(runtime, metrics))
                elif verdict == "keep":
                    still_active.append(runtime)
            active = still_active

        # Anything that cannot interleave is evaluated in full (§4.4 step 2).
        # Incrementally routed policies land here too: their staging is
        # identical whether the state check or the full fallback answers,
        # which is what keeps warm and cold runs bit-identical.
        for runtime in deferred:
            for name in sorted(runtime.log_relations):
                ensure_log(name)
            if maintainer is not None and runtime.incremental_plan is not None:
                verdict = maintainer.check(runtime.name)
                if verdict is not None:
                    if verdict:
                        violations.append(
                            self._violation_for(runtime, metrics)
                        )
                    continue
            started = time.perf_counter()
            empty = self.engine.is_empty(runtime.select)
            self._attribute_policy_seconds(
                metrics, runtime, time.perf_counter() - started
            )
            metrics.add_count("statements")
            if not empty:
                violations.append(self._violation_for(runtime, metrics))
        return violations

    def _eval_stage(
        self,
        runtime: RuntimePolicy,
        stage: frozenset,
        metrics: QueryMetrics,
    ) -> str:
        """Evaluate one partial; returns 'pruned', 'keep' or 'violation'."""
        if stage not in runtime.chain_map:
            return "keep"  # partial unchanged at this stage
        partial = runtime.chain_map[stage]
        if partial is None:
            return "keep"  # degenerate partial: nothing useful to check
        is_full = partial == runtime.select

        # The lineage-based dependence test is only conclusive when the
        # partial contains a log atom (see _analyze); and the final full
        # evaluation is always decisive on its own.
        use_lineage = (
            self.options.improved_partial
            and runtime.improved_partial_safe
            and not is_full
            and bool(referenced_log_relations(partial, self.registry))
        )
        started = time.perf_counter()
        if use_lineage:
            result = self.engine.execute(partial, lineage=True)
            empty = not result.rows
        else:
            result = None
            empty = self.engine.is_empty(partial)
        self._attribute_policy_seconds(
            metrics, runtime, time.perf_counter() - started
        )
        metrics.add_count("statements")

        if empty:
            return "pruned"
        if use_lineage and result is not None:
            if not self._depends_on_increment(result):
                # §4.3: the non-empty answer predates this query's increment,
                # and the policy held before — it still holds.
                return "pruned"
        return "violation" if is_full else "keep"

    def _depends_on_increment(self, result: Result) -> bool:
        assert result.lineages is not None
        staged: dict[str, set[int]] = {
            name: set(self.store.staged_tids(name))
            for name in self.store.staged_relations()
        }
        for lineage in result.lineages:
            for table, tid in lineage:
                if tid in staged.get(table, ()):
                    return True
        return False

    def _direct_round(
        self,
        metrics: QueryMetrics,
        ensure_log: Callable[[str], None],
    ) -> list[Violation]:
        """Non-interleaved evaluation: one UNION statement or serial."""
        maintainer = self._incremental_handle()
        needed: set[str] = set()
        for runtime in self._runtime:
            needed |= runtime.log_relations
        for name in self.registry.names():
            if name in needed:
                ensure_log(name)

        if maintainer is not None:
            residual = [
                r for r in self._runtime if r.incremental_plan is None
            ]
            union_query = self._union_residual
        else:
            residual = list(self._runtime)
            union_query = self._union_select

        violations: list[Violation] = []
        if (
            self.options.eval_strategy == "union"
            and union_query is not None
            and residual
        ):
            if self.options.plan_sharing:
                # Shared-subplan DAG: one pass over the log for the whole
                # residual set, cheapest branches first, stopping at the
                # first firing policy. Counted as one statement, like the
                # UNION form it replaces.
                dag = self._policy_dag(residual)
                fired, timings = dag.evaluate()
                for runtime, seconds in timings:
                    self._attribute_policy_seconds(metrics, runtime, seconds)
                metrics.add_count("statements")
                if fired is not None:
                    violations.append(self._violation_for(fired, metrics))
            else:
                with metrics.timed(PHASE_POLICY, span="policy:union"):
                    result = self.engine.execute(union_query)
                metrics.add_count("statements")
                for row in result.rows:
                    message = (
                        row[0] if row and isinstance(row[0], str) else "violated"
                    )
                    violations.append(
                        Violation("policy-set", " ".join(message.split()))
                    )
        else:
            for runtime in residual:
                started = time.perf_counter()
                empty = self.engine.is_empty(runtime.select)
                self._attribute_policy_seconds(
                    metrics, runtime, time.perf_counter() - started
                )
                metrics.add_count("statements")
                if not empty:
                    violations.append(self._violation_for(runtime, metrics))

        if maintainer is not None:
            for runtime in self._runtime:
                if runtime.incremental_plan is None:
                    continue
                verdict = maintainer.check(runtime.name)
                if verdict is None:
                    started = time.perf_counter()
                    empty = self.engine.is_empty(runtime.select)
                    self._attribute_policy_seconds(
                        metrics, runtime, time.perf_counter() - started
                    )
                    metrics.add_count("statements")
                    verdict = not empty
                if verdict:
                    violations.append(self._violation_for(runtime, metrics))
        return violations

    def _policy_dag(self, residual: list[RuntimePolicy]) -> PolicyDag:
        """The shared-subplan DAG for this branch set, epoch-checked.

        Keyed by the branch names; an entry whose recorded plan epoch
        trails the engine's is stale — ``invalidate_plans()`` bumped the
        epoch, so both the cached branch plans and every memoized
        :class:`~repro.engine.dag.SharedNode` batch must be dropped.
        """
        key = tuple(runtime.name for runtime in residual)
        cached = self._policy_dags.get(key)
        if cached is not None and cached[0] == self.engine.plan_epoch:
            return cached[1]
        branches = [
            (runtime, self.engine.plan(runtime.select)) for runtime in residual
        ]
        dag = PolicyDag(self.engine, branches)
        self._policy_dags[key] = (self.engine.plan_epoch, dag)
        self.engine.dag_shared_nodes = sum(
            entry.shared_count for _, entry in self._policy_dags.values()
        )
        return dag

    def _attribute_policy_seconds(
        self, metrics: QueryMetrics, runtime: RuntimePolicy, seconds: float
    ) -> None:
        """Account policy-eval time under per-member ``policy:`` spans.

        A unified group's latency is split evenly across its member
        policies so ``repro_policy_eval_seconds`` keeps its per-policy
        breakdown; the shares sum to the measured time, so the phase
        total still reconciles with the trace exactly.
        """
        members = runtime.member_names or [runtime.name]
        share = seconds / len(members)
        for name in members:
            metrics.add_seconds(PHASE_POLICY, share, span=f"policy:{name}")

    def _violation_for(
        self, runtime: RuntimePolicy, metrics: QueryMetrics
    ) -> Violation:
        """Build the violation report, re-running the policy for evidence.

        For unified groups the firing is attributed to the member policy
        whose message matches the evidence (joined name when ambiguous),
        so reports, traces, and the decision cache speak in terms of the
        policies the operator actually registered.
        """
        started = time.perf_counter()
        result = self.engine.execute(runtime.select)
        elapsed = time.perf_counter() - started
        metrics.add_count("statements")
        message = runtime.message
        if result.rows and isinstance(result.rows[0][0], str):
            message = " ".join(result.rows[0][0].split())
        policy_name = runtime.member_messages.get(message, runtime.name)
        self._attribute_policy_seconds(metrics, runtime, elapsed)
        return Violation(
            policy_name=policy_name,
            message=message or f"policy {runtime.name!r} violated",
            evidence_rows=len(result.rows),
        )

    # -- compaction & flush --------------------------------------------------

    def _commit_logs(
        self,
        metrics: QueryMetrics,
        ensure_log: Callable[[str], None],
        generated: set[str],
        timestamp: int,
    ) -> None:
        extras = set(self.extra_persist_relations)
        persist_all = self._persist_relations | extras
        compact_now = False
        if self.options.log_compaction:
            self._queries_since_compaction += 1
            interval = max(1, self.options.compaction_every)
            compact_now = self._queries_since_compaction >= interval
        if compact_now:
            self._queries_since_compaction = 0
            marks: Optional[dict[str, set[int]]] = {
                name: set() for name in persist_all
            }
            for runtime in self._runtime:
                if runtime.witness is not None:
                    self._mark_policy(
                        runtime.witness, metrics, ensure_log, generated, timestamp, marks
                    )
            # Extra relations are retained in full — the global tier
            # rebuilds aggregator state exactly from shard disk images, so
            # compaction must never drop their history. Marking every live
            # tid (disk + staged) keeps the whole table and commits the
            # staged increment exactly once.
            for name in sorted(extras):
                ensure_log(name)
                marks.setdefault(name, set()).update(
                    self.database.table(name).tids()
                )
        else:
            # Either compaction is off, or this query is between compaction
            # points: persist the increments untouched (always sound).
            marks = None
            if self.options.log_compaction:
                # Between compaction points there is no witness run to pull
                # in lazily skipped increments, and a skipped increment is
                # lost forever — so every persisted relation's increment
                # must be generated now. (Under eager compaction the
                # witness/probe machinery does this on demand.)
                for name in sorted(persist_all):
                    ensure_log(name)
            else:
                for name in sorted(extras):
                    ensure_log(name)

        persist = (
            persist_all
            if self.options.log_compaction
            else persist_all & generated
        )
        stats = self.store.commit(marks, persist)
        metrics.add_seconds(PHASE_DELETE, stats.delete_seconds)
        metrics.add_seconds(PHASE_INSERT, stats.insert_seconds)
        metrics.add_count("tuples_deleted", stats.tuples_deleted)
        metrics.add_count("tuples_inserted", stats.tuples_inserted)

    def _mark_policy(
        self,
        witness: WitnessSet,
        metrics: QueryMetrics,
        ensure_log: Callable[[str], None],
        generated: set[str],
        timestamp: int,
        marks: dict[str, set[int]],
    ) -> None:
        for relation, templates in witness.per_relation.items():
            collected = marks.setdefault(relation, set())
            for template in templates:
                missing = (
                    referenced_log_relations(template, self.registry) - generated
                )
                if missing and self.options.preemptive_compaction:
                    probe = partial_witness_probe(
                        template, generated, self.registry
                    )
                    if probe is not None:
                        instantiated = substitute_current_time(probe, timestamp)
                        with metrics.timed(PHASE_MARK):
                            probe_empty = self.engine.is_empty(instantiated)
                        metrics.add_count("statements")
                        if probe_empty:
                            continue  # the full witness is provably empty
                for name in sorted(missing):
                    ensure_log(name)
                    generated.add(name)
                instantiated = substitute_current_time(template, timestamp)
                with metrics.timed(PHASE_MARK):
                    result = self.engine.execute(instantiated, lineage=True)
                metrics.add_count("statements")
                assert result.lineages is not None
                for lineage in result.lineages:
                    for table, tid in lineage:
                        if table == relation:
                            collected.add(tid)
        for relation in witness.retain_all:
            with metrics.timed(PHASE_MARK):
                marks.setdefault(relation, set()).update(
                    self.database.table(relation).tids()
                )

    # ------------------------------------------------------------------
    # Cloning (the sharded service's factory hook)
    # ------------------------------------------------------------------

    def clone(
        self,
        clock: Optional[Clock] = None,
        reset_log: bool = True,
    ) -> "Enforcer":
        """An independent enforcer over a copy of this one's catalog.

        The base data tables are cloned (rows shared structurally, so the
        copy is cheap); the unification constants tables are dropped and
        rebuilt by the clone's own offline phase. With ``reset_log`` (the
        default) the clone starts with an empty usage log — each shard of
        the service owns its own slice of the log, and carrying the
        source's persisted rows over would double-count them across
        shards. The clone gets its own clock (``clock`` or a copy of this
        enforcer's, resuming from the current timestamp).
        """
        database = self.database.clone()
        for table in self._const_tables:
            if database.has_table(table):
                database.drop_table(table)
        if reset_log:
            for name in self.registry.names():
                if database.has_table(name):
                    database.table(name).clear()
        return Enforcer(
            database,
            list(self.policies),
            registry=self.registry,
            clock=clock if clock is not None else self.clock.clone(),
            options=self.options,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def runtime_policies(self) -> list[RuntimePolicy]:
        return list(self._runtime)

    def log_sizes(self) -> dict[str, int]:
        return {
            name: self.store.live_size(name) for name in self.registry.names()
        }


def make_datalawyer(
    database: Database,
    policies: Sequence[Policy],
    registry: Optional[LogRegistry] = None,
    clock: Optional[Clock] = None,
    **option_overrides,
) -> Enforcer:
    """An :class:`Enforcer` with every optimization enabled."""
    return Enforcer(
        database,
        policies,
        registry=registry,
        clock=clock,
        options=EnforcerOptions.datalawyer(**option_overrides),
    )


def make_noopt(
    database: Database,
    policies: Sequence[Policy],
    registry: Optional[LogRegistry] = None,
    clock: Optional[Clock] = None,
    **option_overrides,
) -> Enforcer:
    """The NoOpt baseline of Algorithm 1."""
    return Enforcer(
        database,
        policies,
        registry=registry,
        clock=clock,
        options=EnforcerOptions.noopt(**option_overrides),
    )
