"""Policy templates (§6: "it may be possible to come up with templates
(domain specific, if required) that can be later tweaked to get the set
of policies for an organization" — future work in the paper).

A :class:`PolicyTemplate` is a named SQL skeleton with typed, documented
slots. Instantiating a template validates the parameters, substitutes
them, and returns a ready :class:`~repro.core.policy.Policy`. The built-in
registry covers the survey's recurring restriction types (Table 1); new
domains register their own.

Because instances of one template share their SQL skeleton, the
unification optimization (§4.2.2) automatically collapses any number of
them into a single runtime policy.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping, Optional, Union

from ..errors import PolicyError
from .policy import Policy

#: Allowed slot value types.
SlotValue = Union[int, float, str]


@dataclass(frozen=True)
class Slot:
    """One template parameter."""

    name: str
    description: str
    type_name: str = "str"  # "str" | "int" | "float" | "identifier"
    default: Optional[SlotValue] = None

    def validate(self, value: SlotValue) -> SlotValue:
        if self.type_name == "int":
            if not isinstance(value, int) or isinstance(value, bool):
                raise PolicyError(
                    f"slot {self.name!r} expects an int, got {value!r}"
                )
            return value
        if self.type_name == "float":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise PolicyError(
                    f"slot {self.name!r} expects a number, got {value!r}"
                )
            return value
        if self.type_name == "identifier":
            if not isinstance(value, str) or not re.fullmatch(
                r"[A-Za-z_][A-Za-z0-9_]*", value
            ):
                raise PolicyError(
                    f"slot {self.name!r} expects an identifier, got {value!r}"
                )
            return value.lower()
        if not isinstance(value, str):
            raise PolicyError(
                f"slot {self.name!r} expects a string, got {value!r}"
            )
        if "'" in value:
            # values land inside single-quoted SQL literals
            return value.replace("'", "''")
        return value


@dataclass(frozen=True)
class PolicyTemplate:
    """A named skeleton with ``{slot}`` placeholders."""

    name: str
    description: str
    sql_skeleton: str
    slots: tuple[Slot, ...] = ()

    def slot(self, name: str) -> Slot:
        for slot in self.slots:
            if slot.name == name:
                return slot
        raise PolicyError(f"template {self.name!r} has no slot {name!r}")

    def instantiate(
        self, policy_name: Optional[str] = None, **params: SlotValue
    ) -> Policy:
        """Fill the slots and build the policy."""
        values: dict[str, SlotValue] = {}
        for slot in self.slots:
            if slot.name in params:
                values[slot.name] = slot.validate(params.pop(slot.name))
            elif slot.default is not None:
                values[slot.name] = slot.default
            else:
                raise PolicyError(
                    f"template {self.name!r}: missing required slot "
                    f"{slot.name!r}"
                )
        if params:
            unknown = ", ".join(sorted(params))
            raise PolicyError(
                f"template {self.name!r}: unknown slots: {unknown}"
            )
        sql = self.sql_skeleton.format(**values)
        name = policy_name or "{}-{}".format(
            self.name, "-".join(str(v) for v in values.values())
        )
        return Policy.from_sql(name, sql, description=self.description)


class TemplateRegistry:
    """Named collection of templates."""

    def __init__(self) -> None:
        self._templates: dict[str, PolicyTemplate] = {}

    def register(self, template: PolicyTemplate) -> PolicyTemplate:
        key = template.name.lower()
        if key in self._templates:
            raise PolicyError(f"template {template.name!r} already registered")
        self._templates[key] = template
        return template

    def get(self, name: str) -> PolicyTemplate:
        try:
            return self._templates[name.lower()]
        except KeyError:
            raise PolicyError(f"unknown template {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._templates)

    def instantiate(
        self, template_name: str, policy_name: Optional[str] = None, **params
    ) -> Policy:
        return self.get(template_name).instantiate(policy_name, **params)


#: The built-in templates: Table 1's restriction types.
BUILTIN_TEMPLATES = TemplateRegistry()

BUILTIN_TEMPLATES.register(
    PolicyTemplate(
        name="no-joins",
        description="Prohibit joining a relation with anything else "
        "(Navteq, Table 1 P1).",
        sql_skeleton=(
            "SELECT DISTINCT 'Joining {relation} with other data is "
            "prohibited' FROM schema p1, schema p2 "
            "WHERE p1.ts = p2.ts AND p1.irid = '{relation}' "
            "AND p2.irid <> '{relation}'"
        ),
        slots=(Slot("relation", "the protected relation", "identifier"),),
    )
)

BUILTIN_TEMPLATES.register(
    PolicyTemplate(
        name="rate-limit",
        description="Cap queries per user per window (Twitter, Table 1 P4).",
        sql_skeleton=(
            "SELECT DISTINCT 'Rate limit: user {uid} exceeded "
            "{max_requests} requests per window' "
            "FROM users u, clock c "
            "WHERE u.uid = {uid} AND u.ts > c.ts - {window} "
            "HAVING COUNT(DISTINCT u.ts) > {max_requests}"
        ),
        slots=(
            Slot("uid", "the rate-limited user id", "int"),
            Slot("max_requests", "requests allowed per window", "int"),
            Slot("window", "window length in clock units", "int"),
        ),
    )
)

BUILTIN_TEMPLATES.register(
    PolicyTemplate(
        name="k-anonymity",
        description="Every output tuple must draw on at least k tuples of "
        "the protected relation (MIMIC, Table 1 P5).",
        sql_skeleton=(
            "SELECT DISTINCT 'Fewer than {k} {relation} tuples contribute "
            "to an answer' FROM provenance p "
            "WHERE p.irid = '{relation}' "
            "GROUP BY p.ts, p.otid HAVING COUNT(DISTINCT p.itid) < {k}"
        ),
        slots=(
            Slot("relation", "the protected relation", "identifier"),
            Slot("k", "minimum contributing tuples", "int"),
        ),
    )
)

BUILTIN_TEMPLATES.register(
    PolicyTemplate(
        name="no-aggregation",
        description="Values of a relation may be shown but not aggregated "
        "(Yelp, Table 1 P7).",
        sql_skeleton=(
            "SELECT DISTINCT 'Aggregating {relation} data is prohibited' "
            "FROM schema s WHERE s.irid = '{relation}' AND s.agg = TRUE"
        ),
        slots=(Slot("relation", "the protected relation", "identifier"),),
    )
)

BUILTIN_TEMPLATES.register(
    PolicyTemplate(
        name="volume-quota",
        description="Cap output tuples derived from a relation per window "
        "(MS Translator free tier, Table 1 P3).",
        sql_skeleton=(
            "SELECT DISTINCT 'Quota exceeded for {relation}' "
            "FROM provenance p, clock c "
            "WHERE p.irid = '{relation}' AND p.ts > c.ts - {window} "
            "HAVING COUNT(DISTINCT p.ts || ':' || p.otid) > {max_tuples}"
        ),
        slots=(
            Slot("relation", "the metered relation", "identifier"),
            Slot("max_tuples", "output tuples allowed per window", "int"),
            Slot("window", "window length in clock units", "int"),
        ),
    )
)

BUILTIN_TEMPLATES.register(
    PolicyTemplate(
        name="user-volume-quota",
        description="Cap output tuples one user derives from a relation "
        "per window (the per-subscriber form of volume-quota; unlike the "
        "global form it is shard-local, so the sharded service accepts it).",
        sql_skeleton=(
            "SELECT DISTINCT 'Quota exceeded for {relation} (user {uid})' "
            "FROM provenance p, users u, clock c "
            "WHERE p.ts = u.ts AND u.uid = {uid} "
            "AND p.irid = '{relation}' AND p.ts > c.ts - {window} "
            "HAVING COUNT(DISTINCT p.ts || ':' || p.otid) > {max_tuples}"
        ),
        slots=(
            Slot("relation", "the metered relation", "identifier"),
            Slot("uid", "the metered user id", "int"),
            Slot("max_tuples", "output tuples allowed per window", "int"),
            Slot("window", "window length in clock units", "int"),
        ),
    )
)

BUILTIN_TEMPLATES.register(
    PolicyTemplate(
        name="group-access-window",
        description="At most n distinct users of a group may touch a "
        "relation per window (Table 1 P2 / experiment P1).",
        sql_skeleton=(
            "SELECT DISTINCT 'More than {max_users} {group} users queried "
            "{relation} in a window' "
            "FROM users u, schema s, groups g, clock c "
            "WHERE u.ts = s.ts AND s.irid = '{relation}' "
            "AND u.uid = g.uid AND g.gid = '{group}' "
            "AND u.ts > c.ts - {window} "
            "HAVING COUNT(DISTINCT u.uid) > {max_users}"
        ),
        slots=(
            Slot("relation", "the protected relation", "identifier"),
            Slot("group", "the restricted user group", "str"),
            Slot("max_users", "distinct users allowed per window", "int"),
            Slot("window", "window length in clock units", "int"),
        ),
    )
)
