"""Enforcement core: policies, decisions, metrics, and the enforcer."""

from .enforcer import (
    Enforcer,
    EnforcerOptions,
    RuntimePolicy,
    make_datalawyer,
    make_noopt,
)
from .metrics import (
    COMPACTION_PHASES,
    PHASE_DELETE,
    PHASE_INSERT,
    PHASE_MARK,
    PHASE_POLICY,
    PHASE_QUERY,
    MetricsLog,
    QueryMetrics,
)
from .approximate import (
    ApproximatePolicy,
    UnsoundScreenError,
    derive_screen,
    from_screen_sql,
)
from .audit import AuditRecord, AuditTrail, attach_audit_trail
from .explain import EvidenceTuple, ViolationExplanation, explain_decision
from .policy import Decision, Policy, Violation
from .templates import (
    BUILTIN_TEMPLATES,
    PolicyTemplate,
    Slot,
    TemplateRegistry,
)

__all__ = [
    "Enforcer",
    "EnforcerOptions",
    "RuntimePolicy",
    "make_datalawyer",
    "make_noopt",
    "MetricsLog",
    "QueryMetrics",
    "PHASE_QUERY",
    "PHASE_POLICY",
    "PHASE_MARK",
    "PHASE_DELETE",
    "PHASE_INSERT",
    "COMPACTION_PHASES",
    "Decision",
    "Policy",
    "Violation",
    "explain_decision",
    "ViolationExplanation",
    "EvidenceTuple",
    "BUILTIN_TEMPLATES",
    "PolicyTemplate",
    "Slot",
    "TemplateRegistry",
    "ApproximatePolicy",
    "UnsoundScreenError",
    "derive_screen",
    "from_screen_sql",
    "AuditRecord",
    "AuditTrail",
    "attach_audit_trail",
]
