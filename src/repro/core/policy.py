"""Policy definition and validation (§3.1).

A policy is a SQL query of the fixed shape::

    SELECT DISTINCT '<error message>' FROM ... WHERE ... GROUP BY ... HAVING ...

over the database, the usage log, and the one-row Clock. The policy is
*satisfied* when the query returns no rows; any returned row is a
violation and its first column is reported to the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import PolicySyntaxError
from ..sql import ast, parse, print_query


@dataclass
class Policy:
    """A named, parsed data-use policy."""

    name: str
    select: ast.Select
    #: Human-readable violation message (the select-list literal when the
    #: policy follows the standard shape).
    message: str
    #: Free-form description for documentation/UIs.
    description: str = ""

    @classmethod
    def from_sql(cls, name: str, sql: str, description: str = "") -> "Policy":
        """Parse and validate a policy written in SQL."""
        query = parse(sql)
        if not isinstance(query, ast.Select):
            raise PolicySyntaxError(
                f"policy {name!r} must be a single SELECT statement"
            )
        select = query
        if not select.from_items:
            raise PolicySyntaxError(f"policy {name!r} needs a FROM clause")
        if len(select.items) != 1:
            raise PolicySyntaxError(
                f"policy {name!r} must select exactly one item (the error message)"
            )
        item = select.items[0]
        if isinstance(item.expr, ast.Star):
            raise PolicySyntaxError(f"policy {name!r} cannot select '*'")
        if isinstance(item.expr, ast.Literal) and isinstance(item.expr.value, str):
            # Collapse the incidental whitespace of multi-line SQL literals.
            message = " ".join(item.expr.value.split())
        else:
            message = f"policy {name!r} violated"
        if select.order_by or select.limit is not None:
            raise PolicySyntaxError(
                f"policy {name!r} cannot use ORDER BY or LIMIT"
            )
        _reject_disjunctions(name, select)
        return cls(name=name, select=select, message=message, description=description)

    @property
    def sql(self) -> str:
        return print_query(self.select)

    def __str__(self) -> str:
        return f"Policy({self.name}): {self.sql}"


def _reject_disjunctions(name: str, select: ast.Select) -> None:
    """WHERE and HAVING must be conjunctions of atomic predicates (§3.1)."""
    for clause, label in ((select.where, "WHERE"), (select.having, "HAVING")):
        if clause is None:
            continue
        for conjunct in ast.conjuncts(clause):
            for node in conjunct.walk():
                if isinstance(node, ast.BinaryOp) and node.op == "or":
                    raise PolicySyntaxError(
                        f"policy {name!r}: {label} must be a conjunction of "
                        "atomic predicates (no OR)"
                    )


@dataclass
class Violation:
    """One policy violation detected for a query."""

    policy_name: str
    message: str
    #: Rows the policy query returned (their first column is the message).
    evidence_rows: int = 1

    def __str__(self) -> str:
        return f"[{self.policy_name}] {self.message}"


@dataclass
class Decision:
    """The outcome of submitting a query to the enforcer."""

    allowed: bool
    timestamp: int
    violations: list[Violation] = field(default_factory=list)
    #: The query result when the query was allowed and executed.
    result: Optional[object] = None
    metrics: Optional[object] = None
    #: The submitted query and user (used by explain_decision).
    sql: str = ""
    uid: int = 0
    #: Root :class:`~repro.obs.Span` of the check's trace (None when
    #: tracing is disabled).
    span: Optional[object] = None

    def __bool__(self) -> bool:
        return self.allowed
