"""Per-query phase timing and counters.

The evaluation section of the paper reports, per query: the query's own
execution time, the cost of tracking usage (log generation), the cost of
evaluating policies, and the three log-compaction phases (mark / delete /
insert). :class:`QueryMetrics` records exactly those buckets;
:class:`MetricsLog` aggregates across queries for the benchmark harness
(batch means for Figure 1, steady-state means for Figure 2, and so on).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from statistics import mean
from typing import Iterator, Optional

from ..obs import TraceContext

#: Canonical phase keys.
PHASE_QUERY = "query"
PHASE_LOG_PREFIX = "log:"  # log:users, log:schema, log:provenance, ...
PHASE_POLICY = "policy_eval"
PHASE_MARK = "compact_mark"
PHASE_DELETE = "compact_delete"
PHASE_INSERT = "compact_insert"

COMPACTION_PHASES = (PHASE_MARK, PHASE_DELETE, PHASE_INSERT)


@dataclass
class QueryMetrics:
    """Timing and counters for one submitted query.

    When a :class:`~repro.obs.TraceContext` is attached, every
    :meth:`timed` block also opens a span, and the phase seconds are the
    span's measurement — the metrics *feed from* the trace, so the two
    views always reconcile exactly.
    """

    timestamp: int = 0
    uid: int = 0
    allowed: bool = True
    seconds: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    trace: Optional[TraceContext] = None

    def add_seconds(
        self, phase: str, value: float, span: Optional[str] = None
    ) -> None:
        """Account pre-measured seconds; mirrored into the trace."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + value
        if self.trace is not None:
            self.trace.record(span or phase, value)

    def add_count(self, counter: str, value: int = 1) -> None:
        self.counts[counter] = self.counts.get(counter, 0) + value

    @contextmanager
    def timed(
        self, phase: str, span: Optional[str] = None, merge: bool = True
    ) -> Iterator[None]:
        """Time a block into ``phase`` (and a span named ``span``).

        ``span`` defaults to the phase name; ``merge`` accumulates
        repeated blocks into a single span per name (one span per policy
        across interleaved stages) rather than one span per call.
        """
        handle = None
        if self.trace is not None:
            handle = self.trace.push(span or phase, merge=merge)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            if self.trace is not None:
                self.trace.pop(handle, elapsed)
            self.seconds[phase] = self.seconds.get(phase, 0.0) + elapsed

    # -- derived quantities ---------------------------------------------------

    @property
    def query_seconds(self) -> float:
        return self.seconds.get(PHASE_QUERY, 0.0)

    @property
    def tracking_seconds(self) -> float:
        """Usage-tracking cost: all log-generation phases."""
        return sum(
            value
            for phase, value in self.seconds.items()
            if phase.startswith(PHASE_LOG_PREFIX)
        )

    @property
    def policy_seconds(self) -> float:
        return self.seconds.get(PHASE_POLICY, 0.0)

    @property
    def compaction_seconds(self) -> float:
        return sum(self.seconds.get(phase, 0.0) for phase in COMPACTION_PHASES)

    @property
    def overhead_seconds(self) -> float:
        """Everything except running the user's query."""
        return self.total_seconds - self.query_seconds

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> dict[str, float]:
        """The paper's four reporting buckets, in seconds."""
        return {
            "query": self.query_seconds,
            "tracking": self.tracking_seconds,
            "policy_eval": self.policy_seconds,
            "compaction": self.compaction_seconds,
        }


@dataclass
class MetricsLog:
    """A growing sequence of per-query metrics with aggregation helpers."""

    entries: list[QueryMetrics] = field(default_factory=list)

    def record(self, metrics: QueryMetrics) -> None:
        self.entries.append(metrics)

    def __len__(self) -> int:
        return len(self.entries)

    def clear(self) -> None:
        self.entries.clear()

    def mean_total_seconds(self, start: int = 0, end: Optional[int] = None) -> float:
        window = self.entries[start:end]
        if not window:
            return 0.0
        return mean(entry.total_seconds for entry in window)

    def mean_overhead_seconds(
        self, start: int = 0, end: Optional[int] = None
    ) -> float:
        window = self.entries[start:end]
        if not window:
            return 0.0
        return mean(entry.overhead_seconds for entry in window)

    def batch_means(self, batch_size: int) -> list[float]:
        """Mean total seconds per consecutive batch (Figure 1's series)."""
        means: list[float] = []
        for start in range(0, len(self.entries), batch_size):
            means.append(self.mean_total_seconds(start, start + batch_size))
        return means

    def mean_breakdown(
        self, start: int = 0, end: Optional[int] = None
    ) -> dict[str, float]:
        """Mean of the four reporting buckets over a window."""
        window = self.entries[start:end]
        if not window:
            return {"query": 0.0, "tracking": 0.0, "policy_eval": 0.0, "compaction": 0.0}
        totals = {"query": 0.0, "tracking": 0.0, "policy_eval": 0.0, "compaction": 0.0}
        for entry in window:
            for bucket, value in entry.breakdown().items():
                totals[bucket] += value
        return {bucket: value / len(window) for bucket, value in totals.items()}

    def mean_phase_seconds(
        self, phase: str, start: int = 0, end: Optional[int] = None
    ) -> float:
        window = self.entries[start:end]
        if not window:
            return 0.0
        return mean(entry.seconds.get(phase, 0.0) for entry in window)

    def total_count(self, counter: str) -> int:
        return sum(entry.counts.get(counter, 0) for entry in self.entries)
