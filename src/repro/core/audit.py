"""Audit trail: a durable record of every enforcement decision.

The paper's §7 situates DataLawyer against after-the-fact auditing
systems; an online enforcer naturally subsumes them by *recording* its
decisions as it makes them. :class:`AuditTrail` captures, per submitted
query: timestamp, user, SQL, verdict, fired policies, and the phase
timings — enough to answer "who tried what, when, and what stopped them"
without replaying anything.

The trail is kept outside the policy-visible usage log on purpose: the
paper excludes policies over DataLawyer's own actions (§6), and keeping
the trail separate enforces that boundary structurally.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Optional

from .policy import Decision


@dataclass(frozen=True)
class AuditRecord:
    """One decision, flattened for reporting."""

    timestamp: int
    uid: int
    sql: str
    allowed: bool
    policies_fired: tuple[str, ...]
    messages: tuple[str, ...]
    overhead_seconds: float
    query_seconds: float

    @classmethod
    def from_decision(cls, decision: Decision) -> "AuditRecord":
        metrics = decision.metrics
        return cls(
            timestamp=decision.timestamp,
            uid=decision.uid,
            sql=decision.sql,
            allowed=decision.allowed,
            policies_fired=tuple(
                violation.policy_name for violation in decision.violations
            ),
            messages=tuple(
                violation.message for violation in decision.violations
            ),
            overhead_seconds=(
                metrics.overhead_seconds if metrics is not None else 0.0
            ),
            query_seconds=(
                metrics.query_seconds if metrics is not None else 0.0
            ),
        )


class AuditTrail:
    """An append-only list of :class:`AuditRecord` with reporting helpers."""

    def __init__(self, capacity: Optional[int] = None):
        """``capacity`` bounds memory: oldest records are dropped beyond it."""
        self._records: list[AuditRecord] = []
        self._capacity = capacity

    def record(self, decision: Decision) -> AuditRecord:
        entry = AuditRecord.from_decision(decision)
        self._records.append(entry)
        if self._capacity is not None and len(self._records) > self._capacity:
            del self._records[: len(self._records) - self._capacity]
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self._records)

    # -- queries ------------------------------------------------------------

    def rejections(self) -> list[AuditRecord]:
        return [r for r in self._records if not r.allowed]

    def for_user(self, uid: int) -> list[AuditRecord]:
        return [r for r in self._records if r.uid == uid]

    def since(self, timestamp: int) -> list[AuditRecord]:
        return [r for r in self._records if r.timestamp >= timestamp]

    def where(
        self, predicate: Callable[[AuditRecord], bool]
    ) -> list[AuditRecord]:
        return [r for r in self._records if predicate(r)]

    def rejection_counts_by_policy(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.rejections():
            for name in record.policies_fired:
                counts[name] = counts.get(name, 0) + 1
        return counts

    def rejection_counts_by_user(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for record in self.rejections():
            counts[record.uid] = counts.get(record.uid, 0) + 1
        return counts

    def summary(self) -> dict:
        total = len(self._records)
        rejected = len(self.rejections())
        return {
            "queries": total,
            "allowed": total - rejected,
            "rejected": rejected,
            "rejection_rate": (rejected / total) if total else 0.0,
            "by_policy": self.rejection_counts_by_policy(),
            "by_user": self.rejection_counts_by_user(),
        }

    # -- export -------------------------------------------------------------

    def to_csv(self, path: Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [
                    "timestamp",
                    "uid",
                    "allowed",
                    "policies_fired",
                    "messages",
                    "query_seconds",
                    "overhead_seconds",
                    "sql",
                ]
            )
            for r in self._records:
                writer.writerow(
                    [
                        r.timestamp,
                        r.uid,
                        int(r.allowed),
                        ";".join(r.policies_fired),
                        ";".join(r.messages),
                        f"{r.query_seconds:.6f}",
                        f"{r.overhead_seconds:.6f}",
                        r.sql,
                    ]
                )

    def to_jsonl(self, path: Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            for r in self._records:
                handle.write(
                    json.dumps(
                        {
                            "timestamp": r.timestamp,
                            "uid": r.uid,
                            "sql": r.sql,
                            "allowed": r.allowed,
                            "policies_fired": list(r.policies_fired),
                            "messages": list(r.messages),
                            "query_seconds": r.query_seconds,
                            "overhead_seconds": r.overhead_seconds,
                        }
                    )
                    + "\n"
                )


def attach_audit_trail(
    enforcer, capacity: Optional[int] = None
) -> AuditTrail:
    """Wrap an enforcer's ``submit`` so every decision is recorded.

    Returns the trail; the enforcer keeps working as before.
    """
    trail = AuditTrail(capacity=capacity)
    original_submit = enforcer.submit

    def audited_submit(*args, **kwargs) -> Decision:
        decision = original_submit(*args, **kwargs)
        trail.record(decision)
        return decision

    enforcer.submit = audited_submit
    enforcer.audit_trail = trail
    return trail
