"""Violation explanations (§6: "help users debug queries that are deemed
non-compliant" — listed as future work in the paper; implemented here).

When a query is rejected, :func:`explain_violation` re-evaluates the firing
policy with lineage tracking and translates the result into evidence a
user can act on: for every violation row, the usage-log and database
tuples that made the policy fire, rendered with their column names. Log
tuples from the rejected query's own (reverted) increment are marked so
the user can tell "your query did this" apart from "history did this".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engine import Database, Engine
from ..sql import print_query
from .enforcer import Enforcer, RuntimePolicy
from .policy import Decision, Violation


@dataclass
class EvidenceTuple:
    """One base tuple that contributed to a violation."""

    relation: str
    tid: int
    values: dict
    #: True when the tuple belongs to the rejected query's own increment.
    from_current_query: bool = False

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        marker = "  <- this query" if self.from_current_query else ""
        return f"{self.relation}[{self.tid}]({rendered}){marker}"


@dataclass
class ViolationExplanation:
    """Everything known about why one policy fired."""

    policy_name: str
    message: str
    policy_sql: str
    evidence: list[EvidenceTuple] = field(default_factory=list)

    def evidence_by_relation(self) -> dict[str, list[EvidenceTuple]]:
        grouped: dict[str, list[EvidenceTuple]] = {}
        for item in self.evidence:
            grouped.setdefault(item.relation, []).append(item)
        return grouped

    def render(self) -> str:
        lines = [
            f"policy {self.policy_name!r} fired: {self.message}",
            f"  policy SQL: {self.policy_sql}",
            "  evidence:",
        ]
        for relation, tuples in sorted(self.evidence_by_relation().items()):
            lines.append(f"    {relation} ({len(tuples)} tuple(s)):")
            for item in tuples[:20]:
                lines.append(f"      {item}")
            if len(tuples) > 20:
                lines.append(f"      ... and {len(tuples) - 20} more")
        return "\n".join(lines)


def _explain_one(
    engine: Engine,
    database: Database,
    runtime: RuntimePolicy,
    violation: Violation,
    current_tids: dict[str, set[int]],
) -> ViolationExplanation:
    result = engine.execute(runtime.select, lineage=True)
    explanation = ViolationExplanation(
        policy_name=violation.policy_name,
        message=violation.message,
        policy_sql=print_query(runtime.select),
    )
    seen: set = set()
    assert result.lineages is not None
    for lineage in result.lineages:
        for relation, tid in sorted(lineage):
            if relation == "clock" or (relation, tid) in seen:
                continue
            seen.add((relation, tid))
            table = database.table(relation)
            try:
                row = table.row_for_tid(tid)
            except Exception:  # tuple gone (e.g. clock refresh) — skip
                continue
            explanation.evidence.append(
                EvidenceTuple(
                    relation=relation,
                    tid=tid,
                    values=dict(zip(table.schema.column_names, row)),
                    from_current_query=tid in current_tids.get(relation, set()),
                )
            )
    return explanation


def explain_decision(
    enforcer: Enforcer, decision: Decision
) -> list[ViolationExplanation]:
    """Explain every violation of a rejected decision.

    Must be called right after the rejection, before further queries: the
    explanation *replays* the decision by re-staging the rejected query's
    log increment (which the enforcer reverted), evaluating the firing
    policies with lineage, and reverting again.
    """
    if decision.allowed or not decision.violations:
        return []
    if not decision.sql:
        raise ValueError("decision does not carry the rejected query's SQL")

    # Re-create the rejected query's view of the log: re-run the log
    # functions at the decision's timestamp and stage their increments.
    from ..log import QueryContext

    context = QueryContext.create(
        decision.sql, decision.uid, decision.timestamp, enforcer.engine
    )
    enforcer.store.set_time(decision.timestamp)
    current_tids: dict[str, set[int]] = {}
    for function in enforcer.registry.ordered():
        rows = function.generate(context)
        enforcer.store.stage(function.name, rows, decision.timestamp)
        current_tids[function.name] = set(
            enforcer.store.staged_tids(function.name)
        )

    try:
        explanations = []
        for runtime in enforcer.runtime_policies():
            if enforcer.engine.is_empty(runtime.select):
                continue
            matching = [
                v
                for v in decision.violations
                if v.policy_name
                in (runtime.name, "policy-set", *runtime.member_names)
            ]
            violation = matching[0] if matching else Violation(
                runtime.name, runtime.message
            )
            explanations.append(
                _explain_one(
                    enforcer.engine,
                    enforcer.database,
                    runtime,
                    violation,
                    current_tids,
                )
            )
        return explanations
    finally:
        # record=False: this staging is diagnostic, not a query lifecycle —
        # it must not append a reject record to an attached WAL.
        enforcer.store.discard_staged(record=False)
        # restore the live clock row
        enforcer.store.set_time(enforcer.clock.now())
