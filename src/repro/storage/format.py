"""On-disk format helpers: JSON-lines table serialization.

A table is stored as one ``.jsonl`` file: a header object followed by one
array per row. JSON covers exactly the engine's value domain (int, float,
str, bool, NULL), keeps files diffable, and needs no dependencies.

Header fields:

- ``table``: table name
- ``columns``: column names in order
- ``tids``: parallel list of tuple ids (present for log tables, where tid
  stability matters across restarts; omitted for plain data tables)
- ``next_tid``: the tid counter to resume from
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from ..engine import Table
from ..engine.schema import make_schema
from ..errors import ReproError


class StorageError(ReproError):
    """Raised for malformed or inconsistent snapshot files."""


def write_table(table: Table, path: Path, keep_tids: bool = False) -> None:
    """Serialize one table to a ``.jsonl`` file."""
    header: dict = {
        "table": table.name,
        "columns": list(table.schema.column_names),
    }
    if keep_tids:
        header["tids"] = list(table.tids())
        header["next_tid"] = table._next_tid  # noqa: SLF001 - same package
    path.parent.mkdir(parents=True, exist_ok=True)
    # Stream tuples straight off the decoded columns instead of rows():
    # serializing should not build (and pin) the table's row cache.
    columns = table.columns_decoded()
    tuples = zip(*columns) if columns else iter([()] * len(table))
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for row in tuples:
            handle.write(json.dumps(list(row)) + "\n")


def read_table(path: Path) -> Table:
    """Deserialize a table written by :func:`write_table`."""
    with path.open("r", encoding="utf-8") as handle:
        try:
            header = json.loads(handle.readline())
        except json.JSONDecodeError as error:
            raise StorageError(f"{path}: bad header: {error}") from None
        for field in ("table", "columns"):
            if field not in header:
                raise StorageError(f"{path}: header missing {field!r}")
        rows = []
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                values = json.loads(line)
            except json.JSONDecodeError as error:
                raise StorageError(
                    f"{path}:{line_number}: bad row: {error}"
                ) from None
            if not isinstance(values, list) or len(values) != len(
                header["columns"]
            ):
                raise StorageError(
                    f"{path}:{line_number}: row arity mismatch"
                )
            rows.append(tuple(values))

    table = Table(make_schema(header["table"], list(header["columns"])))
    tids: Optional[list[int]] = header.get("tids")
    if tids is not None:
        if len(tids) != len(rows):
            raise StorageError(f"{path}: tids/rows length mismatch")
        table.replace_contents(
            rows,
            tids,
            int(header.get("next_tid", (max(tids) + 1) if tids else 0)),
        )
    else:
        table.insert_many(rows)
    return table
