"""Persistence: snapshots, write-ahead logging, and crash recovery."""

from .faults import FaultPlan, FaultyFile, InjectedCrash, tear
from .format import StorageError, read_table, write_table
from .snapshot import (
    load_database,
    restore_enforcer,
    save_database,
    save_enforcer_state,
)
from .wal import (
    RecoveryReport,
    WalError,
    WriteAheadLog,
    checkpoint,
    has_state,
    initialize_durability,
    read_wal,
    recover_enforcer,
)

__all__ = [
    "StorageError",
    "read_table",
    "write_table",
    "save_database",
    "load_database",
    "save_enforcer_state",
    "restore_enforcer",
    "FaultPlan",
    "FaultyFile",
    "InjectedCrash",
    "tear",
    "WalError",
    "WriteAheadLog",
    "RecoveryReport",
    "checkpoint",
    "has_state",
    "initialize_durability",
    "read_wal",
    "recover_enforcer",
]
