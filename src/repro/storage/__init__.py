"""Persistence: JSON-lines snapshots of databases and enforcer state."""

from .format import StorageError, read_table, write_table
from .snapshot import (
    load_database,
    restore_enforcer,
    save_database,
    save_enforcer_state,
)

__all__ = [
    "StorageError",
    "read_table",
    "write_table",
    "save_database",
    "load_database",
    "save_enforcer_state",
    "restore_enforcer",
]
