"""Fault injection for the durability layer.

Durability claims are only as good as the crashes they survive, so the
tests drive the WAL and checkpoint machinery through simulated failures
instead of trusting the happy path:

- :class:`FaultPlan` — a declarative failure schedule shared by one
  "process lifetime": kill writes after N bytes (producing a genuinely
  torn record on "disk"), silently drop fsyncs, and crash at named
  protocol points inside the checkpoint swap;
- :class:`FaultyFile` — the file wrapper that enforces the plan on the
  WAL's appends;
- :func:`tear` — truncate a file at an arbitrary byte offset, modelling
  the tail loss an un-fsynced crash leaves behind.

A triggered fault raises :class:`InjectedCrash`, which deliberately does
*not* derive from :class:`~repro.errors.ReproError`: production error
handling must never swallow a simulated power cut.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Optional


class InjectedCrash(RuntimeError):
    """Simulated process death at an inconvenient moment."""


class FaultPlan:
    """One simulated process lifetime's failure schedule.

    The plan is stateful: once any fault fires, the "process" is dead and
    every subsequent write or protocol step raises immediately — exactly
    like code running after a real crash wouldn't.
    """

    def __init__(
        self,
        fail_write_after_bytes: Optional[int] = None,
        drop_fsync: bool = False,
        crash_at: Iterable[str] = (),
    ):
        #: Total write budget across all files; the write that exceeds it
        #: lands only partially (a torn record) and then crashes.
        self.fail_write_after_bytes = fail_write_after_bytes
        #: fsync becomes a silent no-op: data sits in the OS cache and a
        #: later :func:`tear` models the kernel dropping it.
        self.drop_fsync = drop_fsync
        #: Named protocol points (see ``repro.storage.wal.checkpoint``)
        #: at which :meth:`check` raises.
        self.crash_at = set(crash_at)
        self.crashed = False
        self.bytes_written = 0

    def admit_write(self, nbytes: int) -> int:
        """How many of ``nbytes`` may reach the file before the crash."""
        if self.crashed:
            raise InjectedCrash("process already crashed")
        if self.fail_write_after_bytes is None:
            self.bytes_written += nbytes
            return nbytes
        remaining = max(0, self.fail_write_after_bytes - self.bytes_written)
        allowed = min(nbytes, remaining)
        self.bytes_written += allowed
        if allowed < nbytes:
            self.crashed = True
        return allowed

    def check(self, point: str) -> None:
        """Crash if ``point`` is scheduled (or the process already died)."""
        if self.crashed:
            raise InjectedCrash("process already crashed")
        if point in self.crash_at:
            self.crashed = True
            raise InjectedCrash(f"injected crash at {point}")


class FaultyFile:
    """A binary file wrapper that applies a :class:`FaultPlan` to writes.

    Exposes exactly the surface the WAL needs (``write``/``flush``/
    ``fileno``/``close``); a killed write flushes the admitted prefix so
    the torn bytes are observable on disk, then raises.
    """

    def __init__(self, raw, plan: FaultPlan):
        self.raw = raw
        self.plan = plan

    def write(self, data: bytes) -> int:
        allowed = self.plan.admit_write(len(data))
        if allowed:
            self.raw.write(data[:allowed])
        if allowed < len(data):
            self.raw.flush()
            raise InjectedCrash(
                f"write killed after {self.plan.bytes_written} bytes"
            )
        return allowed

    def flush(self) -> None:
        self.raw.flush()

    def fileno(self) -> int:
        return self.raw.fileno()

    def close(self) -> None:
        self.raw.close()


def tear(path, keep_bytes: int) -> int:
    """Truncate ``path`` to at most ``keep_bytes`` (a torn tail).

    Returns the file's new size. Models what an un-fsynced crash leaves
    behind: an arbitrary prefix of the bytes the process believed written.
    """
    path = Path(path)
    size = path.stat().st_size
    keep = max(0, min(keep_bytes, size))
    with path.open("r+b") as handle:
        handle.truncate(keep)
        handle.flush()
        os.fsync(handle.fileno())
    return keep
