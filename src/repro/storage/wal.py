"""Write-ahead logging, checkpointing, and crash recovery.

The usage log is the enforcement semantics' memory (§5.2): every
volume/recency policy is only as strong as the record of what was already
admitted. This module makes that record durable:

- :class:`WriteAheadLog` — an append-only JSONL file of crc32-framed
  records. :meth:`~repro.log.store.LogStore.commit` appends one ``commit``
  record per admitted query (the inserted increment, the tids the mark/
  delete compaction phases removed, the per-relation tid counters) and
  :meth:`~repro.log.store.LogStore.discard_staged` appends one ``reject``
  record per refused query (clock and tid-counter advance only). The
  fsync'ed append *is* the commit point: a record torn mid-write is
  detected by its checksum and the whole query simply never happened.
- :func:`checkpoint` — persists the full enforcer state (via
  :mod:`repro.storage.snapshot`) under a crash-safe rename protocol and
  truncates the WAL. Records carry monotone sequence numbers and the
  checkpoint stores the last one it covers, so replay is idempotent no
  matter where in the protocol a crash lands.
- :func:`recover_enforcer` — repairs a half-finished checkpoint swap,
  restores the latest checkpoint, replays the WAL suffix on top, and
  truncates any torn tail. The recovered enforcer's subsequent decisions
  are bit-identical to an enforcer that never crashed (the fault-injection
  suite proves this for mid-commit, mid-checkpoint, and torn-tail
  crashes).

Directory layout (one per enforcer / service shard)::

    <dir>/wal.jsonl        append-only record log
    <dir>/checkpoint/      latest complete snapshot (manifest.json last)
    <dir>/checkpoint.tmp/  snapshot being written (incomplete ↔ no manifest)
    <dir>/checkpoint.old/  previous snapshot, mid-swap only
"""

from __future__ import annotations

import json
import os
import shutil
import zlib
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

from ..core import Enforcer
from ..log import Clock, LogRegistry
from .faults import FaultPlan, FaultyFile, tear
from .format import StorageError
from .snapshot import MANIFEST, restore_enforcer, save_enforcer_state

WAL_NAME = "wal.jsonl"
CHECKPOINT_DIR = "checkpoint"
CHECKPOINT_TMP = "checkpoint.tmp"
CHECKPOINT_OLD = "checkpoint.old"
WAL_FORMAT_VERSION = 1


class WalError(StorageError):
    """Raised for structurally invalid write-ahead logs."""


# ---------------------------------------------------------------------------
# Record framing
# ---------------------------------------------------------------------------


def _encode(record: dict) -> bytes:
    """One record line: ``<crc32 hex> <compact json>\\n``."""
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True)
    data = payload.encode("utf-8")
    return b"%08x " % zlib.crc32(data) + data + b"\n"


def _decode(chunk: bytes) -> Optional[dict]:
    """Parse one framed line; ``None`` for anything torn or corrupt."""
    if len(chunk) < 10 or chunk[8:9] != b" ":
        return None
    try:
        expected = int(chunk[:8], 16)
    except ValueError:
        return None
    payload = chunk[9:]
    if zlib.crc32(payload) != expected:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    return record if isinstance(record, dict) else None


#: Public framing aliases: the process-shard IPC layer
#: (:mod:`repro.service.ipc`) frames its request/response messages with
#: the same ``<crc32 hex> <compact json>`` discipline the WAL uses, so a
#: corrupted pipe read is detected exactly like a torn WAL record.
encode_record = _encode
decode_record = _decode


@dataclass
class WalScan:
    """The readable prefix of one WAL file."""

    records: list
    valid_bytes: int
    total_bytes: int
    torn: bool


def read_wal(path) -> WalScan:
    """Read every intact record; stop (without raising) at a torn tail.

    A record is accepted even without its trailing newline as long as the
    checksum holds — a crash exactly between the payload and the ``\\n``
    must not discard an acknowledged commit.
    """
    data = Path(path).read_bytes()
    records: list = []
    pos = 0
    torn = False
    while pos < len(data):
        newline = data.find(b"\n", pos)
        end = len(data) if newline == -1 else newline
        record = _decode(data[pos:end])
        if record is None:
            torn = True
            break
        records.append(record)
        pos = len(data) if newline == -1 else newline + 1
    if records and records[0].get("type") != "header":
        raise WalError(f"{path}: missing WAL header record")
    if records and records[0].get("version") != WAL_FORMAT_VERSION:
        raise WalError(
            f"{path}: unsupported WAL version {records[0].get('version')!r}"
        )
    return WalScan(
        records=records, valid_bytes=pos, total_bytes=len(data), torn=torn
    )


# ---------------------------------------------------------------------------
# The append side
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """Append-only, fsync-able record log with monotone sequence numbers.

    ``sync=False`` trades durability of the newest records for speed (an
    OS crash may lose the un-fsynced tail; recovery still gets a
    consistent prefix). ``fault_plan`` threads a
    :class:`~repro.storage.faults.FaultPlan` under every write so tests
    can kill the "process" mid-record.
    """

    def __init__(
        self,
        path,
        sync: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        start_seq: int = 0,
    ):
        self.path = Path(path)
        self.sync = sync
        self.fault_plan = fault_plan
        self._seq = start_seq
        self._file = None
        #: Open group-commit window (see :meth:`batch`); frames appended
        #: while it is a list are buffered instead of written.
        self._batch: Optional[list] = None
        #: Lifetime I/O tallies (exported at ``GET /metrics``); they
        #: survive :meth:`reset` — counters, not segment state.
        self.appends = 0
        self.fsyncs = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._open()

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._seq

    def _open(self) -> None:
        raw = self.path.open("ab")
        self._file = (
            FaultyFile(raw, self.fault_plan) if self.fault_plan else raw
        )
        if self.path.stat().st_size == 0:
            self._write_line(
                _encode({"type": "header", "version": WAL_FORMAT_VERSION})
            )

    def append(self, record: dict) -> int:
        """Durably append one record; returns its sequence number.

        The sequence number counts queries (one record per checked query),
        so a checkpoint's ``wal_last_seq`` and a recovery report's
        ``last_seq`` both read as "queries processed so far".
        """
        self._seq += 1
        stamped = dict(record)
        stamped["seq"] = self._seq
        self._write_line(_encode(stamped))
        self.appends += 1
        return self._seq

    @contextmanager
    def batch(self):
        """Group commit: buffer every append inside the block and write
        them all with one flush — and at most one fsync — on exit.

        Record framing and sequence numbering are unchanged (``appends``
        still counts records; ``fsyncs`` counts real fsyncs), so a WAL
        written under batching is byte-identical to one written without.
        The buffered frames are flushed even when the block raises:
        their sequence numbers are already handed out, and dropping them
        would leave a gap recovery must refuse. Nested windows are
        no-ops — the outermost one owns the flush. :meth:`reset` and
        :func:`checkpoint` must not run inside an open window.
        """
        if self._batch is not None:
            yield self
            return
        self._batch = []
        try:
            yield self
        finally:
            buffered, self._batch = self._batch, None
            if buffered:
                self._file.write(b"".join(buffered))
                self._file.flush()
                if self.sync:
                    self._fsync()

    def _write_line(self, data: bytes) -> None:
        if self._batch is not None:
            self._batch.append(data)
            return
        self._file.write(data)
        self._file.flush()
        if self.sync:
            self._fsync()

    def _fsync(self) -> None:
        if self.fault_plan is not None and self.fault_plan.drop_fsync:
            return
        os.fsync(self._file.fileno())
        self.fsyncs += 1

    def reset(self) -> None:
        """Start a fresh (empty) segment after a checkpoint.

        Sequence numbers continue — they are never reused — so records
        from a segment that survived a crash-before-reset are recognized
        as already covered by the checkpoint and skipped on replay. The
        swap is a write-to-temp + atomic rename, crash-safe at any point.
        """
        if self._batch is not None:
            raise WalError("cannot reset the WAL inside a batch window")
        self.close()
        tmp = self.path.with_name(self.path.name + ".reset")
        raw = tmp.open("wb")
        handle = (
            FaultyFile(raw, self.fault_plan) if self.fault_plan else raw
        )
        try:
            handle.write(
                _encode({"type": "header", "version": WAL_FORMAT_VERSION})
            )
            handle.flush()
            if self.sync and not (
                self.fault_plan is not None and self.fault_plan.drop_fsync
            ):
                os.fsync(handle.fileno())
        finally:
            handle.close()
        os.replace(tmp, self.path)
        _fsync_dir(self.path.parent)
        self._open()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


# ---------------------------------------------------------------------------
# Checkpointing
# ---------------------------------------------------------------------------


def checkpoint(
    enforcer: Enforcer,
    directory,
    wal: WriteAheadLog,
    fault_plan: Optional[FaultPlan] = None,
    sync: bool = True,
) -> None:
    """Persist the enforcer's full state and truncate the WAL.

    Protocol (each step leaves a recoverable layout; ``fault_plan`` may
    crash at the named points and the fault-injection suite covers all of
    them):

    1. write the snapshot to ``checkpoint.tmp/`` — the manifest is
       written last, so a manifest-less directory is recognizably
       incomplete                       [crash point ``checkpoint:after-save``]
    2. rename ``checkpoint/`` → ``checkpoint.old/``     [``checkpoint:mid-swap``]
    3. rename ``checkpoint.tmp/`` → ``checkpoint/``  [``checkpoint:before-clean``]
    4. remove ``checkpoint.old/``                   [``checkpoint:before-reset``]
    5. reset the WAL (safe even if skipped by a crash: the checkpoint
       records the last sequence number it covers, and replay skips
       records at or below it)

    Must be called between queries (nothing staged).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    tmp = directory / CHECKPOINT_TMP
    current = directory / CHECKPOINT_DIR
    old = directory / CHECKPOINT_OLD

    if tmp.exists():
        shutil.rmtree(tmp)
    save_enforcer_state(
        enforcer, tmp, extra={"wal_last_seq": wal.last_seq}
    )
    if sync:
        _fsync_tree(tmp)
    if fault_plan is not None:
        fault_plan.check("checkpoint:after-save")

    if old.exists():
        shutil.rmtree(old)
    if current.exists():
        current.rename(old)
        if fault_plan is not None:
            fault_plan.check("checkpoint:mid-swap")
    tmp.rename(current)
    _fsync_dir(directory)
    if fault_plan is not None:
        fault_plan.check("checkpoint:before-clean")
    if old.exists():
        shutil.rmtree(old)
    if fault_plan is not None:
        fault_plan.check("checkpoint:before-reset")
    wal.reset()


def _repair_checkpoints(directory: Path) -> None:
    """Finish or roll back a checkpoint swap a crash interrupted."""
    tmp = directory / CHECKPOINT_TMP
    current = directory / CHECKPOINT_DIR
    old = directory / CHECKPOINT_OLD

    def complete(path: Path) -> bool:
        return (path / MANIFEST).exists()

    if complete(current):
        # Normal case; any leftovers are strictly older or incomplete.
        if old.exists():
            shutil.rmtree(old)
        if tmp.exists():
            shutil.rmtree(tmp)
        return
    if current.exists():  # pragma: no cover - renames are atomic
        shutil.rmtree(current)
    if old.exists():
        if complete(tmp):
            # Crashed mid-swap: the new snapshot is complete — promote it.
            tmp.rename(current)
            shutil.rmtree(old)
        else:
            if tmp.exists():
                shutil.rmtree(tmp)
            old.rename(current)
        return
    if complete(tmp):
        # Crashed between save and swap with no prior checkpoint.
        tmp.rename(current)
    elif tmp.exists():
        shutil.rmtree(tmp)


# ---------------------------------------------------------------------------
# Lifecycle: initialize / recover
# ---------------------------------------------------------------------------


def has_state(directory) -> bool:
    """Whether ``directory`` holds durable enforcement state."""
    directory = Path(directory)
    return (
        (directory / CHECKPOINT_DIR / MANIFEST).exists()
        or (directory / CHECKPOINT_OLD / MANIFEST).exists()
        or (directory / CHECKPOINT_TMP / MANIFEST).exists()
        or (directory / WAL_NAME).exists()
    )


def initialize_durability(
    enforcer: Enforcer,
    directory,
    sync: bool = True,
    fault_plan: Optional[FaultPlan] = None,
) -> WriteAheadLog:
    """Attach a fresh WAL to ``enforcer`` and write its genesis checkpoint.

    The genesis checkpoint makes recovery unconditional: any later crash
    has a complete snapshot to replay on top of.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    wal = WriteAheadLog(
        directory / WAL_NAME, sync=sync, fault_plan=fault_plan, start_seq=0
    )
    enforcer.store.attach_wal(wal)
    checkpoint(enforcer, directory, wal, sync=sync)
    return wal


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    directory: str
    #: Queries covered by the checkpoint (its ``wal_last_seq``).
    checkpoint_seq: int
    #: Queries durable in total after replay (checkpoint + WAL suffix).
    last_seq: int
    replayed: int
    commits: int
    rejects: int
    #: Records at or below the checkpoint's sequence (crash before the
    #: post-checkpoint WAL reset); skipped to keep replay idempotent.
    skipped: int
    torn_tail: bool
    truncated_bytes: int

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        tail = (
            f"; torn tail truncated ({self.truncated_bytes} bytes)"
            if self.torn_tail
            else ""
        )
        return (
            f"checkpoint at seq {self.checkpoint_seq}, replayed "
            f"{self.replayed} record(s) ({self.commits} commit, "
            f"{self.rejects} reject) to seq {self.last_seq}{tail}"
        )


def recover_enforcer(
    directory,
    registry: Optional[LogRegistry] = None,
    clock: Optional[Clock] = None,
    sync: bool = True,
    fault_plan: Optional[FaultPlan] = None,
) -> "tuple[Enforcer, WriteAheadLog, RecoveryReport]":
    """Rebuild an enforcer from its durability directory.

    Repairs any interrupted checkpoint swap, restores the latest complete
    checkpoint, replays the WAL records it does not cover, truncates a
    torn tail, and re-attaches the WAL so the enforcer continues journaling
    where the crashed instance stopped. Pass the same ``registry``/``clock``
    kinds the original deployment used (see
    :func:`~repro.storage.snapshot.restore_enforcer`).
    """
    directory = Path(directory)
    _repair_checkpoints(directory)
    checkpoint_dir = directory / CHECKPOINT_DIR
    manifest_path = checkpoint_dir / MANIFEST
    if not manifest_path.exists():
        raise StorageError(f"{directory}: no durable enforcer state")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))

    enforcer = restore_enforcer(checkpoint_dir, registry=registry, clock=clock)
    enforcer.clock.seek(int(manifest["clock_now"]))
    base_seq = int(manifest.get("wal_last_seq", 0))

    wal_file = directory / WAL_NAME
    applied = commits = rejects = skipped = 0
    last_seq = base_seq
    torn = False
    truncated = 0
    if wal_file.exists():
        scan = read_wal(wal_file)
        for record in scan.records:
            kind = record.get("type")
            if kind == "header":
                continue
            seq = int(record["seq"])
            if seq <= base_seq:
                skipped += 1
                continue
            if seq != last_seq + 1:
                raise WalError(
                    f"{wal_file}: sequence gap ({last_seq} -> {seq})"
                )
            _apply_record(enforcer, record)
            last_seq = seq
            applied += 1
            if kind == "commit":
                commits += 1
            else:
                rejects += 1
        torn = scan.torn
        if torn:
            truncated = scan.total_bytes - scan.valid_bytes
            tear(wal_file, scan.valid_bytes)

    wal = WriteAheadLog(
        wal_file, sync=sync, fault_plan=fault_plan, start_seq=last_seq
    )
    enforcer.store.attach_wal(wal)
    report = RecoveryReport(
        directory=str(directory),
        checkpoint_seq=base_seq,
        last_seq=last_seq,
        replayed=applied,
        commits=commits,
        rejects=rejects,
        skipped=skipped,
        torn_tail=torn,
        truncated_bytes=truncated,
    )
    return enforcer, wal, report


def _apply_record(enforcer: Enforcer, record: dict) -> None:
    """Re-apply one WAL record to a restored enforcer."""
    store = enforcer.store
    kind = record.get("type")
    if kind not in ("commit", "reject"):
        raise WalError(f"unknown WAL record type {kind!r}")
    if kind == "commit":
        for name, tids in record.get("delete", {}).items():
            doomed = {int(tid) for tid in tids}
            enforcer.database.table(name).delete_tids(doomed)
            store._disk[name] = [  # noqa: SLF001 - recovery owns the store
                entry for entry in store._disk[name]  # noqa: SLF001
                if entry[0] not in doomed
            ]
        inserted: dict[str, list[tuple]] = {}
        for name, payload in record.get("insert", {}).items():
            rows = [tuple(row) for row in payload["rows"]]
            tids = [int(tid) for tid in payload["tids"]]
            enforcer.database.table(name).insert_with_tids(rows, tids)
            store._disk[name].extend(zip(tids, rows))  # noqa: SLF001
            inserted[name] = rows
        # A restored maintainer replays folds from the same rows the live
        # commit folded; without one, the lazy bootstrap rebuilds from the
        # fully replayed disk image instead.
        maintainer = enforcer.incremental
        if maintainer is not None and inserted:
            maintainer.on_commit(int(record["ts"]), inserted)
        if record.get("compacted"):
            enforcer._queries_since_compaction = 0  # noqa: SLF001
        elif enforcer.options.log_compaction:
            enforcer._queries_since_compaction += 1  # noqa: SLF001
    for name, value in record.get("next_tid", {}).items():
        enforcer.database.table(name).advance_tid(int(value))
    timestamp = int(record["ts"])
    enforcer.clock.seek(timestamp)
    store.set_time(timestamp)


# ---------------------------------------------------------------------------
# fsync helpers
# ---------------------------------------------------------------------------


def _fsync_tree(directory: Path) -> None:
    """Best-effort fsync of every file under ``directory``, then itself."""
    for path in sorted(directory.rglob("*")):
        if path.is_file():
            fd = os.open(path, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
    _fsync_dir(directory)


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)
