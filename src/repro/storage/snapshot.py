"""Snapshots: persist and restore databases and enforcer state.

Two levels:

- :func:`save_database` / :func:`load_database` — all tables of a catalog
  as one directory of ``.jsonl`` files plus a manifest;
- :func:`save_enforcer_state` / :func:`restore_enforcer` — everything an
  enforcement deployment needs to survive a restart: the data tables, the
  usage-log tables *with their tuple ids* (compaction marks reference
  tids), the persisted-disk image of the log store, the clock, and the
  policy texts. Restoring rebuilds an :class:`~repro.core.Enforcer` whose
  subsequent decisions are exactly those the original would have made.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from ..core import Enforcer, EnforcerOptions, Policy
from ..engine import Database
from ..log import Clock, LogRegistry, SimulatedClock, standard_registry
from ..log.store import CLOCK_TABLE
from .format import StorageError, read_table, write_table

MANIFEST = "manifest.json"
FORMAT_VERSION = 1
#: Incremental-maintainer state rides alongside the snapshot. Optional on
#: restore: a missing/stale file just means the maintainer rebuilds from
#: the restored disk image (its own format/signature markers are checked
#: by :meth:`repro.incremental.IncrementalMaintainer.restore`).
INCREMENTAL_STATE = "incremental.json"


def save_database(database: Database, directory: Path) -> None:
    """Write every table of ``database`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = database.table_names()
    for name in names:
        write_table(database.table(name), directory / f"{name}.jsonl")
    manifest = {"version": FORMAT_VERSION, "tables": names}
    (directory / MANIFEST).write_text(json.dumps(manifest, indent=2))


def load_database(directory: Path) -> Database:
    """Rebuild a database saved with :func:`save_database`."""
    directory = Path(directory)
    manifest = _read_manifest(directory)
    database = Database()
    for name in manifest["tables"]:
        database.attach(read_table(directory / f"{name}.jsonl"))
    return database


def _read_manifest(directory: Path) -> dict:
    path = directory / MANIFEST
    if not path.exists():
        raise StorageError(f"{directory}: no {MANIFEST}")
    manifest = json.loads(path.read_text(encoding="utf-8"))
    if manifest.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"{directory}: unsupported snapshot version "
            f"{manifest.get('version')!r}"
        )
    return manifest


# ---------------------------------------------------------------------------
# Whole-enforcer state
# ---------------------------------------------------------------------------


def save_enforcer_state(
    enforcer: Enforcer, directory: Path, extra: Optional[dict] = None
) -> None:
    """Persist an enforcer's full state.

    Must be called between queries (nothing staged). Unified-constants
    tables are rebuilt by the offline phase on restore, so they are not
    stored. ``extra`` entries are merged into the manifest (the WAL
    checkpoint records its covered sequence number this way).
    """
    if enforcer.store.staged_relations():
        raise StorageError("cannot snapshot with staged log increments")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    log_names = set(enforcer.registry.names())
    skip = log_names | {CLOCK_TABLE} | {
        name for name in enforcer.database.table_names()
        if name.startswith("__consts_")
    }
    data_tables = [
        name for name in enforcer.database.table_names() if name not in skip
    ]
    for name in data_tables:
        write_table(enforcer.database.table(name), directory / f"{name}.jsonl")
    for name in sorted(log_names):
        write_table(
            enforcer.database.table(name),
            directory / f"__log_{name}.jsonl",
            keep_tids=True,
        )

    maintainer = enforcer.incremental
    if maintainer is not None and maintainer.warm:
        (directory / INCREMENTAL_STATE).write_text(
            json.dumps(maintainer.to_json(), indent=2)
        )

    manifest = {
        "version": FORMAT_VERSION,
        "tables": data_tables,
        "log_relations": sorted(log_names),
        "clock_now": enforcer.clock.now(),
        "policies": [
            {
                "name": policy.name,
                "sql": policy.sql,
                "description": policy.description,
            }
            for policy in enforcer.policies
        ],
        "options": _options_to_dict(enforcer.options),
        "queries_since_compaction": enforcer._queries_since_compaction,  # noqa: SLF001
        # The disk image: tid → persisted, per relation.
        "disk_tids": {
            name: [tid for tid, _ in enforcer.store._disk[name]]  # noqa: SLF001
            for name in enforcer.store._disk  # noqa: SLF001
        },
    }
    if extra:
        manifest.update(extra)
    (directory / MANIFEST).write_text(json.dumps(manifest, indent=2))


def restore_enforcer(
    directory: Path,
    registry: Optional[LogRegistry] = None,
    clock: Optional[Clock] = None,
) -> Enforcer:
    """Rebuild an enforcer from :func:`save_enforcer_state` output.

    A custom ``registry`` must be passed when the snapshot used custom log
    functions (functions are code; only their data is stored). The clock
    defaults to a :class:`SimulatedClock` resuming at the stored time.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    registry = registry or standard_registry()
    stored_logs = set(manifest.get("log_relations", []))
    if stored_logs - set(registry.names()):
        missing = sorted(stored_logs - set(registry.names()))
        raise StorageError(
            f"snapshot uses log relations {missing} not in the registry; "
            "pass the matching LogRegistry"
        )

    database = Database()
    for name in manifest["tables"]:
        database.attach(read_table(directory / f"{name}.jsonl"))

    policies = [
        Policy.from_sql(p["name"], p["sql"], p.get("description", ""))
        for p in manifest["policies"]
    ]
    options = EnforcerOptions(**manifest["options"])
    clock = clock or SimulatedClock(start_ms=int(manifest["clock_now"]))

    enforcer = Enforcer(
        database, policies, registry=registry, clock=clock, options=options
    )

    # Replace the freshly created (empty) log tables with the stored ones.
    for name in sorted(stored_logs):
        stored = read_table(directory / f"__log_{name}.jsonl")
        live = enforcer.database.table(name)
        stored_rows = [row for _, row in stored.scan()]
        live.replace_contents(stored_rows, stored.tids(), stored.next_tid)
        by_tid = dict(live.scan())
        enforcer.store._disk[name] = [  # noqa: SLF001
            (tid, by_tid[tid])
            for tid in manifest["disk_tids"].get(name, [])
            if tid in by_tid
        ]
    enforcer.store.set_time(int(manifest["clock_now"]))
    enforcer._queries_since_compaction = int(  # noqa: SLF001
        manifest.get("queries_since_compaction", 0)
    )

    state_path = directory / INCREMENTAL_STATE
    if enforcer.options.incremental and state_path.exists():
        try:
            payload = json.loads(state_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            payload = None
        if payload is not None:
            # False (stale format/signatures) leaves the lazy rebuild path
            # in charge — never trust unvalidated state.
            enforcer.load_incremental_state(payload)
    return enforcer


def _options_to_dict(options: EnforcerOptions) -> dict:
    import dataclasses

    return dataclasses.asdict(options)
