"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch one base class. Subsystems raise more specific types:
the SQL front end raises :class:`SqlError` subclasses, the engine raises
:class:`EngineError` subclasses, and the policy layer raises
:class:`PolicyError` subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SqlError(ReproError):
    """Base class for SQL front-end errors."""


class LexError(SqlError):
    """Raised when the lexer meets a character sequence it cannot tokenize."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser meets an unexpected token."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class EngineError(ReproError):
    """Base class for relational-engine errors."""


class CatalogError(EngineError):
    """Raised for unknown/duplicate tables or columns."""


class BindError(EngineError):
    """Raised when a name in a query cannot be resolved, or is ambiguous."""


class ExecutionError(EngineError):
    """Raised when a query fails at runtime (e.g. bad operand types)."""


class PolicyError(ReproError):
    """Base class for policy-layer errors."""


class PolicySyntaxError(PolicyError):
    """Raised when a policy does not fit the required SQL shape."""


class UnknownLogRelationError(PolicyError):
    """Raised when a policy references a log relation with no generator."""


class ServiceError(ReproError):
    """Base class for enforcement-service (gateway) errors."""


class ServiceOverloadedError(ServiceError):
    """Raised when a shard's admission queue is full (backpressure).

    ``retry_after`` is the suggested wait in seconds before retrying.
    """

    def __init__(self, shard: int, retry_after: float = 1.0):
        super().__init__(
            f"shard {shard} admission queue is full; retry after "
            f"{retry_after:.3f}s"
        )
        self.shard = shard
        self.retry_after = retry_after


class ServiceClosedError(ServiceError):
    """Raised when submitting to a service that is draining or closed."""


class WorkerCrashError(ServiceError):
    """Raised when a shard worker process died with the request in flight.

    The outcome is indeterminate: the worker may or may not have durably
    committed the decision before dying. Callers that need certainty
    should re-check idempotently after the coordinator respawns the
    shard (durable shards recover to bit-identical state via WAL replay).
    """


class PolicyPlacementError(PolicyError):
    """Raised when a policy cannot be enforced soundly under sharding.

    Cross-user aggregates (windowed policies without a uid pin) need a
    global view of the usage log; installing one on a multi-shard service
    is rejected instead of silently under-enforcing.
    """
