"""repro.service — the sharded, concurrent enforcement gateway.

The paper positions DataLawyer as middleware in front of a DBMS; this
package makes that middleware multi-tenant and concurrent. Queries hash
by ``uid`` onto N independent :class:`~repro.core.Enforcer` shards (each
with its own clone of the base tables and its own slice of the usage
log), admission is a bounded per-shard queue with backpressure, and a
coordinator broadcasts policy changes to all shards under an epoch.
With ``ServiceConfig(workers_mode="process")`` each shard runs in its
own worker process (:class:`~repro.service.process.ProcessShard`), so
CPU-bound policy checks scale across cores instead of serializing on
the GIL.

Quickstart::

    from repro.service import ServiceConfig, ShardedEnforcerService

    service = ShardedEnforcerService(enforcer, ServiceConfig(shards=4))
    decision = service.submit("SELECT * FROM listings", uid=7)
    service.stats()      # per-shard queue depth, admit/reject, p50/p95
    service.drain()      # flush backlogs, stop workers

See :mod:`repro.service.placement` for when per-uid sharding is sound.
"""

from .config import ServiceConfig
from .coordinator import ShardedEnforcerService
from .global_tier import DeltaTee, GlobalTier
from .metrics import ShardCounters, percentile
from .placement import (
    GLOBAL_SCOPES,
    SCOPE_GLOBAL,
    SCOPE_GLOBAL_ASYNC,
    SCOPE_GLOBAL_STRICT,
    SCOPE_LOCAL,
    PolicyPlacement,
    classify_policies,
    classify_policy,
)
from .process import ProcessShard
from .routing import ShardRouter, mix64
from .shard import Shard, ShardDurability

__all__ = [
    "ServiceConfig",
    "ShardedEnforcerService",
    "Shard",
    "ShardDurability",
    "ProcessShard",
    "ShardCounters",
    "ShardRouter",
    "PolicyPlacement",
    "classify_policy",
    "classify_policies",
    "SCOPE_LOCAL",
    "SCOPE_GLOBAL",
    "SCOPE_GLOBAL_ASYNC",
    "SCOPE_GLOBAL_STRICT",
    "GLOBAL_SCOPES",
    "GlobalTier",
    "DeltaTee",
    "mix64",
    "percentile",
]
