"""Process-backed shards: the coordinator side of the IPC admission layer.

A :class:`ProcessShard` presents the same surface as a thread-backed
:class:`~repro.service.shard.Shard` — ``offer_query``, stats/export/
slow/durability inspection, ``drain`` — but the enforcer lives in a
``multiprocessing`` worker process (:mod:`repro.service.worker`), so
CPU-bound policy checks on different shards run on different cores
instead of serializing on the GIL.

Admission is a *bounded in-flight window*: the coordinator tracks how
many checks it has posted to the worker without a response and rejects
with :class:`~repro.errors.ServiceOverloadedError` (HTTP 429 +
``Retry-After``) once the window — queue depth plus worker threads,
exactly the thread mode's waiting + executing capacity — is full. The
worker's own queue is sized to the whole window, so it never rejects on
its own; backpressure semantics stay identical across modes.

Crash handling: EOF on the pipe with the shard still open means the
worker died. In-flight futures fail with
:class:`~repro.errors.WorkerCrashError` (the outcome of those specific
checks is indeterminate), and the shard respawns its worker immediately.
A durable shard recovers by WAL replay (`recover_enforcer` — the new
process picks up bit-identically where the dead one's last fsync
landed); a non-durable shard re-bootstraps from the startup snapshot and
loses its in-memory log slice, which is why ``--data-dir`` is the
recommended deployment for process mode. After the respawned worker says
hello, its policy set is diffed against the coordinator's reference and
re-synced before new checks flow.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Optional

from ..errors import (
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from .ipc import recv_message, send_message
from .metrics import ShardCounters
from .worker import decision_from_json, worker_main

#: Fallback Retry-After hint (seconds) before any latency samples exist,
#: and while a crashed worker is respawning.
_DEFAULT_RETRY_AFTER = 0.05

#: Seconds to wait for a worker's hello before declaring the boot dead.
_HELLO_TIMEOUT = 120.0

#: Default seconds to wait on a control RPC round trip.
_RPC_TIMEOUT = 60.0

_preload_done = False


def _mp_context():
    """A forkserver context (cheap spawns, no inherited locks) with this
    package preloaded; spawn where forkserver is unavailable."""
    global _preload_done
    try:
        context = multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")
    if not _preload_done:
        try:
            context.set_forkserver_preload(["repro.service.worker"])
        except Exception:  # pragma: no cover - preload is an optimization
            pass
        _preload_done = True
    return context


class ProcessShard:
    """One shard whose enforcer lives in a worker process."""

    def __init__(
        self,
        index: int,
        spec: dict,
        queue_capacity: int,
        *,
        policy_source=None,
        respawn: bool = True,
        delta_sink=None,
    ):
        self.index = index
        #: Callable ``(shard_index, message)`` receiving committed
        #: usage-log delta frames streamed by the worker (global tier).
        self._delta_sink = delta_sink
        self.epoch = spec["epoch"]
        #: Worker restarts after a crash (``repro_process_restarts_total``).
        self.restarts = 0
        self._spec = dict(spec)
        self._queue_capacity = queue_capacity
        #: Max checks posted without a response: thread mode's waiting
        #: (queue depth) + executing (workers) capacity.
        self._window = queue_capacity + spec["workers"]
        #: Callable returning ``(epoch, [policy dicts])`` — the
        #: coordinator's reference policy set, used to re-sync a
        #: respawned worker that booted from a stale snapshot.
        self._policy_source = policy_source
        self._respawn_enabled = respawn
        self._state_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._pending: "dict[int, tuple[str, Future, float]]" = {}
        self._inflight = 0
        self._rejected = 0
        self._latencies: deque = deque(maxlen=spec["latency_window"])
        self._ids = itertools.count(1)
        self._generation = 0
        self._closed = False
        self._alive = False
        self._process = None
        self._conn = None
        self.pid: Optional[int] = None
        self.hello: dict = {}
        self._spawn()

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self) -> None:
        context = _mp_context()
        parent_conn, child_conn = context.Pipe(duplex=True)
        spec = dict(self._spec)
        spec["epoch"] = self.epoch
        process = context.Process(
            target=worker_main,
            args=(child_conn, spec),
            name=f"repro-shard{self.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        hello_waiter: Future = Future()
        with self._state_lock:
            self._generation += 1
            generation = self._generation
            self._process = process
            self._conn = parent_conn
        reader = threading.Thread(
            target=self._read_loop,
            args=(parent_conn, generation, hello_waiter),
            name=f"repro-shard{self.index}-reader",
            daemon=True,
        )
        reader.start()
        try:
            hello = hello_waiter.result(timeout=_HELLO_TIMEOUT)
        except Exception as error:
            process.terminate()
            process.join(timeout=5)
            raise ServiceError(
                f"shard {self.index} worker failed to start: {error!r}"
            ) from error
        if "error" in hello:
            process.join(timeout=5)
            raise ServiceError(
                f"shard {self.index} worker failed to start:\n"
                + hello["error"]
            )
        self.hello = hello
        self.pid = hello.get("pid")
        with self._state_lock:
            self._alive = True

    def _respawn(self) -> None:
        try:
            self._spawn()
            self._sync_policies()
        except ServiceError:
            # Leave the shard dead but the service up: offers keep
            # answering 429 so clients back off instead of erroring.
            return

    def _sync_policies(self) -> None:
        """Diff a respawned worker's policy set against the reference.

        Durable shards recover their exact policy set from the
        checkpoint manifest, so the diff is empty; a non-durable
        respawn may have booted from the startup bootstrap snapshot
        and needs the changes applied since.
        """
        if self._policy_source is None:
            return
        epoch, reference = self._policy_source()
        current = {
            entry["name"]: entry
            for entry in self.hello.get("policies", [])
        }
        wanted = {entry["name"]: entry for entry in reference}
        for name in current:
            if name not in wanted:
                self.apply_policy_change("remove", name, epoch=epoch)
        for name, entry in wanted.items():
            if name not in current:
                self.apply_policy_change(
                    "add",
                    name,
                    sql=entry["sql"],
                    description=entry.get("description", ""),
                    epoch=epoch,
                )
        self.set_epoch(epoch)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Flush the worker's backlog, checkpoint, and stop it."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            alive = self._alive
        if alive:
            try:
                self._request({"type": "drain"}, timeout=timeout or _RPC_TIMEOUT)
            except (ServiceError, OSError):
                pass
        process = self._process
        if process is not None:
            process.join(timeout if timeout is not None else 30)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(5)
        conn = self._conn
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def force_stop(self) -> None:
        """Terminate the worker unconditionally, without draining.

        The startup-abort path: a shard that wedged during ``drain``
        must not leak a live worker process past the coordinator's
        constructor re-raise. Idempotent; disables respawn first so the
        reader thread's crash path cannot race a new worker into life.
        """
        with self._state_lock:
            self._closed = True
            self._respawn_enabled = False
        process = self._process
        if process is not None and process.is_alive():
            process.terminate()
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - unkillable worker
                process.kill()
                process.join(timeout=5)
        conn = self._conn
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    # -- admission ---------------------------------------------------------

    def offer_query(
        self,
        sql: str,
        uid: int = 0,
        execute: Optional[bool] = None,
        attributes: Optional[dict] = None,
        timestamp: Optional[int] = None,
    ) -> "Future":
        future: Future = Future()
        with self._state_lock:
            if self._closed:
                raise ServiceClosedError(
                    f"shard {self.index} is draining; not accepting queries"
                )
            if not self._alive:
                # Worker is respawning (or dead): shed load with a hint
                # sized for the respawn, not the queue.
                self._rejected += 1
                raise ServiceOverloadedError(
                    self.index, retry_after=_DEFAULT_RETRY_AFTER
                )
            if self._inflight >= self._window:
                self._rejected += 1
                raise ServiceOverloadedError(
                    self.index, retry_after=self._hint_locked()
                )
            request_id = next(self._ids)
            self._pending[request_id] = ("query", future, time.perf_counter())
            self._inflight += 1
            try:
                self._post({
                    "type": "query",
                    "id": request_id,
                    "sql": sql,
                    "uid": uid,
                    "execute": execute,
                    "attributes": attributes,
                    "timestamp": timestamp,
                })
            except (BrokenPipeError, OSError):
                self._pending.pop(request_id, None)
                self._inflight -= 1
                self._rejected += 1
                raise ServiceOverloadedError(
                    self.index, retry_after=_DEFAULT_RETRY_AFTER
                ) from None
        return future

    def retry_after_hint(self) -> float:
        with self._state_lock:
            return self._hint_locked()

    def _hint_locked(self) -> float:
        """Retry-After estimate; caller holds ``_state_lock``."""
        window = self._latencies
        mean = (
            sum(window) / len(window) if window else _DEFAULT_RETRY_AFTER
        )
        return max(0.001, mean * max(1, self._inflight))

    def queue_depth(self) -> int:
        """Checks posted to the worker and not yet answered."""
        with self._state_lock:
            return self._inflight

    # -- pipe handling -----------------------------------------------------

    def _post(self, message: dict) -> None:
        with self._send_lock:
            conn = self._conn
            if conn is None:
                raise BrokenPipeError("worker connection closed")
            send_message(conn, message)

    def _read_loop(self, conn, generation: int, hello_waiter: Future) -> None:
        while True:
            try:
                message = recv_message(conn)
            except (EOFError, OSError):
                break
            if message is None:
                break
            if message.get("type") == "hello":
                if not hello_waiter.done():
                    hello_waiter.set_result(message)
                continue
            if message.get("type") == "delta":
                # Unsolicited frame: a committed usage-log increment
                # streamed for the coordinator's global tier.
                sink = self._delta_sink
                if sink is not None:
                    sink(self.index, message)
                continue
            self._complete(message)
        self._on_pipe_closed(generation, hello_waiter)

    def _complete(self, message: dict) -> None:
        with self._state_lock:
            entry = self._pending.pop(message.get("id"), None)
            if entry is not None and entry[0] == "query":
                self._inflight -= 1
        if entry is None:
            return
        kind, future, started = entry
        if future.done():  # pragma: no cover - completed by crash path
            return
        if not message.get("ok"):
            future.set_exception(self._error_from(message))
            return
        if kind == "query":
            decision = decision_from_json(message["decision"])
            with self._state_lock:
                self._latencies.append(time.perf_counter() - started)
            future.set_result(decision)
        else:
            future.set_result(message)

    def _error_from(self, message: dict) -> Exception:
        kind = message.get("kind")
        text = message.get("error", "worker error")
        if kind == "overloaded":  # pragma: no cover - window prevents this
            return ServiceOverloadedError(
                message.get("shard", self.index),
                retry_after=message.get("retry_after", _DEFAULT_RETRY_AFTER),
            )
        if kind == "closed":
            return ServiceClosedError(text)
        if kind == "repro":
            return ReproError(text)
        return ServiceError(text)

    def _on_pipe_closed(self, generation: int, hello_waiter: Future) -> None:
        with self._state_lock:
            if generation != self._generation:
                return
            was_alive = self._alive
            self._alive = False
            pending = list(self._pending.values())
            self._pending.clear()
            self._inflight = 0
            closed = self._closed
        if not hello_waiter.done():
            hello_waiter.set_exception(
                ServiceError(f"shard {self.index} worker exited during boot")
            )
        if closed:
            for _, future, _ in pending:
                if not future.done():
                    future.set_exception(
                        ServiceClosedError(f"shard {self.index} drained")
                    )
            return
        for _, future, _ in pending:
            if not future.done():
                future.set_exception(
                    WorkerCrashError(
                        f"shard {self.index} worker died mid-request; "
                        "outcome indeterminate (durable shards recover "
                        "committed state on respawn)"
                    )
                )
        if not was_alive:
            # Boot never completed: _spawn's caller raises; respawning
            # here would just crash-loop a shard that cannot start.
            return
        self.restarts += 1
        if self._process is not None:
            self._process.join(timeout=5)
        if self._respawn_enabled:
            self._respawn()

    # -- control RPCs ------------------------------------------------------

    def _request(self, message: dict, timeout: float = _RPC_TIMEOUT) -> dict:
        future: Future = Future()
        with self._state_lock:
            if self._conn is None or not self._alive:
                raise ServiceError(
                    f"shard {self.index} worker is not available"
                )
            request_id = next(self._ids)
            self._pending[request_id] = ("control", future, time.perf_counter())
            message = dict(message)
            message["id"] = request_id
            try:
                self._post(message)
            except (BrokenPipeError, OSError):
                self._pending.pop(request_id, None)
                raise ServiceError(
                    f"shard {self.index} worker connection is down"
                ) from None
        return future.result(timeout=timeout)

    def apply_policy_change(
        self,
        action: str,
        name: str,
        sql: str = "",
        description: str = "",
        epoch: int = 0,
    ) -> None:
        """Install or remove one policy on the worker (checkpointed when
        durable); the shard's epoch mirror advances with the broadcast."""
        self._request({
            "type": "policy",
            "action": action,
            "name": name,
            "sql": sql,
            "description": description,
            "epoch": epoch,
        })
        self.epoch = epoch

    def set_epoch(self, epoch: int) -> None:
        self._request({"type": "set_epoch", "epoch": epoch})
        self.epoch = epoch

    def apply_extras(self, relations: "list[str]") -> None:
        """Replace the worker's extra-persist relation set (the log
        relations the global tier needs retained and streamed)."""
        self._request({"type": "extras", "relations": list(relations)})

    def log_dump(self, relations: "list[str]") -> dict:
        """The worker's committed rows for ``relations`` plus its clock,
        for tier bootstrap: ``{"rows": {name: [[ts, ...], ...]}, "clock": N}``.
        """
        return self._request({"type": "logdump", "relations": list(relations)})

    # -- inspection (uniform shard surface) --------------------------------

    def policy_names(self) -> "list[str]":
        response = self._request({"type": "policies"})
        return [entry["name"] for entry in response["policies"]]

    def log_sizes(self) -> "dict[str, int]":
        try:
            return self._request({"type": "log_sizes"})["sizes"]
        except (ServiceError, WorkerCrashError, FutureTimeout):
            return {}

    def slow_entries(self) -> "list[dict]":
        try:
            return self._request({"type": "slow"})["entries"]
        except (ServiceError, WorkerCrashError, FutureTimeout):
            return []

    def durability_state(self) -> Optional[dict]:
        try:
            return self._request({"type": "durability"})["status"]
        except (ServiceError, WorkerCrashError, FutureTimeout):
            return None

    def stats_entry(self, queue_capacity: int) -> dict:
        try:
            entry = self._request({"type": "stats"})["stats"]
        except (ServiceError, WorkerCrashError, FutureTimeout):
            entry = ShardCounters(latency_window=1).snapshot()
            entry["shard"] = self.index
            entry["epoch"] = self.epoch
            entry["queue_depth"] = self.queue_depth()
            entry["queue_capacity"] = queue_capacity
        with self._state_lock:
            entry["rejected"] = entry.get("rejected", 0) + self._rejected
            entry["process"] = {
                "pid": self.pid,
                "alive": self._alive,
                "restarts": self.restarts,
                "inflight": self._inflight,
            }
        return entry

    def export_state(self) -> dict:
        try:
            state = self._request({"type": "export"})["state"]
        except (ServiceError, WorkerCrashError, FutureTimeout):
            state = _empty_export_state()
        with self._state_lock:
            state["prom"]["rejected"] = (
                state["prom"].get("rejected", 0) + self._rejected
            )
        return state

    def process_state(self) -> dict:
        """Parent-side worker gauges (``repro_process_*`` families)."""
        with self._state_lock:
            return {
                "alive": self._alive,
                "restarts": self.restarts,
                "inflight": self._inflight,
                "pid": self.pid,
            }

    def explain_analyze(self, sql: str) -> str:
        return self._request({"type": "explain_analyze", "sql": sql})["plan"]

    def explain_evidence(self, decision) -> "list[dict]":
        return self._request({
            "type": "explain_decision",
            "sql": decision.sql,
            "uid": decision.uid,
            "timestamp": decision.timestamp,
            "violations": [
                {
                    "policy_name": violation.policy_name,
                    "message": violation.message,
                    "evidence_rows": violation.evidence_rows,
                }
                for violation in decision.violations
            ],
        })["evidence"]


def _empty_export_state() -> dict:
    """The export shape of an idle shard, for scrapes during a respawn."""
    counters = ShardCounters(latency_window=1)
    snap = counters.prom_snapshot()
    prom = dict(snap)
    for key in ("check_hist", "wait_hist", "batch_hist"):
        prom[key] = snap[key].as_dict()
    prom["policy_eval"] = {}
    return {
        "prom": prom,
        "queue_depth": 0,
        "busy_workers": 0,
        "decision_cache": None,
        "incremental": None,
        "engine": {
            "name": "",
            "plan_hits": 0, "plan_misses": 0,
            "build_hits": 0, "build_misses": 0,
            "vector_batches": 0, "vector_rows": 0,
            "columnar_batches": 0, "columnar_rows": 0,
            "chunks_scanned": 0, "chunks_skipped": 0,
            "range_probes": 0,
            "dag_shared_nodes": 0, "dag_saved_execs": 0,
        },
        "wal": None,
    }
