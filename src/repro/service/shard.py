"""One enforcement shard: an enforcer, a lock, a bounded queue, workers.

A shard owns a full :class:`~repro.core.Enforcer` — its own clone of the
base tables plus this shard's slice of the usage log — and serializes
access to it with a per-shard lock. Admission is a bounded queue: when
``queue_depth`` jobs are already waiting, :meth:`Shard.offer` raises
:class:`~repro.errors.ServiceOverloadedError` immediately (backpressure)
instead of letting callers pile up. Worker threads drain the queue and
complete each job's future.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Callable, Optional

from ..core import Decision, Enforcer
from ..errors import ServiceClosedError, ServiceOverloadedError
from ..storage.wal import WriteAheadLog, checkpoint
from .metrics import ShardCounters

#: Queue sentinel telling a worker to exit after the backlog drains.
_STOP = object()

#: Fallback Retry-After hint before any latency samples exist.
_DEFAULT_RETRY_AFTER = 0.05

#: Slow checks are logged here (and kept in the shard's slow ring).
slow_log = logging.getLogger("repro.service.slowlog")


class ShardDurability:
    """One shard's durability handle: its WAL directory and cadence.

    The WAL itself is attached to the shard's enforcer (every commit and
    reject appends a record); this object owns the *checkpoint* side —
    counting queries since the last snapshot and truncating the WAL at
    the configured cadence. All methods that touch the enforcer must be
    called with the shard lock held.
    """

    def __init__(
        self,
        directory,
        wal: WriteAheadLog,
        checkpoint_every: int = 0,
        sync: bool = True,
    ):
        self.directory = Path(directory)
        self.wal = wal
        self.checkpoint_every = checkpoint_every
        self.sync = sync
        self._since_checkpoint = 0

    def note_query(self, enforcer: Enforcer) -> None:
        """Count one processed query; checkpoint when the cadence hits."""
        self.note_queries(enforcer, 1)

    def note_queries(self, enforcer: Enforcer, count: int) -> None:
        """Count a batch of processed queries; checkpoint when the
        cadence hits. Called at batch boundaries — never inside a WAL
        group-commit window, where the checkpoint's WAL reset would
        drop buffered frames."""
        self._since_checkpoint += count
        if self.checkpoint_every and (
            self._since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint(enforcer)

    def checkpoint(self, enforcer: Enforcer) -> None:
        checkpoint(enforcer, self.directory, self.wal, sync=self.sync)
        self._since_checkpoint = 0

    def status(self) -> dict:
        return {
            "directory": str(self.directory),
            "last_seq": self.wal.last_seq,
            "checkpoint_every": self.checkpoint_every,
            "since_checkpoint": self._since_checkpoint,
            "wal_bytes": (
                self.wal.path.stat().st_size if self.wal.path.exists() else 0
            ),
            "sync": self.sync,
        }

    def close(self) -> None:
        self.wal.close()


class Shard:
    """A single-enforcer execution unit with admission control."""

    def __init__(
        self,
        index: int,
        enforcer: Enforcer,
        queue_depth: int,
        workers: int = 1,
        dispatch_seconds: float = 0.0,
        latency_window: int = 512,
        durability: Optional[ShardDurability] = None,
        slow_query_seconds: float = 0.0,
        batch_size: int = 1,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.index = index
        self.enforcer = enforcer
        self.durability = durability
        # Each shard owns its slice of the usage log, so it owns the
        # matching incremental state too: warm it (bootstrap over any
        # recovered log, or adopt the checkpointed state loaded during
        # recovery) before the workers accept queries.
        enforcer.warm_incremental()
        #: Max queued queries drained per worker wakeup; a batch shares
        #: one lock acquisition and one WAL group commit.
        self.batch_size = batch_size
        #: Guards the enforcer; the coordinator takes it for broadcasts.
        self.lock = threading.Lock()
        self.counters = ShardCounters(latency_window)
        self.epoch = 0
        self.dispatch_seconds = dispatch_seconds
        #: Checks at least this slow get logged with their trace (0 = off).
        self.slow_query_seconds = slow_query_seconds
        self._busy = 0
        self._busy_lock = threading.Lock()
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self._closed = threading.Event()
        self._workers = [
            threading.Thread(
                target=self._run,
                name=f"repro-shard{index}-w{worker}",
                daemon=True,
            )
            for worker in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- admission ---------------------------------------------------------

    def offer_query(
        self,
        sql: str,
        uid: int = 0,
        execute: Optional[bool] = None,
        attributes: Optional[dict] = None,
        timestamp: Optional[int] = None,
    ) -> "Future":
        """Enqueue one policy check by its wire-shaped arguments.

        The uniform admission entry point shared with
        :class:`~repro.service.process.ProcessShard`: the coordinator
        calls this instead of building a closure, so the same call works
        whether the shard lives in this process or behind a pipe.
        ``timestamp`` carries a coordinator-assigned logical time when a
        global tier owns the clock (see
        :mod:`repro.service.global_tier`).
        """
        return self.offer(
            lambda enforcer: enforcer.submit(
                sql,
                uid=uid,
                execute=execute,
                attributes=attributes,
                timestamp=timestamp,
            )
        )

    def offer(self, job: Callable[[Enforcer], Decision]) -> "Future":
        """Enqueue a job; full queue → immediate backpressure error."""
        if self._closed.is_set():
            raise ServiceClosedError(
                f"shard {self.index} is draining; not accepting queries"
            )
        future: Future = Future()
        try:
            self._queue.put_nowait((job, future, time.perf_counter()))
        except queue.Full:
            self.counters.record_reject()
            raise ServiceOverloadedError(
                self.index, retry_after=self.retry_after_hint()
            ) from None
        self.counters.record_admit()
        return future

    def retry_after_hint(self) -> float:
        """Expected seconds until a queue slot frees up: the backlog
        (waiting + in-flight) times the recent mean check latency.

        Only *busy* workers count as in-flight — a worker blocked on an
        empty queue is capacity, not backlog, and counting it used to
        inflate the hint (and clients' sleeps) on lightly loaded shards.
        """
        mean = self.counters.mean_latency() or _DEFAULT_RETRY_AFTER
        backlog = self._queue.qsize() + self.busy_workers()
        return max(0.001, mean * backlog)

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def busy_workers(self) -> int:
        """Workers currently executing a job (not waiting on the queue)."""
        with self._busy_lock:
            return self._busy

    # -- uniform inspection surface ---------------------------------------
    #
    # Everything the coordinator, /stats, and /metrics need from a shard,
    # behind methods both this thread-backed Shard and the process-backed
    # ProcessShard implement. The builders live here so a worker process
    # (which hosts a real Shard internally) answers inspection RPCs with
    # exactly the shapes the thread path produces.

    def policy_names(self) -> "list[str]":
        with self.lock:
            return [policy.name for policy in self.enforcer.policies]

    def log_sizes(self) -> "dict[str, int]":
        with self.lock:
            return self.enforcer.log_sizes()

    def slow_entries(self) -> "list[dict]":
        return self.counters.slow_entries()

    def durability_state(self) -> Optional[dict]:
        durability = self.durability
        return durability.status() if durability is not None else None

    def stats_entry(self, queue_capacity: int) -> dict:
        """One shard's row of the ``GET /stats`` surface (lock-free)."""
        snapshot = self.counters.snapshot()
        snapshot["shard"] = self.index
        snapshot["epoch"] = self.epoch
        snapshot["queue_depth"] = self.queue_depth()
        snapshot["queue_capacity"] = queue_capacity
        snapshot["engine"] = self.enforcer.engine.engine_name
        cache = self.enforcer.decision_cache
        if cache is not None:
            snapshot["decision_cache"] = cache.stats.as_dict()
        maintainer = self.enforcer.incremental
        if maintainer is not None:
            incremental = maintainer.stats.as_dict()
            incremental["state_entries"] = maintainer.state_entries()
            snapshot["incremental"] = incremental
        return snapshot

    def export_state(self) -> dict:
        """Everything ``GET /metrics`` needs, as one JSON-safe dict.

        Histograms are shipped as plain dicts
        (:meth:`~repro.obs.prom.HistogramSnapshot.as_dict`) so a process
        shard can answer this over the IPC pipe; the export collector
        rebuilds snapshots on the other side. Reads are lock-free in the
        same sense as ``GET /stats`` (counter mutex only, never the
        shard lock; plain-int reads of enforcer counters cannot tear).
        """
        snap = self.counters.prom_snapshot()
        prom = dict(snap)
        for key in ("check_hist", "wait_hist", "batch_hist"):
            prom[key] = snap[key].as_dict()
        prom["policy_eval"] = {
            name: hist.as_dict() for name, hist in snap["policy_eval"].items()
        }
        state: dict = {
            "prom": prom,
            "queue_depth": self.queue_depth(),
            "busy_workers": self.busy_workers(),
            "decision_cache": None,
            "incremental": None,
            "wal": None,
        }
        cache = self.enforcer.decision_cache
        if cache is not None:
            state["decision_cache"] = {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "invalidations": cache.stats.invalidations,
                "entries": cache.stats.entries,
            }
        maintainer = self.enforcer.incremental
        if maintainer is not None:
            state["incremental"] = {
                "hits": maintainer.stats.hits,
                "fallbacks": maintainer.stats.fallbacks,
                "folds": maintainer.stats.folds,
                "state_entries": maintainer.state_entries(),
            }
        engine = self.enforcer.engine
        state["engine"] = {
            "name": engine.engine_name,
            "plan_hits": engine.plan_cache_hits,
            "plan_misses": engine.plan_cache_misses,
            "build_hits": engine.database.join_build_hits,
            "build_misses": engine.database.join_build_misses,
            "vector_batches": engine.vector_batches,
            "vector_rows": engine.vector_rows,
            "columnar_batches": engine.columnar_batches,
            "columnar_rows": engine.columnar_rows,
            "chunks_scanned": engine.database.zone_chunks_scanned,
            "chunks_skipped": engine.database.zone_chunks_skipped,
            "range_probes": engine.database.range_probes,
            "dag_shared_nodes": engine.dag_shared_nodes,
            "dag_saved_execs": engine.dag_saved_execs,
        }
        durability = self.durability
        if durability is not None:
            wal = durability.wal
            state["wal"] = {
                "appends": wal.appends,
                "fsyncs": wal.fsyncs,
                "bytes": (
                    wal.path.stat().st_size if wal.path.exists() else 0
                ),
                "last_seq": wal.last_seq,
            }
        return state

    # -- worker loop -------------------------------------------------------

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            batch = [item]
            while len(batch) < self.batch_size:
                try:
                    extra = self._queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    # Another worker's drain sentinel: put it back for
                    # them (the shard is draining, so no new offer can
                    # race in behind it) and close this batch.
                    self._queue.put(extra)
                    break
                batch.append(extra)
            self._process_batch(batch)

    def _process_batch(self, batch: list) -> None:
        """Run a drained batch under one lock hold.

        The enforcer evaluates each query in admission order; with a WAL
        attached, all their commit/reject records land in one group-
        commit window (a single flush + fsync). Futures complete only
        after that window closes — an acknowledged decision is a durable
        one — and the modeled dispatch round trip is paid once per
        batch, which is exactly the amortization the real middleware
        gets from pipelining.
        """
        with self._busy_lock:
            self._busy += 1
        outcomes: list = []
        try:
            try:
                with self.lock:
                    wal = self.enforcer.store.wal
                    if wal is not None and len(batch) > 1:
                        with wal.batch():
                            self._run_jobs(batch, outcomes)
                    else:
                        self._run_jobs(batch, outcomes)
                    if self.durability is not None:
                        # Cadence counted at batch boundaries: the WAL
                        # window above is closed, so a checkpoint here
                        # sees fully flushed state.
                        self.durability.note_queries(
                            self.enforcer, len(batch)
                        )
                    if self.dispatch_seconds:
                        # Modeled backend round trip (see ServiceConfig).
                        time.sleep(self.dispatch_seconds)
            except BaseException as error:
                # Machinery failure (WAL flush, checkpoint): nothing in
                # this batch is guaranteed durable, so every caller that
                # has not already been answered must see the error.
                for _, future, enqueued_at in batch:
                    self.counters.record_completion(
                        time.perf_counter() - enqueued_at, 0.0, None, None
                    )
                    if not future.done():
                        future.set_exception(error)
                return
            self.counters.record_batch(len(batch))
            for future, enqueued_at, queue_seconds, decision, error in outcomes:
                if error is not None:
                    self.counters.record_completion(
                        time.perf_counter() - enqueued_at,
                        queue_seconds,
                        None,
                        None,
                    )
                    future.set_exception(error)
                    continue
                total_seconds = time.perf_counter() - enqueued_at
                self.counters.record_completion(
                    total_seconds,
                    queue_seconds,
                    getattr(decision, "metrics", None),
                    getattr(decision, "allowed", None),
                    violations=getattr(decision, "violations", None),
                )
                if (
                    self.slow_query_seconds
                    and total_seconds >= self.slow_query_seconds
                ):
                    self._note_slow(decision, total_seconds, queue_seconds)
                future.set_result(decision)
        finally:
            with self._busy_lock:
                self._busy -= 1

    def _run_jobs(self, batch: list, outcomes: list) -> None:
        """Evaluate each job; per-query failures fail that caller only.

        Caller holds the shard lock. Outcomes are published after the
        lock (and any WAL window) is released.
        """
        for job, future, enqueued_at in batch:
            queue_seconds = time.perf_counter() - enqueued_at
            decision: Optional[Decision] = None
            try:
                decision = job(self.enforcer)
            except BaseException as error:  # noqa: BLE001 - forwarded
                outcomes.append((future, enqueued_at, queue_seconds, None, error))
            else:
                outcomes.append(
                    (future, enqueued_at, queue_seconds, decision, None)
                )

    def _note_slow(
        self, decision: Decision, total_seconds: float, queue_seconds: float
    ) -> None:
        span = getattr(decision, "span", None)
        trace = span.render() if span is not None else None
        entry = {
            "shard": self.index,
            "uid": getattr(decision, "uid", 0),
            "timestamp": getattr(decision, "timestamp", 0),
            "sql": getattr(decision, "sql", ""),
            "allowed": getattr(decision, "allowed", None),
            "seconds": total_seconds,
            "queue_seconds": queue_seconds,
            "trace": trace,
        }
        self.counters.record_slow(entry)
        slow_log.warning(
            "slow query on shard %d: uid=%d %.1f ms (queue %.1f ms)%s",
            self.index,
            entry["uid"],
            total_seconds * 1000,
            queue_seconds * 1000,
            "\n" + trace if trace else "",
        )

    # -- shutdown ----------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> None:
        """Stop admitting, let workers finish the backlog, join them.

        Queued jobs still complete (their callers get results); only new
        offers are refused. Idempotent.
        """
        if not self._closed.is_set():
            self._closed.set()
            for _ in self._workers:
                # put (not put_nowait): a full backlog must drain first.
                self._queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout)
        # Fail any job that raced past the closed check after the
        # sentinels went in — leaving its future pending would hang the
        # caller forever.
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            _, future, _ = item
            future.set_exception(
                ServiceClosedError(f"shard {self.index} drained")
            )
        # Final checkpoint: everything processed is now in the snapshot
        # and the WAL is empty, so the next startup restores instantly.
        if self.durability is not None:
            durability, self.durability = self.durability, None
            with self.lock:
                durability.checkpoint(self.enforcer)
            durability.close()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()
