"""Configuration for the sharded enforcement service."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..engine import ENGINES
from ..errors import ServiceError


def _default_workers_mode() -> str:
    """``thread`` unless ``REPRO_WORKERS_MODE`` overrides it.

    The env hook lets CI run the existing ``test_service*`` suites
    against process shards without touching every ``ServiceConfig(...)``
    call site; explicit ``workers_mode=`` arguments always win.
    """
    return os.environ.get("REPRO_WORKERS_MODE", "thread")


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for the gateway: parallelism, admission control, modeling.

    - ``shards`` — number of independent enforcer shards; queries route by
      ``hash(uid)``, so per-user policy state stays on one shard.
    - ``queue_depth`` — bounded admission queue per shard; a full queue
      rejects with backpressure (HTTP 429 + ``Retry-After``) instead of
      piling up threads.
    - ``workers`` — worker threads per shard. The enforcer itself is
      single-threaded (each shard serializes on its lock), so extra
      workers only help overlap the modeled dispatch latency.
    - ``dispatch_seconds`` — modeled backend round-trip per admitted
      query, in the spirit of :data:`repro.workloads.runner.DISPATCH_SECONDS`:
      the real middleware waits on a DBMS over the network; our engine is
      in-process, so throughput benchmarks add this blocking wait inside
      the shard worker to keep the concurrency effect visible.
    - ``routing`` — ``"hash"`` (mixed integer hash) or ``"modulo"``
      (``uid % shards``; handy for deterministic placement in tests).
    - ``data_dir`` — when set, every shard journals to a write-ahead log
      under ``<data_dir>/shard-<i>/`` and the service recovers existing
      state there on startup (see :mod:`repro.storage.wal`).
    - ``wal_sync`` — fsync every WAL record (the durable default); turn
      off to trade the un-fsynced tail for throughput.
    - ``checkpoint_every`` — snapshot + WAL truncation cadence, in
      queries per shard; ``0`` checkpoints only on drain and policy
      changes.
    - ``batch_size`` — max queued queries a shard worker drains per
      wakeup. A batch is checked under one lock acquisition and — with
      durability on — journals all its WAL records in one group-commit
      window (a single fsync), so fsync cost amortizes across the batch.
      ``1`` (the default) is exactly the unbatched behavior; decisions
      are identical either way, only latency/throughput shift.
    - ``decision_cache`` — memoize whole-check verdicts per shard (see
      :mod:`repro.core.decision_cache`). On by default here: the gateway
      is the hot path where repeated queries dominate. The core
      :class:`~repro.core.EnforcerOptions` default stays off so the
      paper-ablation benchmarks are unaffected.
    - ``decision_cache_size`` — LRU entries per shard.
    - ``incremental`` — maintain per-group running aggregates for
      incrementalizable policies (see :mod:`repro.incremental`) so their
      checks stop scanning the full usage log. On by default here, same
      reasoning as ``decision_cache``; decisions are identical either way.
    - ``tracing`` — attach a per-query trace (span tree) to every check;
      feeds ``GET /metrics``, ``explain=analyze``, and the slow-query
      log. Off trims a few percent from the hot path.
    - ``slow_query_seconds`` — checks at least this slow (enqueue to
      completion) are logged with their span tree and kept in a small
      per-shard ring; ``0`` disables the slow-query log.
    - ``workers_mode`` — ``"thread"`` (default: shards are worker
      threads in this process) or ``"process"`` (each shard is a
      ``multiprocessing`` worker process owning its shared-nothing
      enforcer clone, WAL directory, and clock — CPU-bound policy
      checks then scale across cores instead of serializing on the
      GIL; see :mod:`repro.service.process`). The default can be
      overridden with the ``REPRO_WORKERS_MODE`` environment variable
      (used by CI to re-run the service suites under process shards).
    - ``global_tier`` — ``"off"`` (default: installing a global policy on
      a multi-shard service raises
      :class:`~repro.errors.PolicyPlacementError`), ``"async"`` (admit
      only ``global-async`` policies: monotone aggregate thresholds
      answered from streamed aggregator state with a bounded staleness
      window), or ``"strict"`` (admit every global policy; strict ones
      go through two-phase reserve → commit/abort admission, bit-identical
      to a single-shard oracle). See :mod:`repro.service.global_tier`.
      An enabled tier requires ``workers=1``: coordinator-assigned
      timestamps must apply on each shard in admission order, which a
      single worker's FIFO guarantees.
    - ``engine`` — execution engine for every shard enforcer (``"row"``,
      ``"vectorized"``, or ``"columnar"``); ``None`` (default) inherits
      the seed enforcer's :attr:`~repro.core.EnforcerOptions.engine`.
      Decisions are bit-identical under every engine.
    """

    shards: int = 1
    queue_depth: int = 32
    workers: int = 1
    max_result_rows: int = 1000
    dispatch_seconds: float = 0.0
    routing: str = "hash"
    #: Latency samples kept per shard for the p50/p95 stats surface.
    latency_window: int = 512
    data_dir: Optional[str] = None
    wal_sync: bool = True
    checkpoint_every: int = 0
    batch_size: int = 1
    decision_cache: bool = True
    decision_cache_size: int = 1024
    incremental: bool = True
    tracing: bool = True
    slow_query_seconds: float = 0.0
    workers_mode: str = field(default_factory=_default_workers_mode)
    global_tier: str = "off"
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine is not None and self.engine not in ENGINES:
            raise ServiceError(
                f"unknown engine {self.engine!r} "
                f"(expected one of {', '.join(ENGINES)})"
            )
        if self.workers_mode not in ("thread", "process"):
            raise ServiceError(
                f"unknown workers_mode {self.workers_mode!r} "
                "(expected 'thread' or 'process')"
            )
        if self.shards < 1:
            raise ServiceError("shards must be >= 1")
        if self.queue_depth < 1:
            raise ServiceError("queue_depth must be >= 1")
        if self.batch_size < 1:
            raise ServiceError("batch_size must be >= 1")
        if self.decision_cache_size < 1:
            raise ServiceError("decision_cache_size must be >= 1")
        if self.workers < 1:
            raise ServiceError("workers must be >= 1")
        if self.dispatch_seconds < 0:
            raise ServiceError("dispatch_seconds cannot be negative")
        if self.routing not in ("hash", "modulo"):
            raise ServiceError(f"unknown routing strategy {self.routing!r}")
        if self.latency_window < 1:
            raise ServiceError("latency_window must be >= 1")
        if self.checkpoint_every < 0:
            raise ServiceError("checkpoint_every cannot be negative")
        if self.slow_query_seconds < 0:
            raise ServiceError("slow_query_seconds cannot be negative")
        if self.global_tier not in ("off", "async", "strict"):
            raise ServiceError(
                f"unknown global_tier {self.global_tier!r} "
                "(expected 'off', 'async' or 'strict')"
            )
        if self.global_tier != "off" and self.workers != 1:
            raise ServiceError(
                "global_tier requires workers=1: coordinator-assigned "
                "timestamps must apply on each shard in admission order"
            )
