"""Per-shard service counters and latency percentiles.

The per-query phase buckets still come from :mod:`repro.core.metrics`
(every decision carries its :class:`~repro.core.QueryMetrics`); this
module aggregates them at the service boundary so ``GET /stats`` can be
served without touching any shard lock: workers push completed-request
samples into their shard's counters, and a stats snapshot only reads the
counters under their own small mutex.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from ..core.metrics import QueryMetrics


def percentile(samples, fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sequence (0 when empty)."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


class ShardCounters:
    """Thread-safe admission/latency accounting for one shard."""

    def __init__(self, latency_window: int = 512):
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected = 0  # backpressure (429)
        self.completed = 0
        self.allowed = 0
        self.denied = 0  # policy violations (403)
        self.errors = 0  # malformed SQL etc. (400)
        self._phase_seconds: dict[str, float] = {}
        self._check_latencies: deque = deque(maxlen=latency_window)
        self._queue_waits: deque = deque(maxlen=latency_window)

    # -- recording (called by admission + worker threads) -----------------

    def record_admit(self) -> None:
        with self._lock:
            self.admitted += 1

    def record_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_completion(
        self,
        total_seconds: float,
        queue_seconds: float,
        metrics: Optional[QueryMetrics],
        allowed: Optional[bool],
    ) -> None:
        """One finished request: ``allowed`` is None for submit errors."""
        with self._lock:
            self.completed += 1
            if allowed is True:
                self.allowed += 1
            elif allowed is False:
                self.denied += 1
            else:
                self.errors += 1
            self._check_latencies.append(total_seconds)
            self._queue_waits.append(queue_seconds)
            if metrics is not None:
                for bucket, value in metrics.breakdown().items():
                    self._phase_seconds[bucket] = (
                        self._phase_seconds.get(bucket, 0.0) + value
                    )

    # -- reading -----------------------------------------------------------

    def mean_latency(self) -> float:
        with self._lock:
            window = list(self._check_latencies)
        return sum(window) / len(window) if window else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            latencies = list(self._check_latencies)
            waits = list(self._queue_waits)
            phase_totals = dict(self._phase_seconds)
            counts = {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "allowed": self.allowed,
                "denied": self.denied,
                "errors": self.errors,
            }
        snapshot = dict(counts)
        snapshot["p50_ms"] = percentile(latencies, 0.50) * 1000
        snapshot["p95_ms"] = percentile(latencies, 0.95) * 1000
        snapshot["queue_wait_p95_ms"] = percentile(waits, 0.95) * 1000
        completed = counts["completed"]
        snapshot["phase_mean_ms"] = {
            bucket: total / completed * 1000
            for bucket, total in sorted(phase_totals.items())
        } if completed else {}
        return snapshot
