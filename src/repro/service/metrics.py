"""Per-shard service counters, latency percentiles, and export state.

The per-query phase buckets still come from :mod:`repro.core.metrics`
(every decision carries its :class:`~repro.core.QueryMetrics`); this
module aggregates them at the service boundary so ``GET /stats`` and
``GET /metrics`` can be served without touching any shard lock: workers
push completed-request samples into their shard's counters, and a
snapshot only reads the counters under their own small mutex.

On top of the /stats percentiles, :class:`ShardCounters` accumulates the
Prometheus-facing state (see :mod:`repro.obs.export`): check/queue-wait
latency histograms, a per-policy eval-latency histogram fed from each
decision's trace spans, per-policy violation tallies, cumulative
per-phase seconds, and a slow-query counter with a small ring of the
most recent slow traces.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Optional

from ..core.metrics import QueryMetrics
from ..obs import Histogram

#: Prefix of the per-policy spans the enforcer opens (one per policy).
POLICY_SPAN_PREFIX = "policy:"


def percentile(samples, fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sequence (0 when empty)."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


class ShardCounters:
    """Thread-safe admission/latency accounting for one shard."""

    def __init__(self, latency_window: int = 512, slow_window: int = 32):
        self._lock = threading.Lock()
        self.admitted = 0
        self.rejected = 0  # backpressure (429)
        self.completed = 0
        self.allowed = 0
        self.denied = 0  # policy violations (403)
        self.errors = 0  # malformed SQL etc. (400)
        self.slow = 0  # checks over the slow-query threshold
        self._phase_seconds: dict[str, float] = {}  # breakdown buckets
        self._phase_detail: dict[str, float] = {}  # full per-phase seconds
        self._check_latencies: deque = deque(maxlen=latency_window)
        self._queue_waits: deque = deque(maxlen=latency_window)
        self._check_hist = Histogram()
        self._wait_hist = Histogram()
        #: Batch sizes per worker wakeup (1 = no batching in effect).
        self._batch_hist = Histogram(buckets=(1, 2, 4, 8, 16, 32, 64, 128))
        self._policy_eval: dict[str, Histogram] = {}
        self._policy_violations: dict[str, int] = {}
        self._recent_slow: deque = deque(maxlen=slow_window)

    # -- recording (called by admission + worker threads) -----------------

    def record_admit(self) -> None:
        with self._lock:
            self.admitted += 1

    def record_reject(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_completion(
        self,
        total_seconds: float,
        queue_seconds: float,
        metrics: Optional[QueryMetrics],
        allowed: Optional[bool],
        violations=None,
    ) -> None:
        """One finished request: ``allowed`` is None for submit errors."""
        policy_spans = []
        if metrics is not None and metrics.trace is not None:
            policy_spans = [
                (child.name[len(POLICY_SPAN_PREFIX):], child.seconds)
                for child in metrics.trace.root.children
                if child.name.startswith(POLICY_SPAN_PREFIX)
            ]
        with self._lock:
            self.completed += 1
            if allowed is True:
                self.allowed += 1
            elif allowed is False:
                self.denied += 1
            else:
                self.errors += 1
            self._check_latencies.append(total_seconds)
            self._queue_waits.append(queue_seconds)
            self._check_hist.observe(total_seconds)
            self._wait_hist.observe(queue_seconds)
            if metrics is not None:
                for bucket, value in metrics.breakdown().items():
                    self._phase_seconds[bucket] = (
                        self._phase_seconds.get(bucket, 0.0) + value
                    )
                for phase, value in metrics.seconds.items():
                    self._phase_detail[phase] = (
                        self._phase_detail.get(phase, 0.0) + value
                    )
            for name, seconds in policy_spans:
                hist = self._policy_eval.get(name)
                if hist is None:
                    hist = self._policy_eval[name] = Histogram()
                hist.observe(seconds)
            for violation in violations or ():
                name = violation.policy_name
                self._policy_violations[name] = (
                    self._policy_violations.get(name, 0) + 1
                )

    def record_batch(self, size: int) -> None:
        """One worker wakeup that drained ``size`` queued queries."""
        self._batch_hist.observe(size)

    def record_slow(self, entry: dict) -> None:
        """One check over the slow threshold; keep its rendered trace."""
        with self._lock:
            self.slow += 1
            self._recent_slow.append(entry)

    # -- reading -----------------------------------------------------------

    def mean_latency(self) -> float:
        with self._lock:
            window = list(self._check_latencies)
        return sum(window) / len(window) if window else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            latencies = list(self._check_latencies)
            waits = list(self._queue_waits)
            phase_totals = dict(self._phase_seconds)
            counts = {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "allowed": self.allowed,
                "denied": self.denied,
                "errors": self.errors,
                "slow": self.slow,
            }
        snapshot = dict(counts)
        snapshot["p50_ms"] = percentile(latencies, 0.50) * 1000
        snapshot["p95_ms"] = percentile(latencies, 0.95) * 1000
        snapshot["queue_wait_p95_ms"] = percentile(waits, 0.95) * 1000
        completed = counts["completed"]
        snapshot["phase_mean_ms"] = {
            bucket: total / completed * 1000
            for bucket, total in sorted(phase_totals.items())
        } if completed else {}
        return snapshot

    def prom_snapshot(self) -> dict:
        """Everything :mod:`repro.obs.export` needs, in one lock hold."""
        with self._lock:
            return {
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": {
                    "allowed": self.allowed,
                    "denied": self.denied,
                    "error": self.errors,
                },
                "slow": self.slow,
                "check_hist": self._check_hist.snapshot(),
                "wait_hist": self._wait_hist.snapshot(),
                "batch_hist": self._batch_hist.snapshot(),
                "policy_eval": {
                    name: hist.snapshot()
                    for name, hist in self._policy_eval.items()
                },
                "policy_violations": dict(self._policy_violations),
                "phase_totals": dict(self._phase_detail),
            }

    def slow_entries(self) -> "list[dict]":
        with self._lock:
            return list(self._recent_slow)
