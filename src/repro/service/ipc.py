"""Framed JSON messaging between the coordinator and shard processes.

Each message is one JSON object framed with the WAL's checksum
discipline (:func:`repro.storage.wal.encode_record`): a crc32 prefix
over the compact-JSON payload. The :class:`multiprocessing.connection`
pipe already length-prefixes each ``send_bytes`` chunk, so the frame
layer's job is *integrity* — a corrupted or half-written chunk decodes
to ``None`` exactly like a torn WAL record, and the receiver treats it
as a dead peer instead of acting on garbage.

Wire protocol (all messages carry a ``type``; requests carry an ``id``
the response echoes):

========================  ============================================
coordinator → worker
========================  ============================================
``query``                 ``{id, sql, uid, execute, attributes,
                          timestamp}`` — ``timestamp`` is the
                          coordinator-assigned logical time when a
                          global tier owns the clock (else ``null``)
``policy``                ``{id, action: add|remove, name, sql,
                          description, epoch}`` — applied atomically
                          per shard, checkpointed when durable
``set_epoch``             ``{id, epoch}`` — post-respawn resync
``stats`` / ``export`` /  inspection RPCs answering with the same
``log_sizes`` / ``slow``  shapes the thread-backed shard produces
/ ``durability`` /
``policies``
``explain_analyze``       ``{id, sql}`` → rendered per-operator plan
``explain_decision``      ``{id, sql, uid, timestamp, violations}`` →
                          evidence tuples for a rejected decision
``extras``                ``{id, relations}`` — replace the worker's
                          extra-persist relation set (log relations
                          the global tier needs retained + streamed)
``logdump``               ``{id, relations}`` → ``{rows, clock}``:
                          committed rows of those relations plus the
                          shard clock, for aggregator bootstrap
``ping``                  liveness probe (responds with the pid)
``drain``                 flush the backlog, checkpoint, exit
========================  ============================================

========================  ============================================
worker → coordinator
========================  ============================================
``hello``                 one per boot: ``{pid, policies, recovery}``
                          (or ``{error}`` when the enforcer could not
                          be built — the spawn fails loudly)
``result``                ``{id, ok: true, ...payload}`` or
                          ``{id, ok: false, kind, error}`` with
                          ``kind`` ∈ overloaded/closed/crash/repro/
                          internal mapped back onto the matching
                          exception coordinator-side
``delta``                 unsolicited: ``{ts, rows}`` — one committed
                          usage-log increment streamed to the global
                          tier (rows keyed by relation, each row
                          ``[ts, ...]``), in timestamp order
========================  ============================================
"""

from __future__ import annotations

from typing import Optional

from ..storage.wal import decode_record, encode_record


def send_message(conn, message: dict) -> None:
    """Frame and send one message on a multiprocessing connection.

    Callers serialize sends themselves (the worker shares one pipe
    between its IPC loop and its completion callbacks).
    """
    conn.send_bytes(encode_record(message))


def recv_message(conn) -> Optional[dict]:
    """Receive and verify one message; ``None`` for a corrupt frame."""
    chunk = conn.recv_bytes()
    # encode_record appends the WAL's newline terminator; the pipe is
    # already message-oriented, so strip it before checksum validation.
    return decode_record(chunk.rstrip(b"\n"))
