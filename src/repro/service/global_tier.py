"""The global policy tier: cross-shard aggregate enforcement.

Per-uid sharding (see :mod:`repro.service.placement`) is sound only for
shard-local policies. This module enforces the rest — cross-user
windowed aggregates ("dataset-wide row budget", "≤N distinct users may
read T") — by keeping one coordinator-side view of the usage log:

- **global-async** policies are monotone aggregate thresholds the
  incremental classifier can plan (:func:`repro.incremental
  .classify_policy`). Every shard streams its *committed* log increments
  to the :class:`GlobalTier` (thread mode: an in-process
  :class:`DeltaTee` observer on the shard's log store; process mode: a
  ``delta`` frame on the worker pipe, riding the same crc32 framing as
  every other IPC message — see :mod:`repro.service.ipc`). A folder
  thread drains the delta queue into one
  :class:`~repro.incremental.state.PolicyState` per policy, and checks
  are answered from that state in O(groups).

  *Soundness/staleness window*: folded state is always a subset of the
  truly committed log (deltas still in flight are missing, and the
  submitting query's own increment is generated shard-side, after
  admission). Because the planned aggregates are monotone — more rows
  can only move a group *toward* its threshold — a **deny** from state
  is always sound. An **allow** may be stale by at most the in-flight
  delta backlog plus the query's own increment: a query that itself
  crosses a threshold is admitted once, and every later check denies as
  soon as its delta folds (after ``flush()``, immediately).

- **global-strict** policies get two-phase admission, bit-identical to
  a single-shard oracle: under the coordinator's admission lock the
  tier *reserves* — it generates the query's log rows itself (via the
  registry's log functions over a private clone of the catalog), stages
  them into a coordinator-side mirror of the global log relations, and
  evaluates the policy over mirror + increment — then *commits* the
  reservation when the shard allows the query, or *aborts* (deleting
  the staged rows) when the shard denies or errors. While any strict
  policy is installed every submit is serialized through this path;
  that is the documented cost of exactness.

**Timestamps.** With the tier active the coordinator assigns every
query's timestamp from one tier-owned clock and shards ``seek`` to it,
so all shards (and the tier) observe a single global time order — the
same sequence a single-shard oracle would assign.

**Durability.** The tier keeps a small WAL (``global/global.wal``,
:class:`~repro.storage.wal.WriteAheadLog` — crc32-framed like the shard
WALs) recording the timestamps its own denials consumed, plus a
checkpoint (``global/state.json``) with the clock and per-policy
history floors. Aggregate state and the strict mirror are *rebuilt from
the shards* on startup: shards retain every committed row of the
relations global policies read (``Enforcer.extra_persist_relations``),
so their WAL-recovered disk images are a complete history and the
rebuild is exact — recovery reaches the same global state as a run
that never crashed.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from pathlib import Path
from typing import Iterable, Optional

from ..analysis import analyze_structure, referenced_log_relations
from ..core.policy import Policy, Violation  # noqa: F401 - Policy re-exported
from ..engine import Database, Engine
from ..errors import PolicyError, ReproError
from ..incremental import classify_policy as incremental_classify
from ..incremental.state import PolicyState, StatePoisoned
from ..log import QueryContext
from ..log.store import CLOCK_TABLE
from ..sql import ast
from ..storage.wal import WriteAheadLog, read_wal
from .placement import SCOPE_GLOBAL_ASYNC, PolicyPlacement

#: Bumped whenever the checkpoint layout changes.
CHECKPOINT_FORMAT = 1


class DeltaTee:
    """Log-store observer that forwards commits to the inner observer
    (the enforcer's incremental maintainer) *and* streams them to a sink.

    Always active, so :meth:`~repro.log.store.LogStore.commit` computes
    the committed rows even when local incremental maintenance is off.
    """

    def __init__(self, inner, sink) -> None:
        self._inner = inner
        self._sink = sink

    def log_observer_active(self) -> bool:
        return True

    def on_log_commit(self, timestamp: int, inserted: dict) -> None:
        if self._inner is not None:
            self._inner.on_log_commit(timestamp, inserted)
        self._sink(timestamp, inserted)

    def on_log_discard(self) -> None:
        if self._inner is not None:
            self._inner.on_log_discard()


class _GlobalPolicy:
    """One installed global policy and its tier-side artifacts."""

    def __init__(
        self,
        policy: Policy,
        placement: PolicyPlacement,
        *,
        floor: Optional[int],
        registry,
        database: Database,
        max_entries: int,
        force_strict: bool = False,
    ) -> None:
        self.policy = policy
        self.placement = placement
        #: Log rows at or below this timestamp predate the policy (the
        #: paper's "history starts now" rule for runtime-added policies).
        self.floor = floor
        classification = incremental_classify(
            policy.name, policy.select, registry, database
        )
        # A strict-mode tier evaluates *every* global policy through the
        # serialized mirror — even incrementalizable ones — because that
        # is what makes its admissions bit-identical to a single-shard
        # oracle (the async path cannot see the query's own increment).
        self.plan = (
            classification.plan
            if placement.scope == SCOPE_GLOBAL_ASYNC and not force_strict
            else None
        )
        self.state = (
            PolicyState(self.plan, max_entries)
            if self.plan is not None
            else None
        )
        if self.plan is not None:
            self.log_relations = set(self.plan.log_relations)
            self.select = policy.select
        else:
            self.log_relations = referenced_log_relations(
                policy.select, registry
            )
            self.select = self._floored_select(policy.select, registry)

    @property
    def strict(self) -> bool:
        return self.plan is None

    def _floored_select(self, select: ast.Select, registry) -> ast.Select:
        """Conjoin ``alias.ts > floor`` per log occurrence (mirrors
        :meth:`Enforcer.add_policy`); async policies get the same
        semantics for free by starting from empty state."""
        if self.floor is None:
            return select
        structure = analyze_structure(select, registry)
        extra = [
            ast.BinaryOp(">", ast.col(alias, "ts"), ast.lit(self.floor))
            for alias in sorted(structure.log_occurrences)
        ]
        if not extra:
            return select
        return select.replace(
            where=ast.conjoin(ast.conjuncts(select.where) + extra)
        )

    def filtered(self, rows: Iterable[tuple]) -> list[tuple]:
        """Drop rows at or below the policy's history floor."""
        if self.floor is None:
            return list(rows)
        return [row for row in rows if row and row[0] > self.floor]


class Reservation:
    """Staged mirror rows for one in-flight strict admission."""

    __slots__ = ("timestamp", "tids")

    def __init__(self, timestamp: int, tids: "dict[str, list[int]]") -> None:
        self.timestamp = timestamp
        self.tids = tids


class GlobalTier:
    """Coordinator-side aggregator answering global policy checks."""

    def __init__(
        self,
        prototype,
        *,
        mode: str = "async",
        directory=None,
        wal_sync: bool = True,
        max_entries: int = 100_000,
    ) -> None:
        #: ``"async"`` folds incrementalizable policies from streamed
        #: deltas; ``"strict"`` serializes every admission through the
        #: mirror for single-shard-oracle equivalence.
        self.mode = mode
        # Private clone: its engine generates log rows for strict
        # reservations and its catalog donates base tables to the delta
        # scratch and the strict mirror. Never the live reference — the
        # tier must not race shard 0's engine in thread mode.
        self._private = prototype.clone(reset_log=True)
        self.registry = self._private.registry
        self.clock = self._private.clock
        self.max_entries = max_entries
        #: Serializes timestamp assignment and every global check; the
        #: coordinator holds it across reserve → commit for strict.
        self.admission_lock = threading.RLock()
        self._lock = threading.RLock()
        self._policies: dict[str, _GlobalPolicy] = {}

        # Async fold machinery: a scratch database per the maintainer's
        # pattern (tiny log tables refilled per delta, base tables
        # attached by reference) and a folder thread off a queue.
        self._scratch = Database()
        self._scratch_engine = Engine(self._scratch)
        self._queue: "queue.Queue" = queue.Queue()
        self._last_fold = time.monotonic()
        self._folder: Optional[threading.Thread] = None
        self._closed = False

        # Strict mirror: one global copy of the log relations strict
        # policies read, plus the clock relation and base tables.
        self._mirror = Database()
        self._mirror.create_table(CLOCK_TABLE, ["ts"])
        self._mirror_engine = Engine(self._mirror)

        # Counters for /metrics.
        self.checks_async = 0
        self.checks_strict = 0
        self.denials_async = 0
        self.denials_strict = 0
        self.reservations_total = 0
        self.reservations_active = 0
        self.folds = 0
        self.delta_frames = 0

        # Durability.
        self._dir = Path(directory) if directory is not None else None
        self._wal: Optional[WriteAheadLog] = None
        self._checkpoint_floors: dict[str, Optional[int]] = {}
        self._checkpoint_records: list[dict] = []
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
            clock_floor = self._load_checkpoint()
            wal_path = self._dir / "global.wal"
            start_seq = 0
            if wal_path.exists():
                scan = read_wal(wal_path)
                for record in scan.records:
                    if record.get("seq", 0) <= self._wal_last_seq:
                        continue
                    if record.get("type") == "gtick":
                        clock_floor = max(clock_floor, int(record["ts"]))
                    start_seq = max(start_seq, record.get("seq", 0))
                start_seq = max(start_seq, self._wal_last_seq)
            self._wal = WriteAheadLog(
                wal_path, sync=wal_sync, start_seq=start_seq
            )
            if clock_floor > self.clock.now():
                self.clock.seek(clock_floor)

    _wal_last_seq = 0

    # -- policy set --------------------------------------------------------

    def install(
        self,
        policy: Policy,
        placement: PolicyPlacement,
        floor: Optional[int] = None,
    ) -> None:
        """Adopt one global policy (construction: ``floor=None`` — full
        history; runtime add passes ``floor=clock.now()``)."""
        with self._lock:
            if policy.name in self._checkpoint_floors and floor is None:
                # A previous incarnation added this policy at runtime;
                # keep honouring its history floor across restarts.
                floor = self._checkpoint_floors[policy.name]
            entry = _GlobalPolicy(
                policy,
                placement,
                floor=floor,
                registry=self.registry,
                database=self._private.database,
                max_entries=self.max_entries,
                force_strict=self.mode == "strict",
            )
            self._policies[policy.name] = entry
            for name in sorted(entry.log_relations):
                columns = list(self.registry.get(name).full_columns)
                if entry.plan is not None:
                    if not self._scratch.has_table(name):
                        self._scratch.create_table(name, columns)
                else:
                    if not self._mirror.has_table(name):
                        self._mirror.create_table(name, columns)
            if entry.plan is not None:
                for name in entry.plan.base_tables:
                    if not self._scratch.has_table(
                        name
                    ) and self._private.database.has_table(name):
                        self._scratch.attach(
                            self._private.database.table(name)
                        )
            else:
                reserved = {r.lower() for r in self.registry.names()}
                reserved.add(CLOCK_TABLE.lower())
                for name in self._private.database.table_names():
                    if (
                        not self._mirror.has_table(name)
                        and name.lower() not in reserved
                    ):
                        self._mirror.attach(
                            self._private.database.table(name)
                        )

    def add_policy(self, policy: Policy, placement: PolicyPlacement) -> None:
        """Runtime add: the policy's history starts now."""
        self.install(policy, placement, floor=self.clock.now())
        self.write_checkpoint()

    def remove_policy(self, name: str) -> None:
        with self._lock:
            self._policies.pop(name, None)
            self._checkpoint_floors.pop(name, None)
        self.write_checkpoint()

    def policy_names(self) -> list[str]:
        with self._lock:
            return sorted(self._policies)

    def placements(self) -> "list[PolicyPlacement]":
        with self._lock:
            return [
                entry.placement for entry in self._policies.values()
            ]

    def snapshot_entries(self) -> "list[dict]":
        """Tier policies in the ``GET /policies`` snapshot shape."""
        with self._lock:
            return [
                {
                    "name": entry.policy.name,
                    "sql": entry.policy.sql,
                    "message": entry.policy.message,
                    "description": entry.policy.description,
                    "placement": entry.placement.scope,
                    "classification": {
                        "incrementalizable": entry.plan is not None,
                        "reason": entry.placement.reason,
                    },
                }
                for entry in self._policies.values()
            ]

    @property
    def has_policies(self) -> bool:
        return bool(self._policies)

    @property
    def has_strict(self) -> bool:
        return any(entry.strict for entry in self._policies.values())

    def extra_persist_relations(self) -> set[str]:
        """Relations every shard must commit (and retain) for the tier."""
        with self._lock:
            extras: set[str] = set()
            for entry in self._policies.values():
                extras |= entry.log_relations
            return extras

    # -- timestamps --------------------------------------------------------

    def next_timestamp(self) -> int:
        """Assign the next global timestamp (call under admission_lock)."""
        return self.clock.advance()

    def note_denial(self, timestamp: int) -> None:
        """Record a tier-side denial so recovery never reuses its ts."""
        if self._wal is not None:
            self._wal.append({"type": "gtick", "ts": timestamp})

    # -- async checks ------------------------------------------------------

    def check_async(self, timestamp: int) -> list[Violation]:
        """Evaluate every async policy from folded state at ``timestamp``.

        The submitting query's own increment is *not* visible (it is
        generated shard-side after admission) — see the staleness window
        in the module docstring. A poisoned state fails closed.
        """
        violations: list[Violation] = []
        with self._lock:
            for entry in self._policies.values():
                if entry.state is None:
                    continue
                self.checks_async += 1
                try:
                    violated = entry.state.check(timestamp, ())
                except StatePoisoned as exc:
                    violated = True
                    reason = f"global state poisoned ({exc}); failing closed"
                    violations.append(
                        Violation(entry.policy.name, reason)
                    )
                    self.denials_async += 1
                    continue
                if violated:
                    violations.append(self._violation_for(entry))
                    self.denials_async += 1
        return violations

    # -- strict two-phase admission ---------------------------------------

    def reserve(
        self,
        sql: str,
        uid: int,
        timestamp: int,
        attributes: Optional[dict] = None,
    ) -> "tuple[Optional[Reservation], list[Violation]]":
        """Stage the query's log rows into the mirror and check every
        strict policy over mirror + increment.

        Returns ``(reservation, [])`` when all strict policies pass, or
        ``(None, violations)`` — the staged rows are already removed —
        when any fails. Call under ``admission_lock``.
        """
        with self._lock:
            needed = set()
            for entry in self._policies.values():
                if entry.strict:
                    needed |= entry.log_relations
            if not needed:
                return Reservation(timestamp, {}), []
            context = QueryContext.create(
                sql, uid, timestamp, self._private.engine, attributes
            )
            tids: dict[str, list[int]] = {}
            clock = self._mirror.table(CLOCK_TABLE)
            clock.clear()
            clock.insert((timestamp,))
            try:
                for name in sorted(needed):
                    function = self.registry.get(name)
                    rows = function.generate(context)
                    table = self._mirror.table(name)
                    tids[name] = list(
                        table.insert_many(
                            [(timestamp, *row) for row in rows]
                        )
                    )
            except PolicyError:
                self._drop(tids)
                raise
            violations: list[Violation] = []
            for entry in self._policies.values():
                if not entry.strict:
                    continue
                self.checks_strict += 1
                if not self._mirror_engine.is_empty(entry.select):
                    violations.append(self._violation_for(entry))
                    self.denials_strict += 1
            if violations:
                self._drop(tids)
                return None, violations
            self.reservations_total += 1
            self.reservations_active += 1
            return Reservation(timestamp, tids), []

    def commit_reservation(self, reservation: Reservation) -> None:
        """The shard allowed the query: its mirror rows become permanent."""
        with self._lock:
            if reservation.tids:
                self.reservations_active -= 1

    def abort_reservation(self, reservation: Reservation) -> None:
        """The shard denied (or died): remove the staged mirror rows."""
        with self._lock:
            if reservation.tids:
                self.reservations_active -= 1
            self._drop(reservation.tids)

    def _drop(self, tids: "dict[str, list[int]]") -> None:
        for name, staged in tids.items():
            if staged:
                self._mirror.table(name).delete_tids(set(staged))

    def _violation_for(self, entry: _GlobalPolicy) -> Violation:
        """Mirror :meth:`Enforcer._violation_for`'s message extraction."""
        message = entry.policy.message
        evidence = 1
        if entry.strict:
            result = self._mirror_engine.execute(entry.select)
            evidence = len(result.rows)
            if result.rows and isinstance(result.rows[0][0], str):
                message = " ".join(result.rows[0][0].split())
        return Violation(
            policy_name=entry.policy.name,
            message=message or f"policy {entry.policy.name!r} violated",
            evidence_rows=evidence,
        )

    # -- delta streaming ---------------------------------------------------

    def start(self) -> None:
        """Start the folder thread (idempotent)."""
        if self._folder is None:
            self._folder = threading.Thread(
                target=self._fold_loop, name="global-tier-folder", daemon=True
            )
            self._folder.start()

    def enqueue_delta(
        self, shard_index: int, timestamp: int, rows: "dict[str, list]"
    ) -> None:
        """A shard committed an increment; fold it asynchronously."""
        if self._closed:
            return
        self.delta_frames += 1
        self._queue.put((shard_index, timestamp, rows))

    def _fold_loop(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                _, timestamp, rows = item
                self._fold(timestamp, rows)
            except Exception:  # noqa: BLE001 - poison, never kill the loop
                with self._lock:
                    for entry in self._policies.values():
                        if entry.state is not None and not entry.state.poisoned:
                            entry.state.poisoned = "fold crashed"
            finally:
                self._queue.task_done()

    def _fold(self, timestamp: int, rows: "dict[str, list]") -> None:
        normalized = {
            name.lower(): [tuple(row) for row in relation_rows]
            for name, relation_rows in rows.items()
        }
        with self._lock:
            for entry in self._policies.values():
                if entry.state is None or entry.state.poisoned:
                    continue
                if not any(
                    normalized.get(rel) for rel in entry.plan.log_relations
                ):
                    continue
                try:
                    entry.state.fold_rows(
                        self._delta_rows(entry, normalized)
                    )
                except Exception as exc:  # noqa: BLE001
                    entry.state.poisoned = str(exc) or type(exc).__name__
            self._last_fold = time.monotonic()
            self.folds += 1

    def _delta_rows(self, entry: _GlobalPolicy, rows_by_relation):
        for name in entry.plan.log_relations:
            table = self._scratch.table(name)
            table.clear()
            table.insert_many(
                entry.filtered(rows_by_relation.get(name, ()))
            )
        return self._scratch_engine.execute(entry.plan.delta).rows

    def flush(self) -> None:
        """Block until every enqueued delta has folded (test hook; this
        is what collapses the staleness window to the current query)."""
        self._queue.join()

    def delta_lag(self) -> int:
        """Deltas enqueued but not yet folded."""
        return self._queue.qsize()

    def staleness_seconds(self) -> float:
        """Seconds since the last fold while deltas are pending (0.0 when
        the folder is caught up)."""
        if self._queue.unfinished_tasks == 0:
            return 0.0
        return max(0.0, time.monotonic() - self._last_fold)

    # -- bootstrap / recovery ---------------------------------------------

    def bootstrap(
        self,
        shard_dumps: "list[dict[str, list[tuple]]]",
        shard_clocks: "Iterable[int]" = (),
    ) -> None:
        """Rebuild aggregate state and the strict mirror from the shards'
        (WAL-recovered) disk images, then start the folder thread.

        Shards retain every committed row of the tier's relations (see
        ``Enforcer.extra_persist_relations``), so the union of their
        disk images is the complete global history and this rebuild is
        exact — a recovered tier reaches the same state as one that
        never went down.
        """
        merged: dict[str, list[tuple]] = {}
        for dump in shard_dumps:
            for name, rows in dump.items():
                merged.setdefault(name.lower(), []).extend(
                    tuple(row) for row in rows
                )
        max_ts = 0
        for rows in merged.values():
            rows.sort(key=lambda row: row[0])
            if rows:
                max_ts = max(max_ts, rows[-1][0])
        with self._lock:
            for entry in self._policies.values():
                if entry.state is not None:
                    entry.state = PolicyState(entry.plan, self.max_entries)
                    try:
                        entry.state.fold_rows(
                            self._delta_rows(entry, merged)
                        )
                    except Exception as exc:  # noqa: BLE001
                        entry.state.poisoned = (
                            str(exc) or type(exc).__name__
                        )
                else:
                    for name in entry.log_relations:
                        table = self._mirror.table(name)
                        table.clear()
                        table.insert_many(merged.get(name, ()))
            floor = max([max_ts, *[int(c) for c in shard_clocks]])
            if floor > self.clock.now():
                self.clock.seek(floor)
        self.start()

    def _load_checkpoint(self) -> int:
        """Adopt the checkpointed clock and history floors; returns the
        clock floor (0 when absent/invalid)."""
        path = self._dir / "state.json"
        if not path.exists():
            return 0
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return 0
        if payload.get("format") != CHECKPOINT_FORMAT:
            return 0
        self._wal_last_seq = int(payload.get("wal_last_seq", 0))
        records = payload.get("policies", [])
        if isinstance(records, list):
            self._checkpoint_records = [
                dict(record) for record in records if isinstance(record, dict)
            ]
            self._checkpoint_floors = {
                record["name"]: (
                    int(record["floor"])
                    if record.get("floor") is not None
                    else None
                )
                for record in self._checkpoint_records
                if "name" in record
            }
        return int(payload.get("clock", 0))

    def checkpointed_policies(self) -> "list[Policy]":
        """The global policy set a previous incarnation checkpointed
        (authoritative across restarts, like shard-recovered local sets);
        empty when there is no usable checkpoint."""
        policies = []
        for record in self._checkpoint_records:
            try:
                policies.append(
                    Policy.from_sql(
                        record["name"],
                        record["sql"],
                        record.get("description", ""),
                    )
                )
            except (KeyError, ReproError):
                continue
        return policies

    def write_checkpoint(self) -> None:
        """Atomically persist the clock + history floors beside the WAL."""
        if self._dir is None:
            return
        with self._lock:
            payload = {
                "format": CHECKPOINT_FORMAT,
                "clock": self.clock.now(),
                "policies": [
                    {
                        "name": entry.policy.name,
                        "sql": entry.policy.sql,
                        "description": entry.policy.description,
                        "floor": entry.floor,
                    }
                    for entry in self._policies.values()
                ],
                "wal_last_seq": (
                    self._wal.last_seq if self._wal is not None else 0
                ),
            }
            tmp = self._dir / "state.json.tmp"
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, self._dir / "state.json")
            if self._wal is not None:
                self._wal.reset()

    # -- lifecycle / introspection ----------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._folder is not None:
            self._queue.put(None)
            self._folder.join(timeout=10)
            self._folder = None
        self.write_checkpoint()
        if self._wal is not None:
            self._wal.close()

    def stats(self) -> dict:
        with self._lock:
            entries = {
                name: {
                    "scope": entry.placement.scope,
                    "entries": (
                        entry.state.entries()
                        if entry.state is not None
                        else None
                    ),
                    "poisoned": (
                        entry.state.poisoned
                        if entry.state is not None
                        else False
                    ),
                }
                for name, entry in self._policies.items()
            }
            return {
                "policies": entries,
                "checks": {
                    "async": self.checks_async,
                    "strict": self.checks_strict,
                },
                "denials": {
                    "async": self.denials_async,
                    "strict": self.denials_strict,
                },
                "reservations": {
                    "total": self.reservations_total,
                    "active": self.reservations_active,
                },
                "folds": self.folds,
                "delta_frames": self.delta_frames,
                "delta_lag": self.delta_lag(),
                "staleness_seconds": self.staleness_seconds(),
            }
