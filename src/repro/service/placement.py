"""Shard-safety classification of policies.

Routing every query to ``shard(uid)`` preserves enforcement semantics
only when no policy needs to combine usage-log rows that live on
different shards. This module classifies each policy as **local**
(per-uid sharding is sound) or **global** (a witness can span shards, so
the policy needs a single global view of the log).

A policy's violation witness is a set of log rows satisfying its WHERE
(and, with aggregation, a whole group). Sharding is sound for a policy
when every witness it can ever produce is co-located on the shard that
evaluates it. Four shapes guarantee that:

1. **No log atoms** — the policy never reads the usage log.
2. **uid-pinned** — every ts-component of log atoms contains a ``users``
   atom with ``uid = <constant>``, all pins equal. All matched rows
   belong to one user, whose entire history lives on one shard; only
   that user's submissions can change the matched set, and those are
   evaluated exactly there.
3. **Current-query** — every log atom's ts is equated with the clock's
   ts: the witness is confined to the submitting query's own increment,
   which is staged on the submitting shard.
4. **Single-query witness** — all log atoms sit in one ts-equijoin
   component (every witness has a single timestamp, i.e. one query's
   rows, which one shard holds completely), and any aggregation is
   per-query (ts among the GROUP BY keys). Historical single-query
   violations cannot be standing — they were rejected and discarded at
   their own submit time — so only the current increment can fire the
   policy, on its own shard.

Shapes 2 and 4 additionally require every clock predicate to be
*window-limiting* (normalized ``c.ts <(=) bound``): an expanding bound
(``c.ts > bound``) lets a violation appear by pure passage of time, and
such a violation would only be noticed on the shard that happens to hold
the aging rows.

Everything else — the canonical case being a windowed aggregate without
a uid pin (a global volume quota, a distinct-users-per-window cap) — is
**global**: its witness mixes rows of different users, which per-uid
routing spreads over shards. Global policies are further split by how
the coordinator's global tier (:mod:`repro.service.global_tier`) can
answer them:

- **global-async** — the policy is a monotone aggregate threshold the
  incremental classifier can plan
  (:func:`repro.incremental.classify_policy`), so the aggregator can
  fold streamed shard deltas into running state and answer checks from
  that state with a bounded staleness window.
- **global-strict** — anything else; enforcement needs a two-phase
  reserve → commit/abort admission serialized at the coordinator.

Without a global tier (``ServiceConfig(global_tier="off")``), installing
any global policy on a multi-shard service raises
:class:`~repro.errors.PolicyPlacementError`; deploy with ``--shards 1``
(or rewrite the policy per-uid) instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis import analyze_structure, referenced_log_relations
from ..analysis.features import PolicyStructure, ts_joined_with_clock
from ..core.policy import Policy
from ..incremental import classify_policy as incremental_classify
from ..log import LogRegistry
from ..sql import ast

SCOPE_LOCAL = "local"
#: Umbrella scope: any policy whose witness can span shards.
SCOPE_GLOBAL = "global"
#: Global policy answerable from folded aggregator state (staleness-bounded).
SCOPE_GLOBAL_ASYNC = "global-async"
#: Global policy needing two-phase reserve/commit admission.
SCOPE_GLOBAL_STRICT = "global-strict"

GLOBAL_SCOPES = frozenset({SCOPE_GLOBAL, SCOPE_GLOBAL_ASYNC, SCOPE_GLOBAL_STRICT})


@dataclass(frozen=True)
class PolicyPlacement:
    """Where a policy may be evaluated, and why."""

    policy_name: str
    scope: str  # SCOPE_LOCAL | SCOPE_GLOBAL_ASYNC | SCOPE_GLOBAL_STRICT
    reason: str
    #: The pinned uid for uid-pinned policies (routing/diagnostics).
    pinned_uid: Optional[int] = None

    @property
    def is_local(self) -> bool:
        return self.scope == SCOPE_LOCAL

    @property
    def is_global(self) -> bool:
        return self.scope in GLOBAL_SCOPES


def _global_scope(policy: Policy, registry: LogRegistry, database, reason: str
                  ) -> PolicyPlacement:
    """Refine a global verdict into async (plannable fold) or strict."""
    classification = incremental_classify(
        policy.name, policy.select, registry, database
    )
    if classification.plan is not None:
        return PolicyPlacement(
            policy.name,
            SCOPE_GLOBAL_ASYNC,
            f"{reason}; monotone aggregate: answerable from folded "
            "aggregator state",
        )
    return PolicyPlacement(policy.name, SCOPE_GLOBAL_STRICT, reason)


def classify_policy(
    policy: Policy, registry: LogRegistry, database=None
) -> PolicyPlacement:
    """Classify one policy as shard-local, global-async or global-strict.

    ``database`` (when provided) lets the incremental classifier resolve
    base-table references while deciding whether a global policy's
    aggregate can be folded asynchronously; without it every global
    policy that references base tables classifies strict.
    """
    select = policy.select
    structure = analyze_structure(select, registry)

    referenced = referenced_log_relations(select, registry)
    if not referenced and not structure.log_occurrences:
        return PolicyPlacement(policy.name, SCOPE_LOCAL, "no usage-log atoms")

    # Log atoms hidden inside FROM subqueries escape the structural
    # analysis below; stay conservative.
    if referenced != set(
        structure.log_occurrences.values()
    ) or structure.subqueries:
        return _global_scope(
            policy, registry, database, "log atoms inside subqueries"
        )

    pins = _uid_pins(structure)
    pin_values = set(pins.values())
    components = {
        frozenset(component) for component in structure.ts_components.values()
    }
    limiting = _window_limiting(structure)

    # Shape 2: every component pinned to the same uid constant.
    if (
        len(pin_values) == 1
        and all(any(alias in pins for alias in comp) for comp in components)
    ):
        if limiting:
            return PolicyPlacement(
                policy.name,
                SCOPE_LOCAL,
                "uid-pinned: all log atoms belong to one user's history",
                pinned_uid=next(iter(pin_values)),
            )
        return _global_scope(
            policy,
            registry,
            database,
            "uid-pinned but the clock bound can expand over time",
        )

    # Shape 3: every log atom at the current timestamp.
    current = ts_joined_with_clock(structure)
    if current >= set(structure.log_occurrences):
        return PolicyPlacement(
            policy.name,
            SCOPE_LOCAL,
            "current-query: all log atoms are pinned to the clock's ts",
        )

    # Shape 4: one ts-component and per-query aggregation (if any).
    if len(components) == 1 and limiting:
        if select.having is None:
            return PolicyPlacement(
                policy.name,
                SCOPE_LOCAL,
                "single-query witness: all log atoms share one timestamp",
            )
        if _groups_by_log_ts(select, structure):
            return PolicyPlacement(
                policy.name,
                SCOPE_LOCAL,
                "per-query groups: aggregation is keyed by a log ts",
            )
        return _global_scope(
            policy,
            registry,
            database,
            "cross-user aggregate: HAVING ranges over many queries' rows",
        )

    return _global_scope(
        policy,
        registry,
        database,
        "witness can combine log rows of different users/queries",
    )


def classify_policies(
    policies, registry: LogRegistry, database=None
) -> "list[PolicyPlacement]":
    return [
        classify_policy(policy, registry, database) for policy in policies
    ]


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _uid_pins(structure: PolicyStructure) -> "dict[str, int]":
    """Log aliases pinned by an ``alias.uid = <int literal>`` conjunct."""
    pins: dict[str, int] = {}
    for conjunct in structure.conjuncts:
        pair = _pin_pair(conjunct, structure)
        if pair is not None:
            alias, value = pair
            pins[alias] = value
    return pins


def _pin_pair(
    conjunct: ast.Expr, structure: PolicyStructure
) -> "Optional[tuple[str, int]]":
    if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
        return None
    for ref, other in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        if not (isinstance(ref, ast.ColumnRef) and ref.name == "uid"):
            continue
        if not (
            isinstance(other, ast.Literal)
            and isinstance(other.value, int)
            and not isinstance(other.value, bool)
        ):
            continue
        alias = ref.table.lower() if ref.table else None
        if alias is None:
            candidates = [
                a
                for a, columns in structure.alias_columns.items()
                if "uid" in columns and a in structure.log_occurrences
            ]
            alias = candidates[0] if len(candidates) == 1 else None
        if (
            alias in structure.log_occurrences
            and "uid" in structure.alias_columns.get(alias, [])
        ):
            return alias, other.value
    return None


def _window_limiting(structure: PolicyStructure) -> bool:
    """True when every clock predicate shrinks (or fixes) the matched
    window as time passes — the same condition §4.3's improved partials
    need, for the same reason: no violation can appear without a new
    increment."""
    if structure.clock_predicates is None:
        return False
    return all(
        predicate.op in ("<", "<=", "=")
        for predicate in structure.clock_predicates
    )


def _groups_by_log_ts(
    select: ast.Select, structure: PolicyStructure
) -> bool:
    """True when some GROUP BY key is a log atom's ts column."""
    for expr in select.group_by:
        if not (isinstance(expr, ast.ColumnRef) and expr.name == "ts"):
            continue
        alias = expr.table.lower() if expr.table else None
        if alias in structure.log_occurrences:
            return True
    return False
