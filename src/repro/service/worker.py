"""The shard worker process: one shared-nothing enforcer behind a pipe.

:func:`worker_main` is the child-process entry point spawned by
:class:`~repro.service.process.ProcessShard`. It rebuilds this shard's
enforcer — from the coordinator's bootstrap snapshot on a fresh boot, or
by WAL replay (:func:`~repro.storage.wal.recover_enforcer`, bit-identical
state) when the shard's durability directory already holds state — and
then hosts a real thread-backed :class:`~repro.service.shard.Shard`
around it, so admission, batching, group commit, checkpoint cadence, and
the slow-query ring behave exactly as in thread mode.

The main thread is the IPC loop: it reads framed requests
(:mod:`repro.service.ipc`) and dispatches them. Query checks run on the
shard's worker threads and answer from future callbacks (a shared send
lock serializes the pipe), so control messages — policy broadcasts,
stats scrapes, drain — are never stuck behind a slow check. EOF on the
pipe means the coordinator is gone; the worker drains and exits.
"""

from __future__ import annotations

import os
import signal
import threading
import traceback
from dataclasses import replace
from typing import Optional

from ..core import Decision, Enforcer, Policy, Violation, explain_decision
from ..engine import Engine, Result
from ..errors import (
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from ..log import LogicalClock, SimulatedClock
from ..storage.snapshot import restore_enforcer
from ..storage.wal import has_state, initialize_durability, recover_enforcer
from .global_tier import DeltaTee
from .ipc import recv_message, send_message
from .shard import Shard, ShardDurability


def clock_spec(clock) -> Optional[dict]:
    """A picklable description of a clock's kind and state.

    ``restore_enforcer`` defaults to ``SimulatedClock(start_ms=...)``,
    which would silently drop a custom step — and a different step means
    different timestamps, which means decisions stop being bit-identical
    to the thread-mode baseline. So the coordinator ships the prototype
    clock's exact kind/state and the worker rebuilds it.
    """
    if isinstance(clock, SimulatedClock):
        return {"kind": "simulated", "start": clock.now(), "step": clock._step}
    if isinstance(clock, LogicalClock):
        return {"kind": "logical", "start": clock.now(), "step": clock._step}
    return None


def clock_from_spec(spec: Optional[dict]):
    if spec is None:
        return None
    if spec["kind"] == "simulated":
        return SimulatedClock(
            start_ms=spec["start"], default_step_ms=spec["step"]
        )
    return LogicalClock(start=spec["start"], step=spec["step"])


# ---------------------------------------------------------------------------
# Serialization helpers (child side)
# ---------------------------------------------------------------------------


def decision_to_json(decision: Decision) -> dict:
    payload: dict = {
        "allowed": decision.allowed,
        "timestamp": decision.timestamp,
        "sql": decision.sql,
        "uid": decision.uid,
        "violations": [
            {
                "policy_name": violation.policy_name,
                "message": violation.message,
                "evidence_rows": violation.evidence_rows,
            }
            for violation in decision.violations
        ],
        "result": None,
    }
    result = decision.result
    if result is not None:
        payload["result"] = {
            "columns": list(result.columns),
            "rows": [list(row) for row in result.rows],
            "statements": result.statements,
        }
    return payload


def decision_from_json(payload: dict) -> Decision:
    """Rebuild a decision coordinator-side.

    Trace spans and phase metrics do not cross the process boundary
    (``span``/``metrics`` are ``None``); the worker already folded them
    into its own counters, which the coordinator aggregates via the
    stats/export RPCs instead.
    """
    result = None
    if payload.get("result") is not None:
        raw = payload["result"]
        result = Result(
            columns=list(raw["columns"]),
            rows=[tuple(row) for row in raw["rows"]],
            statements=raw.get("statements", 1),
        )
    return Decision(
        allowed=payload["allowed"],
        timestamp=payload["timestamp"],
        violations=[
            Violation(
                violation["policy_name"],
                violation["message"],
                violation.get("evidence_rows", 1),
            )
            for violation in payload.get("violations", [])
        ],
        result=result,
        metrics=None,
        sql=payload.get("sql", ""),
        uid=payload.get("uid", 0),
        span=None,
    )


def _policy_listing(enforcer: Enforcer) -> "list[dict]":
    return [
        {
            "name": policy.name,
            "sql": policy.sql,
            "description": policy.description,
        }
        for policy in enforcer.policies
    ]


# ---------------------------------------------------------------------------
# Boot: rebuild this shard's enforcer
# ---------------------------------------------------------------------------


def _build_shard(spec: dict) -> "tuple[Shard, Optional[dict]]":
    """The shard this worker hosts, plus its recovery report (if any)."""
    clock = clock_from_spec(spec["clock"])
    shard_dir = spec["shard_dir"]
    report = None
    if shard_dir is not None and has_state(shard_dir):
        enforcer, wal, recovery = recover_enforcer(
            shard_dir, clock=clock, sync=spec["wal_sync"]
        )
        report = recovery.as_dict()
    else:
        enforcer = restore_enforcer(spec["bootstrap_dir"], clock=clock)
        if spec["index"] > 0:
            # Mirror thread mode: shard 0 adopts the prototype's state
            # (usage log included); the rest are clones over the same
            # base tables with empty per-shard usage logs.
            enforcer = enforcer.clone()
        wal = None
        if shard_dir is not None:
            wal = initialize_durability(
                enforcer, shard_dir, sync=spec["wal_sync"]
            )

    options = enforcer.options
    overrides = spec["options"]
    engine = (
        overrides.get("engine")
        if overrides.get("engine") is not None
        else options.engine
    )
    if (
        options.tracing != overrides["tracing"]
        or options.decision_cache != overrides["decision_cache"]
        or options.decision_cache_size != overrides["decision_cache_size"]
        or options.incremental != overrides["incremental"]
        or options.engine != engine
    ):
        enforcer.options = replace(
            options,
            tracing=overrides["tracing"],
            decision_cache=overrides["decision_cache"],
            decision_cache_size=overrides["decision_cache_size"],
            incremental=overrides["incremental"],
            engine=engine,
        )
    # The execution engine is built in ``Enforcer.__init__``; rebuild it
    # when the service config picked a different one than the snapshot.
    if enforcer.engine.engine_name != enforcer.options.engine_name:
        enforcer.engine = Engine(
            enforcer.database, enforcer.options.engine
        )

    durability = None
    if wal is not None:
        durability = ShardDurability(
            shard_dir,
            wal,
            checkpoint_every=spec["checkpoint_every"],
            sync=spec["wal_sync"],
        )
    shard = Shard(
        spec["index"],
        enforcer,
        queue_depth=spec["queue_depth"],
        workers=spec["workers"],
        dispatch_seconds=spec["dispatch_seconds"],
        latency_window=spec["latency_window"],
        durability=durability,
        slow_query_seconds=spec["slow_query_seconds"],
        batch_size=spec["batch_size"],
    )
    shard.epoch = spec["epoch"]
    return shard, report


# ---------------------------------------------------------------------------
# Request handling
# ---------------------------------------------------------------------------


def _handle_query(shard: Shard, msg: dict, reply) -> None:
    request_id = msg["id"]
    try:
        future = shard.offer_query(
            msg["sql"],
            uid=msg.get("uid", 0),
            execute=msg.get("execute"),
            attributes=msg.get("attributes"),
            timestamp=msg.get("timestamp"),
        )
    except ServiceOverloadedError as error:
        reply({
            "type": "result", "id": request_id, "ok": False,
            "kind": "overloaded", "error": str(error),
            "shard": error.shard, "retry_after": error.retry_after,
        })
        return
    except ServiceClosedError as error:
        reply({
            "type": "result", "id": request_id, "ok": False,
            "kind": "closed", "error": str(error),
        })
        return

    def complete(done) -> None:
        try:
            decision = done.result()
        except ServiceClosedError as error:
            payload = {"ok": False, "kind": "closed", "error": str(error)}
        except ReproError as error:
            payload = {"ok": False, "kind": "repro", "error": str(error)}
        except BaseException as error:  # noqa: BLE001 - forwarded verbatim
            payload = {"ok": False, "kind": "internal", "error": repr(error)}
        else:
            payload = {"ok": True, "decision": decision_to_json(decision)}
        payload["type"] = "result"
        payload["id"] = request_id
        reply(payload)

    future.add_done_callback(complete)


def _handle_control(shard: Shard, spec: dict, msg: dict) -> dict:
    mtype = msg["type"]
    enforcer = shard.enforcer
    if mtype == "policy":
        with shard.lock:
            if msg["action"] == "add":
                enforcer.add_policy(
                    Policy.from_sql(
                        msg["name"], msg["sql"], msg.get("description", "")
                    )
                )
            else:
                enforcer.remove_policy(msg["name"])
            if shard.durability is not None:
                # Policy texts live in the checkpoint manifest, not WAL
                # records — same rule as the thread-mode broadcast.
                shard.durability.checkpoint(enforcer)
        shard.epoch = msg["epoch"]
        return {"ok": True, "epoch": shard.epoch}
    if mtype == "set_epoch":
        shard.epoch = msg["epoch"]
        return {"ok": True}
    if mtype == "stats":
        return {"ok": True, "stats": shard.stats_entry(spec["queue_capacity"])}
    if mtype == "export":
        return {"ok": True, "state": shard.export_state()}
    if mtype == "log_sizes":
        return {"ok": True, "sizes": shard.log_sizes()}
    if mtype == "slow":
        return {"ok": True, "entries": shard.slow_entries()}
    if mtype == "durability":
        return {"ok": True, "status": shard.durability_state()}
    if mtype == "policies":
        with shard.lock:
            return {"ok": True, "policies": _policy_listing(enforcer)}
    if mtype == "explain_analyze":
        with shard.lock:
            plan = enforcer.engine.explain(msg["sql"], analyze=True)
        return {"ok": True, "plan": plan}
    if mtype == "explain_decision":
        decision = Decision(
            allowed=False,
            timestamp=msg["timestamp"],
            violations=[
                Violation(
                    violation["policy_name"],
                    violation["message"],
                    violation.get("evidence_rows", 1),
                )
                for violation in msg["violations"]
            ],
            sql=msg["sql"],
            uid=msg["uid"],
        )
        with shard.lock:
            explanations = explain_decision(enforcer, decision)
        return {
            "ok": True,
            "evidence": [
                {
                    "policy": explanation.policy_name,
                    "tuples": [
                        {
                            "relation": evidence.relation,
                            "values": list(evidence.values),
                            "from_current_query": evidence.from_current_query,
                        }
                        for evidence in explanation.evidence
                    ],
                }
                for explanation in explanations
            ],
        }
    if mtype == "extras":
        with shard.lock:
            enforcer.extra_persist_relations = {
                name.lower() for name in msg.get("relations", [])
            }
        return {"ok": True}
    if mtype == "logdump":
        # Committed rows of the tier's relations plus this shard's clock,
        # for aggregator bootstrap. Rows come from the store's persisted
        # image (``_disk``), which WAL recovery rebuilds bit-identically.
        wanted = {name.lower() for name in msg.get("relations", [])}
        with shard.lock:
            store = enforcer.store
            rows = {
                name: [list(values) for _, values in store._disk[name]]
                for name in wanted
                if name in store._disk
            }
            now = enforcer.clock.now()
        return {"ok": True, "rows": rows, "clock": now}
    if mtype == "ping":
        return {"ok": True, "pid": os.getpid()}
    return {"ok": False, "kind": "internal", "error": f"unknown type {mtype!r}"}


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def worker_main(conn, spec: dict) -> None:
    """Child-process main: boot the shard, serve the pipe, drain on exit."""
    # The coordinator owns interrupt handling; a Ctrl+C in the parent
    # must not kill workers mid-commit (drain/terminate does that).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass

    try:
        shard, report = _build_shard(spec)
    except BaseException:  # noqa: BLE001 - boot failures must surface
        send_message(
            conn,
            {"type": "hello", "error": traceback.format_exc(limit=20)},
        )
        conn.close()
        return

    send_lock = threading.Lock()

    def reply(payload: dict) -> None:
        try:
            with send_lock:
                send_message(conn, payload)
        except (BrokenPipeError, OSError):  # parent gone; nothing to tell
            pass

    extras = spec.get("extra_persist") or []
    if extras:
        shard.enforcer.extra_persist_relations = {
            name.lower() for name in extras
        }
    if spec.get("stream_deltas"):
        # Stream every committed usage-log increment to the coordinator's
        # global tier as an unsolicited frame on the same crc32-framed
        # pipe. Emitted inside the shard lock during commit, so frames
        # arrive in timestamp order (workers=1 under a global tier).
        def stream_delta(timestamp: int, inserted: dict) -> None:
            reply({
                "type": "delta",
                "ts": timestamp,
                "rows": {
                    name: [list(row) for row in rows]
                    for name, rows in inserted.items()
                },
            })

        shard.enforcer.store.attach_observer(
            DeltaTee(shard.enforcer, stream_delta)
        )

    reply({
        "type": "hello",
        "pid": os.getpid(),
        "policies": _policy_listing(shard.enforcer),
        "recovery": report,
    })

    try:
        while True:
            try:
                msg = recv_message(conn)
            except (EOFError, OSError):
                break
            if msg is None:  # corrupt frame: treat the pipe as dead
                break
            mtype = msg.get("type")
            if mtype == "query":
                _handle_query(shard, msg, reply)
                continue
            if mtype == "drain":
                shard.drain()
                reply({"type": "result", "id": msg["id"], "ok": True})
                break
            try:
                payload = _handle_control(shard, spec, msg)
            except BaseException as error:  # noqa: BLE001 - forwarded
                payload = {
                    "ok": False, "kind": "internal", "error": repr(error),
                }
            payload["type"] = "result"
            payload["id"] = msg["id"]
            reply(payload)
    finally:
        # Idempotent: a served drain already checkpointed and closed the
        # WAL; an EOF-triggered exit gets the same clean shutdown.
        shard.drain()
        conn.close()
