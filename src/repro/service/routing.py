"""The shard router: a stable uid → shard mapping.

Usage-log state is naturally partitionable by ``uid``: every query's log
increments carry the submitting user's timestamp, and per-user policies
(rate limits, per-subscriber quotas) only read that user's slice of the
log. Routing each uid to a fixed shard therefore keeps all the state a
per-user policy can touch on one enforcer — see
:mod:`repro.service.placement` for the shapes where this is sound.

The hash is a fixed integer mixer (splitmix64 finalizer), not Python's
salted ``hash``, so placement is stable across processes and restarts.
"""

from __future__ import annotations

from ..errors import ServiceError

_MASK = 0xFFFFFFFFFFFFFFFF


def mix64(value: int) -> int:
    """The splitmix64 finalizer: avalanche a 64-bit integer."""
    x = value & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


class ShardRouter:
    """Maps uids onto ``n_shards`` buckets."""

    def __init__(self, n_shards: int, strategy: str = "hash"):
        if n_shards < 1:
            raise ServiceError("need at least one shard")
        if strategy not in ("hash", "modulo"):
            raise ServiceError(f"unknown routing strategy {strategy!r}")
        self.n_shards = n_shards
        self.strategy = strategy

    def shard_for(self, uid: int) -> int:
        if self.n_shards == 1:
            return 0
        if self.strategy == "modulo":
            return uid % self.n_shards
        return mix64(uid) % self.n_shards

    def partition(self, uids) -> dict:
        """Group ``uids`` by shard index (diagnostics and tests)."""
        groups: dict[int, list[int]] = {}
        for uid in uids:
            groups.setdefault(self.shard_for(uid), []).append(uid)
        return groups
