"""The coordinator: shard fan-out, policy broadcasts, aggregation.

:class:`ShardedEnforcerService` replaces the old single-lock HTTP facade
with N independent :class:`~repro.service.shard.Shard` instances. Queries
route by uid (:mod:`repro.service.routing`), so different users' policy
checks run in parallel; cross-shard operations go through here:

- **policy install/remove** broadcasts to every shard under an *epoch*:
  all shard locks are taken (in index order) before any shard is
  mutated, so no query ever observes a half-applied policy set;
- **log sizes / stats** aggregate per-shard views;
- **drain** stops admission and flushes every shard's backlog before
  shutdown.

Installing a policy the placement analysis marks *global* (see
:mod:`repro.service.placement`) on a multi-shard service raises
:class:`~repro.errors.PolicyPlacementError` — per-uid routing would
silently under-enforce it.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from ..core import Decision, Enforcer, Policy
from ..obs import build_service_registry
from ..errors import (
    PolicyError,
    PolicyPlacementError,
    ServiceClosedError,
    ServiceError,
)
from ..storage.wal import has_state, initialize_durability, recover_enforcer
from .config import ServiceConfig
from .placement import PolicyPlacement, classify_policy
from .routing import ShardRouter
from .shard import Shard, ShardDurability


class ShardedEnforcerService:
    """A concurrent, multi-tenant enforcement gateway."""

    def __init__(
        self,
        enforcer: Enforcer,
        config: Optional[ServiceConfig] = None,
    ):
        self.config = config or ServiceConfig()
        self.router = ShardRouter(self.config.shards, self.config.routing)
        self._admin_lock = threading.RLock()
        self._epoch = 0
        self._closed = False
        #: One :class:`~repro.storage.wal.RecoveryReport` per shard that
        #: was rebuilt from durable state on startup.
        self.recovery_reports: list = []

        # Shard 0 adopts the caller's enforcer (single-shard deployments
        # behave exactly like the old facade); the rest are clones over
        # the same base tables with empty per-shard usage logs. With a
        # data_dir configured, shards holding durable state are instead
        # *recovered* from it — the caller's enforcer serves as the
        # prototype for the registry and clock kind.
        pairs = self._build_shard_enforcers(enforcer)

        # The service config owns the tracing and decision-cache
        # switches: apply them to every shard enforcer (including
        # recovered ones, whose checkpoints may predate the options or
        # carry different settings). A recovered enforcer's cache starts
        # empty by construction — verdict memos never survive a restart.
        for shard_enforcer, _ in pairs:
            options = shard_enforcer.options
            if (
                options.tracing != self.config.tracing
                or options.decision_cache != self.config.decision_cache
                or options.decision_cache_size != self.config.decision_cache_size
                or options.incremental != self.config.incremental
            ):
                shard_enforcer.options = replace(
                    options,
                    tracing=self.config.tracing,
                    decision_cache=self.config.decision_cache,
                    decision_cache_size=self.config.decision_cache_size,
                    incremental=self.config.incremental,
                )

        reference = pairs[0][0]
        placements = [
            classify_policy(policy, reference.registry)
            for policy in reference.policies
        ]
        self._check_placements(placements)

        self.shards = [
            Shard(
                index,
                shard_enforcer,
                queue_depth=self.config.queue_depth,
                workers=self.config.workers,
                dispatch_seconds=self.config.dispatch_seconds,
                latency_window=self.config.latency_window,
                durability=durability,
                slow_query_seconds=self.config.slow_query_seconds,
                batch_size=self.config.batch_size,
            )
            for index, (shard_enforcer, durability) in enumerate(pairs)
        ]
        #: Prometheus surface (GET /metrics); collectors snapshot the
        #: shards at scrape time, so building it up front is free.
        self.metrics_registry = build_service_registry(self)
        #: Immutable snapshot read lock-free by GET /policies and /health.
        self._policy_snapshot: tuple = ()
        self._refresh_snapshot(reference.policies, placements)

    def _build_shard_enforcers(
        self, prototype: Enforcer
    ) -> "list[tuple[Enforcer, Optional[ShardDurability]]]":
        """One (enforcer, durability) pair per shard, recovering durable
        state where it exists."""
        if not self.config.data_dir:
            return [(prototype, None)] + [
                (prototype.clone(), None)
                for _ in range(1, self.config.shards)
            ]

        root = Path(self.config.data_dir)
        pairs: "list[tuple[Enforcer, Optional[ShardDurability]]]" = []
        for index in range(self.config.shards):
            shard_dir = root / f"shard-{index}"
            if has_state(shard_dir):
                shard_enforcer, wal, report = recover_enforcer(
                    shard_dir,
                    registry=prototype.registry,
                    clock=prototype.clock.clone(),
                    sync=self.config.wal_sync,
                )
                self.recovery_reports.append(report)
            else:
                shard_enforcer = (
                    prototype if index == 0 else prototype.clone()
                )
                wal = initialize_durability(
                    shard_enforcer, shard_dir, sync=self.config.wal_sync
                )
            pairs.append(
                (
                    shard_enforcer,
                    ShardDurability(
                        shard_dir,
                        wal,
                        checkpoint_every=self.config.checkpoint_every,
                        sync=self.config.wal_sync,
                    ),
                )
            )

        # A crash mid-broadcast can leave shards with diverged policy
        # sets; refusing to serve beats silently under-enforcing.
        names = [p.name for p in pairs[0][0].policies]
        for index, (shard_enforcer, _) in enumerate(pairs[1:], start=1):
            shard_names = [p.name for p in shard_enforcer.policies]
            if shard_names != names:
                raise ServiceError(
                    f"recovered policy sets diverge: shard 0 has {names}, "
                    f"shard {index} has {shard_names}; re-apply the "
                    "missing policy changes before serving"
                )
        return pairs

    # ------------------------------------------------------------------
    # query admission
    # ------------------------------------------------------------------

    def shard_for(self, uid: int) -> int:
        return self.router.shard_for(uid)

    def submit(
        self,
        sql: str,
        uid: int = 0,
        execute: Optional[bool] = None,
        attributes: Optional[dict] = None,
    ) -> Decision:
        """Route, enqueue, and wait for one policy check.

        Raises :class:`~repro.errors.ServiceOverloadedError` when the
        target shard's queue is full, :class:`ServiceClosedError` while
        draining, and whatever the enforcer raises for bad SQL.
        """
        if self._closed:
            raise ServiceClosedError("service is shut down")
        shard = self.shards[self.shard_for(uid)]
        future = shard.offer(
            lambda enforcer: enforcer.submit(
                sql, uid=uid, execute=execute, attributes=attributes
            )
        )
        return future.result()

    # ------------------------------------------------------------------
    # policy management (cross-shard broadcasts)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    def policies(self) -> "list[dict]":
        """Lock-free policy listing (snapshot semantics)."""
        return [dict(entry) for entry in self._policy_snapshot]

    def placements(self) -> "list[PolicyPlacement]":
        with self._admin_lock:
            reference = self.shards[0].enforcer
            return [
                classify_policy(policy, reference.registry)
                for policy in reference.policies
            ]

    def add_policy(self, policy: Policy) -> int:
        """Install on every shard atomically; returns the new epoch."""
        with self._admin_lock:
            reference = self.shards[0].enforcer
            if any(p.name == policy.name for p in reference.policies):
                raise PolicyError(f"policy {policy.name!r} already exists")
            placement = classify_policy(policy, reference.registry)
            self._check_placements([placement])
            with self._all_shard_locks():
                for shard in self.shards:
                    shard.enforcer.add_policy(policy)
                self._checkpoint_locked()
                return self._bump_epoch()

    def remove_policy(self, name: str) -> int:
        with self._admin_lock:
            reference = self.shards[0].enforcer
            if not any(p.name == name for p in reference.policies):
                raise PolicyError(f"no policy {name!r}")
            with self._all_shard_locks():
                for shard in self.shards:
                    shard.enforcer.remove_policy(name)
                self._checkpoint_locked()
                return self._bump_epoch()

    def has_policy(self, name: str) -> bool:
        return any(entry["name"] == name for entry in self._policy_snapshot)

    def _bump_epoch(self) -> int:
        """Advance the epoch; caller holds admin + all shard locks."""
        self._epoch += 1
        for shard in self.shards:
            shard.epoch = self._epoch
        reference = self.shards[0].enforcer
        self._refresh_snapshot(
            reference.policies,
            [
                classify_policy(policy, reference.registry)
                for policy in reference.policies
            ],
        )
        return self._epoch

    def _checkpoint_locked(self) -> None:
        """Checkpoint every shard; caller holds all shard locks.

        Policy texts live in the checkpoint manifest, not in WAL records,
        so a policy change is only durable once every shard has
        checkpointed — done inside the broadcast's lock scope so no
        query lands between the change and its persistence.
        """
        for shard in self.shards:
            if shard.durability is not None:
                shard.durability.checkpoint(shard.enforcer)

    def _all_shard_locks(self) -> ExitStack:
        """Acquire every shard lock in index order (no deadlock: workers
        only ever hold their own shard's lock)."""
        stack = ExitStack()
        for shard in self.shards:
            stack.enter_context(shard.lock)
        return stack

    def _check_placements(self, placements: Sequence[PolicyPlacement]) -> None:
        if self.config.shards == 1:
            return
        offenders = [p for p in placements if not p.is_local]
        if offenders:
            details = "; ".join(
                f"{p.policy_name}: {p.reason}" for p in offenders
            )
            raise PolicyPlacementError(
                "cannot enforce global policies on a sharded service "
                f"(use --shards 1 or rewrite them per-uid): {details}"
            )

    def _refresh_snapshot(self, policies, placements) -> None:
        # Per-policy incremental classification from shard 0 (the offline
        # phase is identical on every shard); unified groups report the
        # same verdict for each member policy.
        classifications: dict = {}
        for entry in self.shards[0].enforcer.incremental_report():
            verdict = {
                "incrementalizable": entry["incrementalizable"],
                "reason": entry["reason"],
            }
            for member in entry["policies"]:
                classifications[member] = verdict
        self._policy_snapshot = tuple(
            {
                "name": policy.name,
                "sql": policy.sql,
                "message": policy.message,
                "description": policy.description,
                "placement": placement.scope,
                "classification": classifications.get(
                    policy.name,
                    {"incrementalizable": False, "reason": "unclassified"},
                ),
            }
            for policy, placement in zip(policies, placements)
        )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def log_sizes(self) -> "dict[str, int]":
        """Usage-log sizes summed across shards."""
        totals: dict[str, int] = {}
        for sizes in self.per_shard_log_sizes():
            for name, size in sizes.items():
                totals[name] = totals.get(name, 0) + size
        return totals

    def per_shard_log_sizes(self) -> "list[dict[str, int]]":
        sizes = []
        for shard in self.shards:
            with shard.lock:
                sizes.append(shard.enforcer.log_sizes())
        return sizes

    def stats(self) -> dict:
        """The service metrics surface (never touches a shard lock)."""
        shard_stats = []
        for shard in self.shards:
            snapshot = shard.counters.snapshot()
            snapshot["shard"] = shard.index
            snapshot["epoch"] = shard.epoch
            snapshot["queue_depth"] = shard.queue_depth()
            snapshot["queue_capacity"] = self.config.queue_depth
            cache = shard.enforcer.decision_cache
            if cache is not None:
                snapshot["decision_cache"] = cache.stats.as_dict()
            maintainer = shard.enforcer.incremental
            if maintainer is not None:
                incremental = maintainer.stats.as_dict()
                incremental["state_entries"] = maintainer.state_entries()
                snapshot["incremental"] = incremental
            shard_stats.append(snapshot)
        totals = {
            key: sum(entry[key] for entry in shard_stats)
            for key in (
                "admitted", "rejected", "completed",
                "allowed", "denied", "errors", "slow",
            )
        }
        return {
            "epoch": self._epoch,
            "shards": self.config.shards,
            "workers": self.config.workers,
            "queue_depth": self.config.queue_depth,
            "routing": self.config.routing,
            "durable": bool(self.config.data_dir),
            "tracing": self.config.tracing,
            "batch_size": self.config.batch_size,
            "decision_cache": self.config.decision_cache,
            "incremental": self.config.incremental,
            "per_shard": shard_stats,
            "totals": totals,
        }

    def render_metrics(self) -> str:
        """The Prometheus text exposition (GET /metrics)."""
        return self.metrics_registry.render()

    def slow_queries(self) -> "list[dict]":
        """Recent slow checks across shards, most recent last."""
        entries: "list[dict]" = []
        for shard in self.shards:
            entries.extend(shard.counters.slow_entries())
        entries.sort(key=lambda entry: entry.get("timestamp", 0))
        return entries

    def durability_status(self) -> dict:
        """The durability surface (GET /durability)."""
        if not self.config.data_dir:
            return {"enabled": False}
        return {
            "enabled": True,
            "data_dir": str(self.config.data_dir),
            "wal_sync": self.config.wal_sync,
            "checkpoint_every": self.config.checkpoint_every,
            "recovered_shards": [
                report.as_dict() for report in self.recovery_reports
            ],
            "per_shard": [
                shard.durability.status()
                for shard in self.shards
                if shard.durability is not None
            ],
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> None:
        """Flush every shard's backlog and stop the workers."""
        self._closed = True
        for shard in self.shards:
            shard.drain(timeout)

    close = drain

    @property
    def closed(self) -> bool:
        return self._closed
