"""The coordinator: shard fan-out, policy broadcasts, aggregation.

:class:`ShardedEnforcerService` replaces the old single-lock HTTP facade
with N independent :class:`~repro.service.shard.Shard` instances. Queries
route by uid (:mod:`repro.service.routing`), so different users' policy
checks run in parallel; cross-shard operations go through here:

- **policy install/remove** broadcasts to every shard under an *epoch*:
  all shard locks are taken (in index order) before any shard is
  mutated, so no query ever observes a half-applied policy set;
- **log sizes / stats** aggregate per-shard views;
- **drain** stops admission and flushes every shard's backlog before
  shutdown.

Installing a policy the placement analysis marks *global* (see
:mod:`repro.service.placement`) on a multi-shard service raises
:class:`~repro.errors.PolicyPlacementError` — per-uid routing would
silently under-enforce it — unless the service runs with a **global
tier** (``ServiceConfig(global_tier="async"|"strict")``, see
:mod:`repro.service.global_tier`). With the tier active the coordinator
assigns every query's timestamp from the tier's clock, answers
``global-async`` policies from cross-shard folded aggregate state
before admission, and runs ``global-strict`` policies through a
two-phase reserve → commit/abort admission; shards stream their
committed log increments back to the tier.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from contextlib import ExitStack
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from ..core import Decision, Enforcer, Policy, explain_decision
from ..engine import Engine
from ..obs import build_service_registry
from ..errors import (
    PolicyError,
    PolicyPlacementError,
    ReproError,
    ServiceClosedError,
    ServiceError,
)
from ..storage.snapshot import save_enforcer_state
from ..storage.wal import (
    RecoveryReport,
    has_state,
    initialize_durability,
    recover_enforcer,
)
from .config import ServiceConfig
from .global_tier import DeltaTee, GlobalTier
from .placement import (
    SCOPE_GLOBAL_ASYNC,
    PolicyPlacement,
    classify_policy,
)
from .process import ProcessShard
from .routing import ShardRouter
from .shard import Shard, ShardDurability
from .worker import clock_spec


class ShardedEnforcerService:
    """A concurrent, multi-tenant enforcement gateway."""

    def __init__(
        self,
        enforcer: Enforcer,
        config: Optional[ServiceConfig] = None,
    ):
        self.config = config or ServiceConfig()
        self.router = ShardRouter(self.config.shards, self.config.routing)
        self._admin_lock = threading.RLock()
        self._epoch = 0
        self._closed = False
        #: ``thread`` or ``process`` — which kind of shard backs this
        #: service (see :class:`~repro.service.process.ProcessShard`).
        self.workers_mode = self.config.workers_mode
        #: One :class:`~repro.storage.wal.RecoveryReport` per shard that
        #: was rebuilt from durable state on startup.
        self.recovery_reports: list = []
        #: Bootstrap snapshot directory for process workers (cleaned on
        #: drain); None in thread mode.
        self._bootstrap_dir: Optional[Path] = None
        #: The global policy tier (None when ``global_tier="off"`` or the
        #: service has a single shard — one shard *is* the global view).
        self._tier: Optional[GlobalTier] = None
        self.shards: list = []

        tier_enabled = (
            self.config.global_tier != "off" and self.config.shards > 1
        )
        if tier_enabled:
            try:
                self._init_global_tier(enforcer)
            except PolicyPlacementError:
                self._abort_startup()
                raise

        try:
            if self.workers_mode == "process":
                self._init_process_shards(enforcer)
            else:
                self._init_thread_shards(enforcer)
        except ReproError:
            self._abort_startup()
            raise

        reference = self._reference
        placements = [
            classify_policy(policy, reference.registry, reference.database)
            for policy in reference.policies
        ]
        try:
            self._check_placements(placements)
            if self._tier is not None:
                self._connect_tier()
        except ReproError:
            self._abort_startup()
            raise
        #: Prometheus surface (GET /metrics); collectors snapshot the
        #: shards at scrape time, so building it up front is free.
        self.metrics_registry = build_service_registry(self)
        #: Immutable snapshot read lock-free by GET /policies and /health.
        self._policy_snapshot: tuple = ()
        self._refresh_snapshot(reference.policies, placements)

    def _init_global_tier(self, prototype: Enforcer) -> None:
        """Build the tier, adopt the global policies, and strip them from
        the prototype so no shard ever evaluates them locally."""
        placements = [
            classify_policy(policy, prototype.registry, prototype.database)
            for policy in prototype.policies
        ]
        self._check_placements(placements)
        tier_dir = (
            Path(self.config.data_dir) / "global"
            if self.config.data_dir
            else None
        )
        tier = GlobalTier(
            prototype,
            mode=self.config.global_tier,
            directory=tier_dir,
            wal_sync=self.config.wal_sync,
            max_entries=prototype.options.incremental_max_entries,
        )
        checkpointed = tier.checkpointed_policies()
        if checkpointed:
            # A previous incarnation's global set is authoritative (the
            # same rule shard recovery applies to local policies).
            for policy in checkpointed:
                placement = classify_policy(
                    policy, prototype.registry, prototype.database
                )
                self._check_placements([placement])
                tier.install(policy, placement)
        else:
            for policy, placement in zip(prototype.policies, placements):
                if not placement.is_local:
                    tier.install(policy, placement)
        # No shard may ever evaluate a global policy locally: strip every
        # non-local policy from the prototype (when a checkpoint was
        # authoritative, the checkpointed set wins — the same rule shard
        # recovery applies to construction-time local policies).
        for policy, placement in zip(list(prototype.policies), placements):
            if not placement.is_local:
                prototype.remove_policy(policy.name)
        self._tier = tier

    def _connect_tier(self) -> None:
        """Wire delta streaming from every (possibly recovered) shard and
        rebuild the tier's aggregate state from their disk images."""
        tier = self._tier
        extras = tier.extra_persist_relations()
        dumps: list = []
        clocks: list = []
        for shard in self.shards:
            if isinstance(shard, ProcessShard):
                dump = shard.log_dump(sorted(extras))
                dumps.append(dump.get("rows", {}))
                clocks.append(int(dump.get("clock", 0)))
            else:
                shard_enforcer = shard.enforcer
                shard_enforcer.extra_persist_relations = set(extras)
                shard_enforcer.store.attach_observer(
                    DeltaTee(
                        shard_enforcer,
                        self._delta_sink_for(shard.index),
                    )
                )
                disk = shard_enforcer.store._disk  # noqa: SLF001
                dumps.append(
                    {
                        name: [row for _, row in entries]
                        for name, entries in disk.items()
                        if name in extras
                    }
                )
                clocks.append(shard_enforcer.clock.now())
        tier.bootstrap(dumps, clocks)

    def _delta_sink_for(self, index: int):
        def sink(timestamp: int, rows: dict) -> None:
            tier = self._tier
            if tier is not None:
                tier.enqueue_delta(index, timestamp, rows)

        return sink

    def _on_shard_delta(self, index: int, message: dict) -> None:
        """Process-mode delta frames land here from the IPC read loop."""
        tier = self._tier
        if tier is not None:
            tier.enqueue_delta(
                index, int(message.get("ts", 0)), message.get("rows", {})
            )

    def _abort_startup(self) -> None:
        """Tear down a half-built service without leaking workers.

        ``drain`` bounds how long it waits for a wedged shard; process
        workers are then terminated/joined unconditionally so a shard
        that failed to drain inside the timeout cannot leak a live
        process (the re-raised startup error already tells the caller
        nothing is serving).
        """
        try:
            self.drain(timeout=5)
        except Exception:  # noqa: BLE001 - the startup error must win
            pass
        finally:
            for shard in self.shards:
                force = getattr(shard, "force_stop", None)
                if force is not None:
                    try:
                        force()
                    except Exception:  # noqa: BLE001 - already tearing down
                        pass
            if self._tier is not None:
                self._tier.close()
                self._tier = None

    def _init_thread_shards(self, enforcer: Enforcer) -> None:
        # Shard 0 adopts the caller's enforcer (single-shard deployments
        # behave exactly like the old facade); the rest are clones over
        # the same base tables with empty per-shard usage logs. With a
        # data_dir configured, shards holding durable state are instead
        # *recovered* from it — the caller's enforcer serves as the
        # prototype for the registry and clock kind.
        pairs = self._build_shard_enforcers(enforcer)

        # The service config owns the tracing and decision-cache
        # switches: apply them to every shard enforcer (including
        # recovered ones, whose checkpoints may predate the options or
        # carry different settings). A recovered enforcer's cache starts
        # empty by construction — verdict memos never survive a restart.
        for shard_enforcer, _ in pairs:
            self._apply_option_overrides(shard_enforcer)

        self._reference = pairs[0][0]
        self.shards: list = [
            Shard(
                index,
                shard_enforcer,
                queue_depth=self.config.queue_depth,
                workers=self.config.workers,
                dispatch_seconds=self.config.dispatch_seconds,
                latency_window=self.config.latency_window,
                durability=durability,
                slow_query_seconds=self.config.slow_query_seconds,
                batch_size=self.config.batch_size,
            )
            for index, (shard_enforcer, durability) in enumerate(pairs)
        ]

    def _init_process_shards(self, prototype: Enforcer) -> None:
        """Spawn one worker process per shard.

        The caller's enforcer never serves queries here: it is saved as
        the *bootstrap snapshot* the workers restore from (shard 0
        adopts its full state, the rest clone with empty usage logs —
        exactly the thread-mode split), and then kept as the in-process
        *reference* for placement checks, policy validation, and the
        lock-free policy snapshot. Shards with durable state ignore the
        bootstrap and recover by WAL replay in the worker instead.
        """
        self._apply_option_overrides(prototype)
        self._reference = prototype
        # Fail fast (before paying any spawn) when the caller's policy
        # set is un-shardable; recovered sets are re-checked after boot.
        self._check_placements([
            classify_policy(policy, prototype.registry, prototype.database)
            for policy in prototype.policies
        ])

        bootstrap = Path(tempfile.mkdtemp(prefix="repro-bootstrap-"))
        save_enforcer_state(prototype, bootstrap)
        self._bootstrap_dir = bootstrap
        root = Path(self.config.data_dir) if self.config.data_dir else None
        spec = {
            "bootstrap_dir": str(bootstrap),
            "wal_sync": self.config.wal_sync,
            "checkpoint_every": self.config.checkpoint_every,
            # The worker's internal queue holds the whole admission
            # window (waiting + executing); the coordinator enforces
            # the 429 boundary, so the worker itself never rejects.
            "queue_depth": self.config.queue_depth + self.config.workers,
            "queue_capacity": self.config.queue_depth,
            "workers": self.config.workers,
            "dispatch_seconds": self.config.dispatch_seconds,
            "latency_window": self.config.latency_window,
            "slow_query_seconds": self.config.slow_query_seconds,
            "batch_size": self.config.batch_size,
            "clock": clock_spec(prototype.clock),
            "epoch": 0,
            "options": {
                "tracing": self.config.tracing,
                "decision_cache": self.config.decision_cache,
                "decision_cache_size": self.config.decision_cache_size,
                "incremental": self.config.incremental,
                "engine": self.config.engine,
            },
        }
        if self._tier is not None:
            spec["stream_deltas"] = True
            spec["extra_persist"] = sorted(
                self._tier.extra_persist_relations()
            )
        self.shards = []
        for index in range(self.config.shards):
            shard_spec = dict(spec)
            shard_spec["index"] = index
            shard_spec["shard_dir"] = (
                str(root / f"shard-{index}") if root else None
            )
            self.shards.append(
                ProcessShard(
                    index,
                    shard_spec,
                    self.config.queue_depth,
                    policy_source=self._reference_policies,
                    delta_sink=(
                        self._on_shard_delta
                        if self._tier is not None
                        else None
                    ),
                )
            )

        self.recovery_reports = [
            RecoveryReport(**shard.hello["recovery"])
            for shard in self.shards
            if shard.hello.get("recovery")
        ]
        # A crash mid-broadcast can leave shards with diverged policy
        # sets; refusing to serve beats silently under-enforcing.
        names = [p["name"] for p in self.shards[0].hello["policies"]]
        for shard in self.shards[1:]:
            shard_names = [p["name"] for p in shard.hello["policies"]]
            if shard_names != names:
                raise ServiceError(
                    f"recovered policy sets diverge: shard 0 has {names}, "
                    f"shard {shard.index} has {shard_names}; re-apply the "
                    "missing policy changes before serving"
                )
        # Recovered workers may carry policies the caller's prototype
        # lacks (installed in a previous run): sync the reference so
        # the policy surface reflects what is actually enforced.
        if [p.name for p in self._reference.policies] != names:
            for policy in list(self._reference.policies):
                self._reference.remove_policy(policy.name)
            for entry in self.shards[0].hello["policies"]:
                self._reference.add_policy(
                    Policy.from_sql(
                        entry["name"],
                        entry["sql"],
                        entry.get("description", ""),
                    )
                )

    def _apply_option_overrides(self, shard_enforcer: Enforcer) -> None:
        options = shard_enforcer.options
        engine = (
            self.config.engine
            if self.config.engine is not None
            else options.engine
        )
        if (
            options.tracing != self.config.tracing
            or options.decision_cache != self.config.decision_cache
            or options.decision_cache_size != self.config.decision_cache_size
            or options.incremental != self.config.incremental
            or options.engine != engine
        ):
            shard_enforcer.options = replace(
                options,
                tracing=self.config.tracing,
                decision_cache=self.config.decision_cache,
                decision_cache_size=self.config.decision_cache_size,
                incremental=self.config.incremental,
                engine=engine,
            )
        # Decision cache and incremental maintainer read ``options``
        # lazily, but the execution engine is built in ``__init__`` —
        # rebuild it when the service config picked a different one.
        if (
            shard_enforcer.engine.engine_name
            != shard_enforcer.options.engine_name
        ):
            shard_enforcer.engine = Engine(
                shard_enforcer.database, shard_enforcer.options.engine
            )

    def _reference_policies(self) -> "tuple[int, list[dict]]":
        """The reference policy set, for respawned-worker re-sync."""
        with self._admin_lock:
            return self._epoch, [
                {
                    "name": policy.name,
                    "sql": policy.sql,
                    "description": policy.description,
                }
                for policy in self._reference.policies
            ]

    def _build_shard_enforcers(
        self, prototype: Enforcer
    ) -> "list[tuple[Enforcer, Optional[ShardDurability]]]":
        """One (enforcer, durability) pair per shard, recovering durable
        state where it exists."""
        if not self.config.data_dir:
            return [(prototype, None)] + [
                (prototype.clone(), None)
                for _ in range(1, self.config.shards)
            ]

        root = Path(self.config.data_dir)
        pairs: "list[tuple[Enforcer, Optional[ShardDurability]]]" = []
        for index in range(self.config.shards):
            shard_dir = root / f"shard-{index}"
            if has_state(shard_dir):
                shard_enforcer, wal, report = recover_enforcer(
                    shard_dir,
                    registry=prototype.registry,
                    clock=prototype.clock.clone(),
                    sync=self.config.wal_sync,
                )
                self.recovery_reports.append(report)
            else:
                shard_enforcer = (
                    prototype if index == 0 else prototype.clone()
                )
                wal = initialize_durability(
                    shard_enforcer, shard_dir, sync=self.config.wal_sync
                )
            pairs.append(
                (
                    shard_enforcer,
                    ShardDurability(
                        shard_dir,
                        wal,
                        checkpoint_every=self.config.checkpoint_every,
                        sync=self.config.wal_sync,
                    ),
                )
            )

        # A crash mid-broadcast can leave shards with diverged policy
        # sets; refusing to serve beats silently under-enforcing.
        names = [p.name for p in pairs[0][0].policies]
        for index, (shard_enforcer, _) in enumerate(pairs[1:], start=1):
            shard_names = [p.name for p in shard_enforcer.policies]
            if shard_names != names:
                raise ServiceError(
                    f"recovered policy sets diverge: shard 0 has {names}, "
                    f"shard {index} has {shard_names}; re-apply the "
                    "missing policy changes before serving"
                )
        return pairs

    # ------------------------------------------------------------------
    # query admission
    # ------------------------------------------------------------------

    def shard_for(self, uid: int) -> int:
        return self.router.shard_for(uid)

    def submit(
        self,
        sql: str,
        uid: int = 0,
        execute: Optional[bool] = None,
        attributes: Optional[dict] = None,
    ) -> Decision:
        """Route, enqueue, and wait for one policy check.

        Raises :class:`~repro.errors.ServiceOverloadedError` when the
        target shard's queue is full, :class:`ServiceClosedError` while
        draining, and whatever the enforcer raises for bad SQL.
        """
        if self._closed:
            raise ServiceClosedError("service is shut down")
        tier = self._tier
        shard = self.shards[self.shard_for(uid)]
        if tier is None:
            future = shard.offer_query(
                sql, uid=uid, execute=execute, attributes=attributes
            )
            return future.result()

        # Global tier: the coordinator owns the clock. Timestamp
        # assignment, the global checks, and the enqueue all happen under
        # the admission lock so every shard sees queries in global
        # timestamp order; the shard's answer is awaited outside the lock
        # unless a strict reservation is open (strict admissions are
        # serialized end-to-end — that is what makes them bit-identical
        # to a single-shard oracle).
        with tier.admission_lock:
            if self._closed:
                raise ServiceClosedError("service is shut down")
            timestamp = tier.next_timestamp()
            violations = tier.check_async(timestamp)
            reservation = None
            if not violations and tier.has_strict:
                reservation, violations = tier.reserve(
                    sql, uid, timestamp, attributes
                )
            if violations:
                tier.note_denial(timestamp)
                return Decision(
                    allowed=False,
                    timestamp=timestamp,
                    violations=violations,
                    sql=sql,
                    uid=uid,
                )
            try:
                future = shard.offer_query(
                    sql,
                    uid=uid,
                    execute=execute,
                    attributes=attributes,
                    timestamp=timestamp,
                )
            except ReproError:
                if reservation is not None:
                    tier.abort_reservation(reservation)
                tier.note_denial(timestamp)
                raise
            if reservation is not None:
                try:
                    decision = future.result()
                except BaseException:
                    tier.abort_reservation(reservation)
                    raise
                if decision.allowed:
                    tier.commit_reservation(reservation)
                else:
                    tier.abort_reservation(reservation)
                return decision
        return future.result()

    # ------------------------------------------------------------------
    # policy management (cross-shard broadcasts)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    def policies(self) -> "list[dict]":
        """Lock-free policy listing (snapshot semantics)."""
        return [dict(entry) for entry in self._policy_snapshot]

    def placements(self) -> "list[PolicyPlacement]":
        with self._admin_lock:
            reference = self._reference
            local = [
                classify_policy(policy, reference.registry, reference.database)
                for policy in reference.policies
            ]
            if self._tier is not None:
                local.extend(self._tier.placements())
            return local

    def add_policy(self, policy: Policy) -> int:
        """Install on every shard atomically; returns the new epoch.

        Thread mode takes every shard lock before mutating, so no query
        observes a half-applied policy set. Process mode broadcasts
        per-shard RPCs (each applied atomically under that worker's
        lock, checkpointed when durable) in shard order, rolling back
        the already-applied shards if one refuses — cross-shard
        atomicity is therefore *eventual within the broadcast*, the
        documented trade of moving shards out of the address space.
        """
        with self._admin_lock:
            reference = self._reference
            if any(p.name == policy.name for p in reference.policies) or (
                self._tier is not None
                and policy.name in self._tier.policy_names()
            ):
                raise PolicyError(f"policy {policy.name!r} already exists")
            placement = classify_policy(
                policy, reference.registry, reference.database
            )
            self._check_placements([placement])
            if self._tier is not None and not placement.is_local:
                self._tier.add_policy(policy, placement)
                self._push_extras()
                return self._bump_epoch(broadcast=True)
            if self.workers_mode == "process":
                new_epoch = self._epoch + 1
                applied = []
                try:
                    for shard in self.shards:
                        shard.apply_policy_change(
                            "add",
                            policy.name,
                            sql=policy.sql,
                            description=policy.description,
                            epoch=new_epoch,
                        )
                        applied.append(shard)
                except ReproError:
                    for shard in applied:
                        try:
                            shard.apply_policy_change(
                                "remove", policy.name, epoch=self._epoch
                            )
                        except ReproError:  # pragma: no cover - dead shard
                            pass
                    raise
                reference.add_policy(policy)
                return self._bump_epoch()
            with self._all_shard_locks():
                for shard in self.shards:
                    shard.enforcer.add_policy(policy)
                self._checkpoint_locked()
                return self._bump_epoch()

    def remove_policy(self, name: str) -> int:
        with self._admin_lock:
            reference = self._reference
            if (
                self._tier is not None
                and name in self._tier.policy_names()
            ):
                self._tier.remove_policy(name)
                self._push_extras()
                return self._bump_epoch(broadcast=True)
            removed = next(
                (p for p in reference.policies if p.name == name), None
            )
            if removed is None:
                raise PolicyError(f"no policy {name!r}")
            if self.workers_mode == "process":
                new_epoch = self._epoch + 1
                applied = []
                try:
                    for shard in self.shards:
                        shard.apply_policy_change(
                            "remove", name, epoch=new_epoch
                        )
                        applied.append(shard)
                except ReproError:
                    for shard in applied:
                        try:
                            shard.apply_policy_change(
                                "add",
                                name,
                                sql=removed.sql,
                                description=removed.description,
                                epoch=self._epoch,
                            )
                        except ReproError:  # pragma: no cover - dead shard
                            pass
                    raise
                reference.remove_policy(name)
                return self._bump_epoch()
            with self._all_shard_locks():
                for shard in self.shards:
                    shard.enforcer.remove_policy(name)
                self._checkpoint_locked()
                return self._bump_epoch()

    def has_policy(self, name: str) -> bool:
        return any(entry["name"] == name for entry in self._policy_snapshot)

    def _push_extras(self) -> None:
        """Refresh every shard's extra-persist set after the tier's
        policy set (and hence its relation needs) changed."""
        extras = self._tier.extra_persist_relations()
        for shard in self.shards:
            if isinstance(shard, ProcessShard):
                try:
                    shard.apply_extras(sorted(extras))
                except ReproError:  # dead shard: re-synced on respawn
                    pass
            else:
                with shard.lock:
                    shard.enforcer.extra_persist_relations = set(extras)

    def _bump_epoch(self, broadcast: bool = False) -> int:
        """Advance the epoch; caller holds the admin lock (and, in
        thread mode, all shard locks). ``broadcast`` pushes the new
        epoch to process workers too — global-only policy changes never
        go through a per-shard policy RPC, so the workers would
        otherwise stay on the old epoch until respawn."""
        self._epoch += 1
        for shard in self.shards:
            shard.epoch = self._epoch
            if broadcast and isinstance(shard, ProcessShard):
                try:
                    shard.set_epoch(self._epoch)
                except ReproError:  # dead shard: re-synced on respawn
                    pass
        reference = self._reference
        self._refresh_snapshot(
            reference.policies,
            [
                classify_policy(policy, reference.registry, reference.database)
                for policy in reference.policies
            ],
        )
        return self._epoch

    def _checkpoint_locked(self) -> None:
        """Checkpoint every shard; caller holds all shard locks.

        Policy texts live in the checkpoint manifest, not in WAL records,
        so a policy change is only durable once every shard has
        checkpointed — done inside the broadcast's lock scope so no
        query lands between the change and its persistence.
        """
        for shard in self.shards:
            if shard.durability is not None:
                shard.durability.checkpoint(shard.enforcer)

    def _all_shard_locks(self) -> ExitStack:
        """Acquire every shard lock in index order (no deadlock: workers
        only ever hold their own shard's lock)."""
        stack = ExitStack()
        for shard in self.shards:
            stack.enter_context(shard.lock)
        return stack

    def _check_placements(self, placements: Sequence[PolicyPlacement]) -> None:
        if self.config.shards == 1:
            return
        mode = self.config.global_tier
        offenders = []
        for placement in placements:
            if placement.is_local:
                continue
            if mode == "strict":
                continue
            if mode == "async" and placement.scope == SCOPE_GLOBAL_ASYNC:
                continue
            offenders.append(placement)
        if not offenders:
            return
        details = "; ".join(
            f"{p.policy_name}: {p.reason}" for p in offenders
        )
        if mode == "off":
            raise PolicyPlacementError(
                "cannot enforce global policies on a sharded service "
                f"(use --shards 1 or rewrite them per-uid): {details}"
            )
        raise PolicyPlacementError(
            "the async global tier only admits global-async policies; "
            f"these need --global-tier strict: {details}"
        )

    def _refresh_snapshot(self, policies, placements) -> None:
        # Per-policy incremental classification from the reference
        # enforcer (the offline phase is identical on every shard);
        # unified groups report the same verdict for each member policy.
        classifications: dict = {}
        for entry in self._reference.incremental_report():
            verdict = {
                "incrementalizable": entry["incrementalizable"],
                "reason": entry["reason"],
            }
            for member in entry["policies"]:
                classifications[member] = verdict
        entries = [
            {
                "name": policy.name,
                "sql": policy.sql,
                "message": policy.message,
                "description": policy.description,
                "placement": placement.scope,
                "classification": classifications.get(
                    policy.name,
                    {"incrementalizable": False, "reason": "unclassified"},
                ),
            }
            for policy, placement in zip(policies, placements)
        ]
        if self._tier is not None:
            entries.extend(self._tier.snapshot_entries())
        self._policy_snapshot = tuple(entries)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def log_sizes(self) -> "dict[str, int]":
        """Usage-log sizes summed across shards."""
        totals: dict[str, int] = {}
        for sizes in self.per_shard_log_sizes():
            for name, size in sizes.items():
                totals[name] = totals.get(name, 0) + size
        return totals

    def per_shard_log_sizes(self) -> "list[dict[str, int]]":
        return [shard.log_sizes() for shard in self.shards]

    def stats(self) -> dict:
        """The service metrics surface (never blocks behind a query:
        thread shards snapshot counters lock-free, process shards
        answer a stats RPC on their IPC thread)."""
        shard_stats = [
            shard.stats_entry(self.config.queue_depth)
            for shard in self.shards
        ]
        totals = {
            key: sum(entry[key] for entry in shard_stats)
            for key in (
                "admitted", "rejected", "completed",
                "allowed", "denied", "errors", "slow",
            )
        }
        entry = {
            "epoch": self._epoch,
            "shards": self.config.shards,
            "workers": self.config.workers,
            "workers_mode": self.workers_mode,
            "queue_depth": self.config.queue_depth,
            "routing": self.config.routing,
            "durable": bool(self.config.data_dir),
            "tracing": self.config.tracing,
            "batch_size": self.config.batch_size,
            "decision_cache": self.config.decision_cache,
            "incremental": self.config.incremental,
            "global_tier": self.config.global_tier,
            "per_shard": shard_stats,
            "totals": totals,
        }
        if self._tier is not None:
            entry["global"] = self._tier.stats()
        return entry

    @property
    def global_tier(self) -> Optional[GlobalTier]:
        """The live tier (None when off or single-shard)."""
        return self._tier

    def flush_global(self) -> None:
        """Block until every streamed shard delta has folded into the
        tier's aggregate state (collapses the async staleness window to
        the current query; a no-op without a tier)."""
        if self._tier is not None:
            self._tier.flush()

    def render_metrics(self) -> str:
        """The Prometheus text exposition (GET /metrics)."""
        return self.metrics_registry.render()

    def slow_queries(self) -> "list[dict]":
        """Recent slow checks across shards, most recent last."""
        entries: "list[dict]" = []
        for shard in self.shards:
            entries.extend(shard.slow_entries())
        entries.sort(key=lambda entry: entry.get("timestamp", 0))
        return entries

    def analyzed_plan(self, uid: int, sql: str) -> str:
        """Re-run a query under EXPLAIN ANALYZE on its routed shard."""
        shard = self.shards[self.shard_for(uid)]
        if self.workers_mode == "process":
            return shard.explain_analyze(sql)
        with shard.lock:
            return shard.enforcer.engine.explain(sql, analyze=True)

    def explain_evidence(self, uid: int, decision: Decision) -> "list[dict]":
        """Witness tuples for a denied decision, from its routed shard."""
        shard = self.shards[self.shard_for(uid)]
        if self.workers_mode == "process":
            return shard.explain_evidence(decision)
        with shard.lock:
            explanations = explain_decision(shard.enforcer, decision)
        return [
            {
                "policy": explanation.policy_name,
                "tuples": [
                    {
                        "relation": evidence.relation,
                        "values": list(evidence.values),
                        "from_current_query": evidence.from_current_query,
                    }
                    for evidence in explanation.evidence
                ],
            }
            for explanation in explanations
        ]

    def durability_status(self) -> dict:
        """The durability surface (GET /durability)."""
        if not self.config.data_dir:
            return {"enabled": False}
        return {
            "enabled": True,
            "data_dir": str(self.config.data_dir),
            "wal_sync": self.config.wal_sync,
            "checkpoint_every": self.config.checkpoint_every,
            "recovered_shards": [
                report.as_dict() for report in self.recovery_reports
            ],
            "per_shard": [
                status
                for status in (
                    shard.durability_state() for shard in self.shards
                )
                if status is not None
            ],
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> None:
        """Flush every shard's backlog and stop the workers."""
        self._closed = True
        for shard in self.shards:
            shard.drain(timeout)
        if self._tier is not None:
            self._tier.close()
        if self._bootstrap_dir is not None:
            shutil.rmtree(self._bootstrap_dir, ignore_errors=True)
            self._bootstrap_dir = None

    close = drain

    @property
    def closed(self) -> bool:
        return self._closed
