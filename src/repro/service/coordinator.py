"""The coordinator: shard fan-out, policy broadcasts, aggregation.

:class:`ShardedEnforcerService` replaces the old single-lock HTTP facade
with N independent :class:`~repro.service.shard.Shard` instances. Queries
route by uid (:mod:`repro.service.routing`), so different users' policy
checks run in parallel; cross-shard operations go through here:

- **policy install/remove** broadcasts to every shard under an *epoch*:
  all shard locks are taken (in index order) before any shard is
  mutated, so no query ever observes a half-applied policy set;
- **log sizes / stats** aggregate per-shard views;
- **drain** stops admission and flushes every shard's backlog before
  shutdown.

Installing a policy the placement analysis marks *global* (see
:mod:`repro.service.placement`) on a multi-shard service raises
:class:`~repro.errors.PolicyPlacementError` — per-uid routing would
silently under-enforce it.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
from contextlib import ExitStack
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from ..core import Decision, Enforcer, Policy, explain_decision
from ..obs import build_service_registry
from ..errors import (
    PolicyError,
    PolicyPlacementError,
    ReproError,
    ServiceClosedError,
    ServiceError,
)
from ..storage.snapshot import save_enforcer_state
from ..storage.wal import (
    RecoveryReport,
    has_state,
    initialize_durability,
    recover_enforcer,
)
from .config import ServiceConfig
from .placement import PolicyPlacement, classify_policy
from .process import ProcessShard
from .routing import ShardRouter
from .shard import Shard, ShardDurability
from .worker import clock_spec


class ShardedEnforcerService:
    """A concurrent, multi-tenant enforcement gateway."""

    def __init__(
        self,
        enforcer: Enforcer,
        config: Optional[ServiceConfig] = None,
    ):
        self.config = config or ServiceConfig()
        self.router = ShardRouter(self.config.shards, self.config.routing)
        self._admin_lock = threading.RLock()
        self._epoch = 0
        self._closed = False
        #: ``thread`` or ``process`` — which kind of shard backs this
        #: service (see :class:`~repro.service.process.ProcessShard`).
        self.workers_mode = self.config.workers_mode
        #: One :class:`~repro.storage.wal.RecoveryReport` per shard that
        #: was rebuilt from durable state on startup.
        self.recovery_reports: list = []
        #: Bootstrap snapshot directory for process workers (cleaned on
        #: drain); None in thread mode.
        self._bootstrap_dir: Optional[Path] = None

        if self.workers_mode == "process":
            self._init_process_shards(enforcer)
        else:
            self._init_thread_shards(enforcer)

        reference = self._reference
        placements = [
            classify_policy(policy, reference.registry)
            for policy in reference.policies
        ]
        try:
            self._check_placements(placements)
        except PolicyPlacementError:
            self.drain(timeout=5)
            raise
        #: Prometheus surface (GET /metrics); collectors snapshot the
        #: shards at scrape time, so building it up front is free.
        self.metrics_registry = build_service_registry(self)
        #: Immutable snapshot read lock-free by GET /policies and /health.
        self._policy_snapshot: tuple = ()
        self._refresh_snapshot(reference.policies, placements)

    def _init_thread_shards(self, enforcer: Enforcer) -> None:
        # Shard 0 adopts the caller's enforcer (single-shard deployments
        # behave exactly like the old facade); the rest are clones over
        # the same base tables with empty per-shard usage logs. With a
        # data_dir configured, shards holding durable state are instead
        # *recovered* from it — the caller's enforcer serves as the
        # prototype for the registry and clock kind.
        pairs = self._build_shard_enforcers(enforcer)

        # The service config owns the tracing and decision-cache
        # switches: apply them to every shard enforcer (including
        # recovered ones, whose checkpoints may predate the options or
        # carry different settings). A recovered enforcer's cache starts
        # empty by construction — verdict memos never survive a restart.
        for shard_enforcer, _ in pairs:
            self._apply_option_overrides(shard_enforcer)

        self._reference = pairs[0][0]
        self.shards: list = [
            Shard(
                index,
                shard_enforcer,
                queue_depth=self.config.queue_depth,
                workers=self.config.workers,
                dispatch_seconds=self.config.dispatch_seconds,
                latency_window=self.config.latency_window,
                durability=durability,
                slow_query_seconds=self.config.slow_query_seconds,
                batch_size=self.config.batch_size,
            )
            for index, (shard_enforcer, durability) in enumerate(pairs)
        ]

    def _init_process_shards(self, prototype: Enforcer) -> None:
        """Spawn one worker process per shard.

        The caller's enforcer never serves queries here: it is saved as
        the *bootstrap snapshot* the workers restore from (shard 0
        adopts its full state, the rest clone with empty usage logs —
        exactly the thread-mode split), and then kept as the in-process
        *reference* for placement checks, policy validation, and the
        lock-free policy snapshot. Shards with durable state ignore the
        bootstrap and recover by WAL replay in the worker instead.
        """
        self._apply_option_overrides(prototype)
        self._reference = prototype
        # Fail fast (before paying any spawn) when the caller's policy
        # set is un-shardable; recovered sets are re-checked after boot.
        self._check_placements([
            classify_policy(policy, prototype.registry)
            for policy in prototype.policies
        ])

        bootstrap = Path(tempfile.mkdtemp(prefix="repro-bootstrap-"))
        save_enforcer_state(prototype, bootstrap)
        self._bootstrap_dir = bootstrap
        root = Path(self.config.data_dir) if self.config.data_dir else None
        spec = {
            "bootstrap_dir": str(bootstrap),
            "wal_sync": self.config.wal_sync,
            "checkpoint_every": self.config.checkpoint_every,
            # The worker's internal queue holds the whole admission
            # window (waiting + executing); the coordinator enforces
            # the 429 boundary, so the worker itself never rejects.
            "queue_depth": self.config.queue_depth + self.config.workers,
            "queue_capacity": self.config.queue_depth,
            "workers": self.config.workers,
            "dispatch_seconds": self.config.dispatch_seconds,
            "latency_window": self.config.latency_window,
            "slow_query_seconds": self.config.slow_query_seconds,
            "batch_size": self.config.batch_size,
            "clock": clock_spec(prototype.clock),
            "epoch": 0,
            "options": {
                "tracing": self.config.tracing,
                "decision_cache": self.config.decision_cache,
                "decision_cache_size": self.config.decision_cache_size,
                "incremental": self.config.incremental,
            },
        }
        self.shards = []
        try:
            for index in range(self.config.shards):
                shard_spec = dict(spec)
                shard_spec["index"] = index
                shard_spec["shard_dir"] = (
                    str(root / f"shard-{index}") if root else None
                )
                self.shards.append(
                    ProcessShard(
                        index,
                        shard_spec,
                        self.config.queue_depth,
                        policy_source=self._reference_policies,
                    )
                )
        except ServiceError:
            self.drain(timeout=5)
            raise

        self.recovery_reports = [
            RecoveryReport(**shard.hello["recovery"])
            for shard in self.shards
            if shard.hello.get("recovery")
        ]
        # A crash mid-broadcast can leave shards with diverged policy
        # sets; refusing to serve beats silently under-enforcing.
        names = [p["name"] for p in self.shards[0].hello["policies"]]
        for shard in self.shards[1:]:
            shard_names = [p["name"] for p in shard.hello["policies"]]
            if shard_names != names:
                self.drain(timeout=5)
                raise ServiceError(
                    f"recovered policy sets diverge: shard 0 has {names}, "
                    f"shard {shard.index} has {shard_names}; re-apply the "
                    "missing policy changes before serving"
                )
        # Recovered workers may carry policies the caller's prototype
        # lacks (installed in a previous run): sync the reference so
        # the policy surface reflects what is actually enforced.
        if [p.name for p in self._reference.policies] != names:
            for policy in list(self._reference.policies):
                self._reference.remove_policy(policy.name)
            for entry in self.shards[0].hello["policies"]:
                self._reference.add_policy(
                    Policy.from_sql(
                        entry["name"],
                        entry["sql"],
                        entry.get("description", ""),
                    )
                )

    def _apply_option_overrides(self, shard_enforcer: Enforcer) -> None:
        options = shard_enforcer.options
        if (
            options.tracing != self.config.tracing
            or options.decision_cache != self.config.decision_cache
            or options.decision_cache_size != self.config.decision_cache_size
            or options.incremental != self.config.incremental
        ):
            shard_enforcer.options = replace(
                options,
                tracing=self.config.tracing,
                decision_cache=self.config.decision_cache,
                decision_cache_size=self.config.decision_cache_size,
                incremental=self.config.incremental,
            )

    def _reference_policies(self) -> "tuple[int, list[dict]]":
        """The reference policy set, for respawned-worker re-sync."""
        with self._admin_lock:
            return self._epoch, [
                {
                    "name": policy.name,
                    "sql": policy.sql,
                    "description": policy.description,
                }
                for policy in self._reference.policies
            ]

    def _build_shard_enforcers(
        self, prototype: Enforcer
    ) -> "list[tuple[Enforcer, Optional[ShardDurability]]]":
        """One (enforcer, durability) pair per shard, recovering durable
        state where it exists."""
        if not self.config.data_dir:
            return [(prototype, None)] + [
                (prototype.clone(), None)
                for _ in range(1, self.config.shards)
            ]

        root = Path(self.config.data_dir)
        pairs: "list[tuple[Enforcer, Optional[ShardDurability]]]" = []
        for index in range(self.config.shards):
            shard_dir = root / f"shard-{index}"
            if has_state(shard_dir):
                shard_enforcer, wal, report = recover_enforcer(
                    shard_dir,
                    registry=prototype.registry,
                    clock=prototype.clock.clone(),
                    sync=self.config.wal_sync,
                )
                self.recovery_reports.append(report)
            else:
                shard_enforcer = (
                    prototype if index == 0 else prototype.clone()
                )
                wal = initialize_durability(
                    shard_enforcer, shard_dir, sync=self.config.wal_sync
                )
            pairs.append(
                (
                    shard_enforcer,
                    ShardDurability(
                        shard_dir,
                        wal,
                        checkpoint_every=self.config.checkpoint_every,
                        sync=self.config.wal_sync,
                    ),
                )
            )

        # A crash mid-broadcast can leave shards with diverged policy
        # sets; refusing to serve beats silently under-enforcing.
        names = [p.name for p in pairs[0][0].policies]
        for index, (shard_enforcer, _) in enumerate(pairs[1:], start=1):
            shard_names = [p.name for p in shard_enforcer.policies]
            if shard_names != names:
                raise ServiceError(
                    f"recovered policy sets diverge: shard 0 has {names}, "
                    f"shard {index} has {shard_names}; re-apply the "
                    "missing policy changes before serving"
                )
        return pairs

    # ------------------------------------------------------------------
    # query admission
    # ------------------------------------------------------------------

    def shard_for(self, uid: int) -> int:
        return self.router.shard_for(uid)

    def submit(
        self,
        sql: str,
        uid: int = 0,
        execute: Optional[bool] = None,
        attributes: Optional[dict] = None,
    ) -> Decision:
        """Route, enqueue, and wait for one policy check.

        Raises :class:`~repro.errors.ServiceOverloadedError` when the
        target shard's queue is full, :class:`ServiceClosedError` while
        draining, and whatever the enforcer raises for bad SQL.
        """
        if self._closed:
            raise ServiceClosedError("service is shut down")
        shard = self.shards[self.shard_for(uid)]
        future = shard.offer_query(
            sql, uid=uid, execute=execute, attributes=attributes
        )
        return future.result()

    # ------------------------------------------------------------------
    # policy management (cross-shard broadcasts)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    def policies(self) -> "list[dict]":
        """Lock-free policy listing (snapshot semantics)."""
        return [dict(entry) for entry in self._policy_snapshot]

    def placements(self) -> "list[PolicyPlacement]":
        with self._admin_lock:
            reference = self._reference
            return [
                classify_policy(policy, reference.registry)
                for policy in reference.policies
            ]

    def add_policy(self, policy: Policy) -> int:
        """Install on every shard atomically; returns the new epoch.

        Thread mode takes every shard lock before mutating, so no query
        observes a half-applied policy set. Process mode broadcasts
        per-shard RPCs (each applied atomically under that worker's
        lock, checkpointed when durable) in shard order, rolling back
        the already-applied shards if one refuses — cross-shard
        atomicity is therefore *eventual within the broadcast*, the
        documented trade of moving shards out of the address space.
        """
        with self._admin_lock:
            reference = self._reference
            if any(p.name == policy.name for p in reference.policies):
                raise PolicyError(f"policy {policy.name!r} already exists")
            placement = classify_policy(policy, reference.registry)
            self._check_placements([placement])
            if self.workers_mode == "process":
                new_epoch = self._epoch + 1
                applied = []
                try:
                    for shard in self.shards:
                        shard.apply_policy_change(
                            "add",
                            policy.name,
                            sql=policy.sql,
                            description=policy.description,
                            epoch=new_epoch,
                        )
                        applied.append(shard)
                except ReproError:
                    for shard in applied:
                        try:
                            shard.apply_policy_change(
                                "remove", policy.name, epoch=self._epoch
                            )
                        except ReproError:  # pragma: no cover - dead shard
                            pass
                    raise
                reference.add_policy(policy)
                return self._bump_epoch()
            with self._all_shard_locks():
                for shard in self.shards:
                    shard.enforcer.add_policy(policy)
                self._checkpoint_locked()
                return self._bump_epoch()

    def remove_policy(self, name: str) -> int:
        with self._admin_lock:
            reference = self._reference
            removed = next(
                (p for p in reference.policies if p.name == name), None
            )
            if removed is None:
                raise PolicyError(f"no policy {name!r}")
            if self.workers_mode == "process":
                new_epoch = self._epoch + 1
                applied = []
                try:
                    for shard in self.shards:
                        shard.apply_policy_change(
                            "remove", name, epoch=new_epoch
                        )
                        applied.append(shard)
                except ReproError:
                    for shard in applied:
                        try:
                            shard.apply_policy_change(
                                "add",
                                name,
                                sql=removed.sql,
                                description=removed.description,
                                epoch=self._epoch,
                            )
                        except ReproError:  # pragma: no cover - dead shard
                            pass
                    raise
                reference.remove_policy(name)
                return self._bump_epoch()
            with self._all_shard_locks():
                for shard in self.shards:
                    shard.enforcer.remove_policy(name)
                self._checkpoint_locked()
                return self._bump_epoch()

    def has_policy(self, name: str) -> bool:
        return any(entry["name"] == name for entry in self._policy_snapshot)

    def _bump_epoch(self) -> int:
        """Advance the epoch; caller holds the admin lock (and, in
        thread mode, all shard locks)."""
        self._epoch += 1
        for shard in self.shards:
            shard.epoch = self._epoch
        reference = self._reference
        self._refresh_snapshot(
            reference.policies,
            [
                classify_policy(policy, reference.registry)
                for policy in reference.policies
            ],
        )
        return self._epoch

    def _checkpoint_locked(self) -> None:
        """Checkpoint every shard; caller holds all shard locks.

        Policy texts live in the checkpoint manifest, not in WAL records,
        so a policy change is only durable once every shard has
        checkpointed — done inside the broadcast's lock scope so no
        query lands between the change and its persistence.
        """
        for shard in self.shards:
            if shard.durability is not None:
                shard.durability.checkpoint(shard.enforcer)

    def _all_shard_locks(self) -> ExitStack:
        """Acquire every shard lock in index order (no deadlock: workers
        only ever hold their own shard's lock)."""
        stack = ExitStack()
        for shard in self.shards:
            stack.enter_context(shard.lock)
        return stack

    def _check_placements(self, placements: Sequence[PolicyPlacement]) -> None:
        if self.config.shards == 1:
            return
        offenders = [p for p in placements if not p.is_local]
        if offenders:
            details = "; ".join(
                f"{p.policy_name}: {p.reason}" for p in offenders
            )
            raise PolicyPlacementError(
                "cannot enforce global policies on a sharded service "
                f"(use --shards 1 or rewrite them per-uid): {details}"
            )

    def _refresh_snapshot(self, policies, placements) -> None:
        # Per-policy incremental classification from the reference
        # enforcer (the offline phase is identical on every shard);
        # unified groups report the same verdict for each member policy.
        classifications: dict = {}
        for entry in self._reference.incremental_report():
            verdict = {
                "incrementalizable": entry["incrementalizable"],
                "reason": entry["reason"],
            }
            for member in entry["policies"]:
                classifications[member] = verdict
        self._policy_snapshot = tuple(
            {
                "name": policy.name,
                "sql": policy.sql,
                "message": policy.message,
                "description": policy.description,
                "placement": placement.scope,
                "classification": classifications.get(
                    policy.name,
                    {"incrementalizable": False, "reason": "unclassified"},
                ),
            }
            for policy, placement in zip(policies, placements)
        )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def log_sizes(self) -> "dict[str, int]":
        """Usage-log sizes summed across shards."""
        totals: dict[str, int] = {}
        for sizes in self.per_shard_log_sizes():
            for name, size in sizes.items():
                totals[name] = totals.get(name, 0) + size
        return totals

    def per_shard_log_sizes(self) -> "list[dict[str, int]]":
        return [shard.log_sizes() for shard in self.shards]

    def stats(self) -> dict:
        """The service metrics surface (never blocks behind a query:
        thread shards snapshot counters lock-free, process shards
        answer a stats RPC on their IPC thread)."""
        shard_stats = [
            shard.stats_entry(self.config.queue_depth)
            for shard in self.shards
        ]
        totals = {
            key: sum(entry[key] for entry in shard_stats)
            for key in (
                "admitted", "rejected", "completed",
                "allowed", "denied", "errors", "slow",
            )
        }
        return {
            "epoch": self._epoch,
            "shards": self.config.shards,
            "workers": self.config.workers,
            "workers_mode": self.workers_mode,
            "queue_depth": self.config.queue_depth,
            "routing": self.config.routing,
            "durable": bool(self.config.data_dir),
            "tracing": self.config.tracing,
            "batch_size": self.config.batch_size,
            "decision_cache": self.config.decision_cache,
            "incremental": self.config.incremental,
            "per_shard": shard_stats,
            "totals": totals,
        }

    def render_metrics(self) -> str:
        """The Prometheus text exposition (GET /metrics)."""
        return self.metrics_registry.render()

    def slow_queries(self) -> "list[dict]":
        """Recent slow checks across shards, most recent last."""
        entries: "list[dict]" = []
        for shard in self.shards:
            entries.extend(shard.slow_entries())
        entries.sort(key=lambda entry: entry.get("timestamp", 0))
        return entries

    def analyzed_plan(self, uid: int, sql: str) -> str:
        """Re-run a query under EXPLAIN ANALYZE on its routed shard."""
        shard = self.shards[self.shard_for(uid)]
        if self.workers_mode == "process":
            return shard.explain_analyze(sql)
        with shard.lock:
            return shard.enforcer.engine.explain(sql, analyze=True)

    def explain_evidence(self, uid: int, decision: Decision) -> "list[dict]":
        """Witness tuples for a denied decision, from its routed shard."""
        shard = self.shards[self.shard_for(uid)]
        if self.workers_mode == "process":
            return shard.explain_evidence(decision)
        with shard.lock:
            explanations = explain_decision(shard.enforcer, decision)
        return [
            {
                "policy": explanation.policy_name,
                "tuples": [
                    {
                        "relation": evidence.relation,
                        "values": list(evidence.values),
                        "from_current_query": evidence.from_current_query,
                    }
                    for evidence in explanation.evidence
                ],
            }
            for explanation in explanations
        ]

    def durability_status(self) -> dict:
        """The durability surface (GET /durability)."""
        if not self.config.data_dir:
            return {"enabled": False}
        return {
            "enabled": True,
            "data_dir": str(self.config.data_dir),
            "wal_sync": self.config.wal_sync,
            "checkpoint_every": self.config.checkpoint_every,
            "recovered_shards": [
                report.as_dict() for report in self.recovery_reports
            ],
            "per_shard": [
                status
                for status in (
                    shard.durability_state() for shard in self.shards
                )
                if status is not None
            ],
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> None:
        """Flush every shard's backlog and stop the workers."""
        self._closed = True
        for shard in self.shards:
            shard.drain(timeout)
        if self._bootstrap_dir is not None:
            shutil.rmtree(self._bootstrap_dir, ignore_errors=True)
            self._bootstrap_dir = None

    close = drain

    @property
    def closed(self) -> bool:
        return self._closed
