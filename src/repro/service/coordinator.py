"""The coordinator: shard fan-out, policy broadcasts, aggregation.

:class:`ShardedEnforcerService` replaces the old single-lock HTTP facade
with N independent :class:`~repro.service.shard.Shard` instances. Queries
route by uid (:mod:`repro.service.routing`), so different users' policy
checks run in parallel; cross-shard operations go through here:

- **policy install/remove** broadcasts to every shard under an *epoch*:
  all shard locks are taken (in index order) before any shard is
  mutated, so no query ever observes a half-applied policy set;
- **log sizes / stats** aggregate per-shard views;
- **drain** stops admission and flushes every shard's backlog before
  shutdown.

Installing a policy the placement analysis marks *global* (see
:mod:`repro.service.placement`) on a multi-shard service raises
:class:`~repro.errors.PolicyPlacementError` — per-uid routing would
silently under-enforce it.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack
from typing import Optional, Sequence

from ..core import Decision, Enforcer, Policy
from ..errors import PolicyError, PolicyPlacementError, ServiceClosedError
from .config import ServiceConfig
from .placement import PolicyPlacement, classify_policy
from .routing import ShardRouter
from .shard import Shard


class ShardedEnforcerService:
    """A concurrent, multi-tenant enforcement gateway."""

    def __init__(
        self,
        enforcer: Enforcer,
        config: Optional[ServiceConfig] = None,
    ):
        self.config = config or ServiceConfig()
        self.router = ShardRouter(self.config.shards, self.config.routing)
        self._admin_lock = threading.RLock()
        self._epoch = 0
        self._closed = False

        placements = [
            classify_policy(policy, enforcer.registry)
            for policy in enforcer.policies
        ]
        self._check_placements(placements)

        # Shard 0 adopts the caller's enforcer (single-shard deployments
        # behave exactly like the old facade); the rest are clones over
        # the same base tables with empty per-shard usage logs.
        self.shards = [Shard(
            0,
            enforcer,
            queue_depth=self.config.queue_depth,
            workers=self.config.workers,
            dispatch_seconds=self.config.dispatch_seconds,
            latency_window=self.config.latency_window,
        )]
        for index in range(1, self.config.shards):
            self.shards.append(
                Shard(
                    index,
                    enforcer.clone(),
                    queue_depth=self.config.queue_depth,
                    workers=self.config.workers,
                    dispatch_seconds=self.config.dispatch_seconds,
                    latency_window=self.config.latency_window,
                )
            )
        #: Immutable snapshot read lock-free by GET /policies and /health.
        self._policy_snapshot: tuple = ()
        self._refresh_snapshot(enforcer.policies, placements)

    # ------------------------------------------------------------------
    # query admission
    # ------------------------------------------------------------------

    def shard_for(self, uid: int) -> int:
        return self.router.shard_for(uid)

    def submit(
        self,
        sql: str,
        uid: int = 0,
        execute: Optional[bool] = None,
        attributes: Optional[dict] = None,
    ) -> Decision:
        """Route, enqueue, and wait for one policy check.

        Raises :class:`~repro.errors.ServiceOverloadedError` when the
        target shard's queue is full, :class:`ServiceClosedError` while
        draining, and whatever the enforcer raises for bad SQL.
        """
        if self._closed:
            raise ServiceClosedError("service is shut down")
        shard = self.shards[self.shard_for(uid)]
        future = shard.offer(
            lambda enforcer: enforcer.submit(
                sql, uid=uid, execute=execute, attributes=attributes
            )
        )
        return future.result()

    # ------------------------------------------------------------------
    # policy management (cross-shard broadcasts)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    def policies(self) -> "list[dict]":
        """Lock-free policy listing (snapshot semantics)."""
        return [dict(entry) for entry in self._policy_snapshot]

    def placements(self) -> "list[PolicyPlacement]":
        with self._admin_lock:
            reference = self.shards[0].enforcer
            return [
                classify_policy(policy, reference.registry)
                for policy in reference.policies
            ]

    def add_policy(self, policy: Policy) -> int:
        """Install on every shard atomically; returns the new epoch."""
        with self._admin_lock:
            reference = self.shards[0].enforcer
            if any(p.name == policy.name for p in reference.policies):
                raise PolicyError(f"policy {policy.name!r} already exists")
            placement = classify_policy(policy, reference.registry)
            self._check_placements([placement])
            with self._all_shard_locks():
                for shard in self.shards:
                    shard.enforcer.add_policy(policy)
                return self._bump_epoch()

    def remove_policy(self, name: str) -> int:
        with self._admin_lock:
            reference = self.shards[0].enforcer
            if not any(p.name == name for p in reference.policies):
                raise PolicyError(f"no policy {name!r}")
            with self._all_shard_locks():
                for shard in self.shards:
                    shard.enforcer.remove_policy(name)
                return self._bump_epoch()

    def has_policy(self, name: str) -> bool:
        return any(entry["name"] == name for entry in self._policy_snapshot)

    def _bump_epoch(self) -> int:
        """Advance the epoch; caller holds admin + all shard locks."""
        self._epoch += 1
        for shard in self.shards:
            shard.epoch = self._epoch
        reference = self.shards[0].enforcer
        self._refresh_snapshot(
            reference.policies,
            [
                classify_policy(policy, reference.registry)
                for policy in reference.policies
            ],
        )
        return self._epoch

    def _all_shard_locks(self) -> ExitStack:
        """Acquire every shard lock in index order (no deadlock: workers
        only ever hold their own shard's lock)."""
        stack = ExitStack()
        for shard in self.shards:
            stack.enter_context(shard.lock)
        return stack

    def _check_placements(self, placements: Sequence[PolicyPlacement]) -> None:
        if self.config.shards == 1:
            return
        offenders = [p for p in placements if not p.is_local]
        if offenders:
            details = "; ".join(
                f"{p.policy_name}: {p.reason}" for p in offenders
            )
            raise PolicyPlacementError(
                "cannot enforce global policies on a sharded service "
                f"(use --shards 1 or rewrite them per-uid): {details}"
            )

    def _refresh_snapshot(self, policies, placements) -> None:
        self._policy_snapshot = tuple(
            {
                "name": policy.name,
                "sql": policy.sql,
                "message": policy.message,
                "description": policy.description,
                "placement": placement.scope,
            }
            for policy, placement in zip(policies, placements)
        )

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def log_sizes(self) -> "dict[str, int]":
        """Usage-log sizes summed across shards."""
        totals: dict[str, int] = {}
        for sizes in self.per_shard_log_sizes():
            for name, size in sizes.items():
                totals[name] = totals.get(name, 0) + size
        return totals

    def per_shard_log_sizes(self) -> "list[dict[str, int]]":
        sizes = []
        for shard in self.shards:
            with shard.lock:
                sizes.append(shard.enforcer.log_sizes())
        return sizes

    def stats(self) -> dict:
        """The service metrics surface (never touches a shard lock)."""
        shard_stats = []
        for shard in self.shards:
            snapshot = shard.counters.snapshot()
            snapshot["shard"] = shard.index
            snapshot["epoch"] = shard.epoch
            snapshot["queue_depth"] = shard.queue_depth()
            snapshot["queue_capacity"] = self.config.queue_depth
            shard_stats.append(snapshot)
        totals = {
            key: sum(entry[key] for entry in shard_stats)
            for key in (
                "admitted", "rejected", "completed",
                "allowed", "denied", "errors",
            )
        }
        return {
            "epoch": self._epoch,
            "shards": self.config.shards,
            "workers": self.config.workers,
            "queue_depth": self.config.queue_depth,
            "routing": self.config.routing,
            "per_shard": shard_stats,
            "totals": totals,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> None:
        """Flush every shard's backlog and stop the workers."""
        self._closed = True
        for shard in self.shards:
            shard.drain(timeout)

    close = drain

    @property
    def closed(self) -> bool:
        return self._closed
