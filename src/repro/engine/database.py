"""The catalog: a named collection of tables.

The enforcement layer uses one :class:`Database` holding both the user's
data tables and the usage-log relations (plus the one-row ``clock`` table),
mirroring the paper's setup where policies freely join the two.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import CatalogError
from .schema import make_schema
from .table import Table
from .types import SqlValue


class Database:
    """A case-insensitive catalog of :class:`~repro.engine.table.Table`."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        #: Hash-join build-cache tallies, incremented by
        #: :class:`~repro.engine.operators.HashJoinOp` and exported on
        #: ``/metrics``. They live here (not on the engine) because the
        #: cache validity is a property of this catalog's tables.
        self.join_build_hits = 0
        self.join_build_misses = 0
        #: Columnar-scan pruning tallies, incremented by
        #: :class:`~repro.engine.operators.FilterOp` when a pushed-down
        #: predicate consults zone maps / range indexes over a base table.
        self.zone_chunks_scanned = 0
        self.zone_chunks_skipped = 0
        self.range_probes = 0

    @staticmethod
    def _key(name: str) -> str:
        return name.lower()

    def create_table(self, name: str, column_names: list[str]) -> Table:
        """Create an empty table; raises if the name is taken."""
        key = self._key(name)
        if key in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(make_schema(key, column_names))
        self._tables[key] = table
        return table

    def load_table(
        self,
        name: str,
        column_names: list[str],
        rows: Iterable[Sequence[SqlValue]],
    ) -> Table:
        """Create a table and bulk-load rows."""
        table = self.create_table(name, column_names)
        table.insert_many(rows)
        return table

    def attach(self, table: Table) -> None:
        """Register an externally built table under its schema name."""
        key = self._key(table.name)
        if key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table

    def drop_table(self, name: str) -> None:
        key = self._key(name)
        if key not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[key]

    def has_table(self, name: str) -> bool:
        return self._key(name) in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[self._key(name)]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def clone(self) -> "Database":
        """Copy the catalog with cloned tables (rows shared structurally)."""
        copy = Database()
        for key, table in self._tables.items():
            copy._tables[key] = table.clone()
        return copy
