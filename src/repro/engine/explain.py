"""EXPLAIN: render a physical plan as an indented operator tree.

``Engine.explain(sql)`` returns text like::

    Project [a, n]
      Group keys=1 aggs=1
        HashJoin keys=1
          IndexScan r (col 0)
          Scan s

Names are physical operators, not SQL clauses — the point is to see what
the planner actually chose (index probe vs. scan, hash join vs. nested
loop, where filters landed).
"""

from __future__ import annotations

from .operators import (
    DistinctOnOp,
    DistinctOp,
    ExceptOp,
    FilterOp,
    GroupOp,
    HashJoinOp,
    IndexScanOp,
    IntersectOp,
    LeftJoinOp,
    LimitOp,
    MaterializedScanOp,
    NestedLoopOp,
    Operator,
    OrderOp,
    ProjectOp,
    ScanOp,
    UnionOp,
    ValuesOp,
)


def explain_plan(op: Operator, columns: list[str]) -> str:
    """Render the operator tree with the plan's output columns on top."""
    lines = [f"Output [{', '.join(columns)}]"]
    _render(op, 1, lines)
    return "\n".join(lines)


def _render(op: Operator, depth: int, lines: list[str]) -> None:
    indent = "  " * depth
    if isinstance(op, ScanOp):
        lines.append(f"{indent}Scan {op.table_name}")
        return
    if isinstance(op, IndexScanOp):
        lines.append(f"{indent}IndexScan {op.table_name} (col {op.column})")
        return
    if isinstance(op, MaterializedScanOp):
        lines.append(f"{indent}MaterializedScan {op.label}")
        return
    if isinstance(op, ValuesOp):
        lines.append(f"{indent}Values ({len(op.rows)} rows)")
        return
    if isinstance(op, FilterOp):
        lines.append(f"{indent}Filter")
        _render(op.child, depth + 1, lines)
        return
    if isinstance(op, ProjectOp):
        lines.append(f"{indent}Project ({len(op.exprs)} exprs)")
        _render(op.child, depth + 1, lines)
        return
    if isinstance(op, HashJoinOp):
        lines.append(f"{indent}HashJoin ({len(op.left_keys)} keys)")
        _render(op.left, depth + 1, lines)
        _render(op.right, depth + 1, lines)
        return
    if isinstance(op, NestedLoopOp):
        label = "NestedLoop" + (" (filtered)" if op.predicate else " (product)")
        lines.append(f"{indent}{label}")
        _render(op.left, depth + 1, lines)
        _render(op.right, depth + 1, lines)
        return
    if isinstance(op, LeftJoinOp):
        lines.append(f"{indent}LeftJoin (pad {op.right_width})")
        _render(op.left, depth + 1, lines)
        _render(op.right, depth + 1, lines)
        return
    if isinstance(op, GroupOp):
        lines.append(
            f"{indent}Group ({len(op.key_fns)} keys, "
            f"{len(op.agg_factories)} aggregates)"
        )
        _render(op.child, depth + 1, lines)
        return
    if isinstance(op, DistinctOp):
        lines.append(f"{indent}Distinct")
        _render(op.child, depth + 1, lines)
        return
    if isinstance(op, DistinctOnOp):
        lines.append(f"{indent}DistinctOn ({len(op.key_fns)} keys)")
        _render(op.child, depth + 1, lines)
        return
    if isinstance(op, UnionOp):
        lines.append(f"{indent}Union{' All' if op.all_rows else ''}")
        _render(op.left, depth + 1, lines)
        _render(op.right, depth + 1, lines)
        return
    if isinstance(op, ExceptOp):
        lines.append(f"{indent}Except")
        _render(op.left, depth + 1, lines)
        _render(op.right, depth + 1, lines)
        return
    if isinstance(op, IntersectOp):
        lines.append(f"{indent}Intersect")
        _render(op.left, depth + 1, lines)
        _render(op.right, depth + 1, lines)
        return
    if isinstance(op, OrderOp):
        lines.append(f"{indent}Order ({len(op.key_fns)} keys)")
        _render(op.child, depth + 1, lines)
        return
    if isinstance(op, LimitOp):
        lines.append(f"{indent}Limit {op.limit}")
        _render(op.child, depth + 1, lines)
        return
    lines.append(f"{indent}{type(op).__name__}")  # pragma: no cover
