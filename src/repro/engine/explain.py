"""EXPLAIN: render a physical plan as an indented operator tree.

``Engine.explain(sql)`` returns text like::

    Project [a, n]
      Group keys=1 aggs=1
        HashJoin keys=1
          IndexScan r (col 0)
          Scan s

Names are physical operators, not SQL clauses — the point is to see what
the planner actually chose (index probe vs. scan, hash join vs. nested
loop, where filters landed).

``Engine.explain(sql, analyze=True)`` *executes* the plan with one trace
span per operator (see :class:`~repro.engine.operators.TracedOp`) and
annotates every node with its observed rows and inclusive time::

    Scan s (rows=1000 time=0.41 ms)

:func:`describe` and :func:`operator_children` are the single source of
node labels and tree shape; the plain renderer, the analyzed renderer,
and the executor's span instrumentation all share them so the three
views always line up.
"""

from __future__ import annotations

from typing import Optional

from .dag import SharedNode
from .operators import (
    DistinctOnOp,
    DistinctOp,
    ExceptOp,
    FilterOp,
    GroupOp,
    HashJoinOp,
    IndexScanOp,
    IntersectOp,
    LeftJoinOp,
    LimitOp,
    MaterializedScanOp,
    NestedLoopOp,
    Operator,
    OrderOp,
    ProjectOp,
    ScanOp,
    TracedOp,
    UnionOp,
    ValuesOp,
)


def describe(op: Operator) -> str:
    """One-line label for a physical operator node."""
    if isinstance(op, TracedOp):
        return describe(op.inner)
    if isinstance(op, SharedNode):
        # Same appended-bracket convention as [pushed=…]/[build-cache=…]:
        # the label stays the wrapped operator's.
        return describe(op.child) + f" [shared={op.consumers}]"
    if isinstance(op, ScanOp):
        return f"Scan {op.table_name}"
    if isinstance(op, IndexScanOp):
        return f"IndexScan {op.table_name} (col {op.column})"
    if isinstance(op, MaterializedScanOp):
        return f"MaterializedScan {op.label}"
    if isinstance(op, ValuesOp):
        return f"Values ({len(op.rows)} rows)"
    if isinstance(op, FilterOp):
        # The bracket annotation is appended (never inlined) so existing
        # "Filter" substring matches keep working.
        return "Filter" + (f" [pushed={op.pushed}]" if op.pushed else "")
    if isinstance(op, ProjectOp):
        return f"Project ({len(op.exprs)} exprs)"
    if isinstance(op, HashJoinOp):
        label = f"HashJoin ({len(op.left_keys)} keys)"
        state = op.build_cache_state()
        if state is not None:
            label += f" [build-cache={state}]"
        return label
    if isinstance(op, NestedLoopOp):
        return "NestedLoop" + (" (filtered)" if op.predicate else " (product)")
    if isinstance(op, LeftJoinOp):
        return f"LeftJoin (pad {op.right_width})"
    if isinstance(op, GroupOp):
        return (
            f"Group ({len(op.key_fns)} keys, "
            f"{len(op.agg_factories)} aggregates)"
        )
    if isinstance(op, DistinctOp):
        return "Distinct"
    if isinstance(op, DistinctOnOp):
        return f"DistinctOn ({len(op.key_fns)} keys)"
    if isinstance(op, UnionOp):
        return "Union" + (" All" if op.all_rows else "")
    if isinstance(op, ExceptOp):
        return "Except"
    if isinstance(op, IntersectOp):
        return "Intersect"
    if isinstance(op, OrderOp):
        return f"Order ({len(op.key_fns)} keys)"
    if isinstance(op, LimitOp):
        return f"Limit {op.limit}"
    return type(op).__name__  # pragma: no cover


def operator_children(op: Operator) -> "list[Operator]":
    """Direct children of a node, in render order."""
    if isinstance(op, TracedOp):
        return operator_children(op.inner)
    for attrs in (("child",), ("left", "right")):
        if hasattr(op, attrs[0]):
            return [getattr(op, attr) for attr in attrs]
    return []


def explain_plan(op: Operator, columns: "list[str]") -> str:
    """Render the operator tree with the plan's output columns on top."""
    lines = [f"Output [{', '.join(columns)}]"]
    _render(op, 1, lines)
    return "\n".join(lines)


def _render(op: Operator, depth: int, lines: "list[str]") -> None:
    indent = "  " * depth
    lines.append(f"{indent}{describe(op)}")
    for child in operator_children(op):
        _render(child, depth + 1, lines)


def render_analyzed(span, columns: "Optional[list[str]]" = None) -> str:
    """Render an operator span tree as ``EXPLAIN ANALYZE`` text.

    ``span`` is the parent whose children are the instrumented plan's
    operator spans (``TraceContext`` root for ``Engine.explain``, the
    ``query`` phase span for a traced ``Decision``).
    """
    lines = []
    if columns is not None:
        lines.append(f"Output [{', '.join(columns)}]")
    for child in span.children:
        _render_span(child, 1 if columns is not None else 0, lines)
    return "\n".join(lines)


def _render_span(span, depth: int, lines: "list[str]") -> None:
    indent = "  " * depth
    rows = span.counters.get("rows", 0)
    note = f" dropped={span.dropped}" if span.dropped else ""
    lines.append(
        f"{indent}{span.name} "
        f"(rows={rows} time={span.seconds * 1000:.2f} ms){note}"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)
